//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, API-compatible with the subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the real criterion
//! cannot be vendored.  This shim implements honest wall-clock measurement
//! (warm-up, then timed batches, reporting min/mean/max per iteration)
//! behind the same [`criterion_group!`]/[`criterion_main!`]/[`Criterion`]
//! surface, so the benches under `crates/bench/benches/` — fault simulation,
//! pattern generation, model evaluation and lot simulation, the hot paths of
//! the paper's Sections 5–7 reproduction — compile and run unchanged and can
//! be swapped back to the real crate by editing one `Cargo.toml` line.
//!
//! Tuning knobs (environment variables):
//!
//! * `CRITERION_WARMUP_MS` — warm-up time per benchmark (default 100),
//! * `CRITERION_MEASUREMENT_MS` — measurement time per benchmark
//!   (default 400),
//! * `CRITERION_SAMPLES` — number of timed batches (default 20).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

fn env_ms(name: &str, default: u64) -> Duration {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default))
}

fn env_count(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: env_ms("CRITERION_WARMUP_MS", 100),
            measurement: env_ms("CRITERION_MEASUREMENT_MS", 400),
            samples: env_count("CRITERION_SAMPLES", 20),
        }
    }
}

impl Criterion {
    /// Benchmarks a single routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples: self.samples,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(report) => println!("{id:<44} {report}"),
            None => println!("{id:<44} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// A group of benchmarks sharing a common name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks an unparameterised routine inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().label);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `"serial/1234"` from a name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Per-iteration timing statistics of one benchmark.
struct Report {
    min: Duration,
    mean: Duration,
    max: Duration,
    iterations: u64,
}

impl Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "time: [{} {} {}]  ({} iters)",
            fmt_duration(self.min),
            fmt_duration(self.mean),
            fmt_duration(self.max),
            self.iterations,
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `routine`: warms it up, then times `samples` batches sized to
    /// fill the measurement window, recording per-iteration min/mean/max.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window elapses (at least once) and
        // estimate the per-iteration cost from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = div_duration(warm_start.elapsed(), warm_iters);

        // Size each batch so all samples together roughly fill the
        // measurement window.
        let batch = (self.measurement.as_nanos()
            / (per_iter.as_nanos().max(1) * self.samples as u128))
            .clamp(1, u64::MAX as u128) as u64;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        let mut iterations: u64 = 0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            let per = div_duration(elapsed, batch);
            min = min.min(per);
            max = max.max(per);
            total += elapsed;
            iterations += batch;
        }
        self.report = Some(Report {
            min,
            mean: div_duration(total, iterations),
            max,
            iterations,
        });
    }
}

/// Divides a duration by a (possibly > `u32::MAX`) iteration count without
/// the wrap of `Duration / u32`.
fn div_duration(total: Duration, count: u64) -> Duration {
    let nanos = total.as_nanos() / u128::from(count.max(1));
    Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64)
}

/// Declares a benchmark group: `criterion_group!(benches, target_a, target_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                println!("-- {} --", stringify!($target));
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_a_trivial_routine() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            samples: 3,
        };
        let mut ran = false;
        criterion.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_render_names_and_parameters() {
        assert_eq!(BenchmarkId::new("serial", 42).label, "serial/42");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(3),
            samples: 2,
        };
        let mut count = 0;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_with_input(BenchmarkId::new("a", 1), &7, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            count += 1;
            group.finish();
        }
        assert_eq!(count, 1);
    }
}
