//! Parity (XOR) trees.

use super::fresh_inputs;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates a balanced XOR tree over `inputs` inside an existing builder
/// and returns the parity output.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn parity_tree_block(builder: &mut CircuitBuilder, inputs: &[GateId], prefix: &str) -> GateId {
    assert!(!inputs.is_empty(), "parity tree needs at least one input");
    let mut layer: Vec<GateId> = inputs.to_vec();
    let mut stage = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (pair_index, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                next.push(builder.gate(
                    format!("{prefix}_s{stage}_x{pair_index}"),
                    GateKind::Xor,
                    &[pair[0], pair[1]],
                ));
            } else {
                // Odd element passes through to the next stage unchanged.
                next.push(pair[0]);
            }
        }
        layer = next;
        stage += 1;
    }
    layer[0]
}

/// Builds a standalone parity-tree circuit over `width` inputs.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn parity_tree(width: usize) -> Circuit {
    assert!(width > 0, "parity tree needs at least one input");
    let mut builder = CircuitBuilder::new(format!("parity{width}"));
    let inputs = fresh_inputs(&mut builder, "d", width);
    let parity = parity_tree_block(&mut builder, &inputs, "par");
    let out = builder.gate("parity", GateKind::Buf, &[parity]);
    builder.mark_output(out);
    builder.finish().expect("generated parity tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelize::levelize;

    #[test]
    fn parity_tree_interface() {
        let c = parity_tree(8);
        assert_eq!(c.primary_inputs().len(), 8);
        assert_eq!(c.primary_outputs().len(), 1);
        // 7 XOR gates + 1 BUF + 8 inputs.
        assert_eq!(c.gate_count(), 16);
    }

    #[test]
    fn parity_tree_is_logarithmic_depth() {
        let c = parity_tree(32);
        let lev = levelize(&c).expect("acyclic");
        // 5 XOR levels + 1 buffer.
        assert_eq!(lev.depth(), 6);
    }

    #[test]
    fn odd_width_is_handled() {
        let c = parity_tree(5);
        assert_eq!(c.primary_inputs().len(), 5);
        // 4 XORs + buf + 5 inputs.
        assert_eq!(c.gate_count(), 10);
    }

    #[test]
    fn single_input_parity_is_a_buffer() {
        let c = parity_tree(1);
        assert_eq!(c.primary_outputs().len(), 1);
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_width_panics() {
        let _ = parity_tree(0);
    }
}
