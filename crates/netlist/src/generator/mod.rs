//! Parameterised circuit generators.
//!
//! Two styles are provided:
//!
//! * standalone constructors (`ripple_carry_adder`, `array_multiplier`, …)
//!   that return a complete [`Circuit`](crate::circuit::Circuit) with fresh
//!   primary inputs, used by tests and small experiments, and
//! * `*_block` functions that instantiate the same structure inside an
//!   existing [`CircuitBuilder`], used by
//!   [`library::lsi_class`](crate::library::lsi_class) to compose a chip-
//!   sized netlist out of many functional blocks, the way the paper's
//!   25 000-transistor LSI circuit would have been assembled.

mod adder;
mod alu;
mod comparator;
mod decoder;
mod multiplier;
mod mux;
mod parity;
mod random;
mod sequential;

pub use adder::{ripple_carry_adder, ripple_carry_adder_block};
pub use alu::{alu, alu_block, AluWidth};
pub use comparator::{comparator, comparator_block};
pub use decoder::{decoder, decoder_block};
pub use multiplier::{array_multiplier, array_multiplier_block};
pub use mux::{mux_tree, mux_tree_block};
pub use parity::{parity_tree, parity_tree_block};
pub use random::{random_circuit, RandomCircuitConfig};
pub use sequential::{
    binary_counter, binary_counter_block, pipelined_datapath, sequence_detector,
    sequence_detector_block,
};

use crate::builder::CircuitBuilder;
use crate::circuit::GateId;

/// Creates `count` fresh primary inputs named `prefix0..prefixN`.
pub(crate) fn fresh_inputs(
    builder: &mut CircuitBuilder,
    prefix: &str,
    count: usize,
) -> Vec<GateId> {
    (0..count)
        .map(|i| builder.input(format!("{prefix}{i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn fresh_inputs_are_named_sequentially() {
        let mut b = CircuitBuilder::new("t");
        let ins = fresh_inputs(&mut b, "a", 3);
        assert_eq!(ins.len(), 3);
        assert_eq!(b.find_signal("a0"), Some(ins[0]));
        assert_eq!(b.find_signal("a2"), Some(ins[2]));
    }
}
