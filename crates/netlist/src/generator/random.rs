//! Random combinational logic generation.
//!
//! Random logic stands in for the "control" portion of an LSI chip: it has
//! irregular fanout, reconvergence and a mix of gate types, which is what
//! gives the stuck-at fault universe of a real chip its character.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;
use lsiq_stats::dist::{Categorical, Sample};
use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

/// Configuration for [`random_circuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomCircuitConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of logic gates to generate (excluding inputs).
    pub gates: usize,
    /// Maximum fanin per generated gate (at least 2).
    pub max_fanin: usize,
    /// How strongly fanin selection favours recently created gates; larger
    /// values give deeper, narrower circuits.  Must be at least 1.
    pub locality: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            inputs: 16,
            gates: 200,
            max_fanin: 4,
            locality: 32,
            seed: 0,
        }
    }
}

impl RandomCircuitConfig {
    /// Industrial-scale preset: a circuit of `gates` logic gates shaped like
    /// a flattened production netlist rather than the default narrow control
    /// block.  The input count and the locality window grow with the square
    /// root of the gate count, which keeps the levelised depth in the
    /// hundreds even at 100 000+ gates — wide and shallow, the shape where
    /// event-driven fault simulation pays off.
    ///
    /// ```
    /// use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    /// use lsiq_netlist::levelize::levelize;
    ///
    /// let config = RandomCircuitConfig::industrial(5_000, 42);
    /// let circuit = random_circuit(&config);
    /// assert_eq!(circuit.gate_count(), 5_000 + circuit.primary_inputs().len());
    /// assert!(levelize(&circuit).is_ok());
    /// ```
    pub fn industrial(gates: usize, seed: u64) -> RandomCircuitConfig {
        let breadth = (gates.max(1) as f64).sqrt().ceil() as usize;
        RandomCircuitConfig {
            inputs: breadth.clamp(16, 4096),
            gates,
            max_fanin: 4,
            locality: (breadth * 4).max(32),
            seed,
        }
    }

    /// Validates the configuration, normalising out-of-range values.
    fn normalised(&self) -> RandomCircuitConfig {
        RandomCircuitConfig {
            inputs: self.inputs.max(1),
            gates: self.gates.max(1),
            max_fanin: self.max_fanin.max(2),
            locality: self.locality.max(1),
            seed: self.seed,
        }
    }
}

/// Relative frequencies of generated gate kinds, loosely following the mix
/// observed in the ISCAS-85 benchmarks (NAND/NOR-rich with some XOR).
const KIND_WEIGHTS: [(GateKind, f64); 8] = [
    (GateKind::Nand, 30.0),
    (GateKind::Nor, 15.0),
    (GateKind::And, 20.0),
    (GateKind::Or, 15.0),
    (GateKind::Not, 10.0),
    (GateKind::Xor, 5.0),
    (GateKind::Xnor, 2.0),
    (GateKind::Buf, 3.0),
];

/// Generates a random combinational circuit.
///
/// The construction is incremental: each new gate draws its kind from a
/// fixed, benchmark-like distribution and its fanin from previously created
/// gates with a bias towards recent ones (controlled by
/// [`RandomCircuitConfig::locality`]).  Gates that end up driving nothing
/// become primary outputs, so every gate is observable and the circuit has
/// no dead logic.
///
/// The same configuration always produces the same circuit.
pub fn random_circuit(config: &RandomCircuitConfig) -> Circuit {
    let config = config.normalised();
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
    let kind_chooser = Categorical::new(&KIND_WEIGHTS.map(|(_, w)| w)).expect("weights are valid");
    let mut builder = CircuitBuilder::new(format!("rand_{}g_{}", config.gates, config.seed));
    let mut pool: Vec<GateId> = (0..config.inputs)
        .map(|i| builder.input(format!("pi{i}")))
        .collect();
    let mut drives_something = vec![false; config.inputs + config.gates];

    for gate_index in 0..config.gates {
        let kind = KIND_WEIGHTS[kind_chooser.sample(&mut rng)].0;
        let (min_fanin, _) = kind.fanin_bounds();
        let fanin_count = if min_fanin == 1 && matches!(kind, GateKind::Not | GateKind::Buf) {
            1
        } else {
            2 + rng.next_index(config.max_fanin - 1)
        };
        let mut fanin = Vec::with_capacity(fanin_count);
        for _ in 0..fanin_count {
            let driver = pick_driver(&pool, config.locality, &mut rng, &fanin);
            drives_something[driver.index()] = true;
            fanin.push(driver);
        }
        let id = builder.gate(format!("g{gate_index}"), kind, &fanin);
        pool.push(id);
    }

    // Every gate that drives nothing becomes a primary output; this includes
    // at least the last generated gate, so the circuit always has outputs.
    for &id in &pool {
        if !drives_something[id.index()] && builder.gate_count() > id.index() {
            builder.mark_output(id);
        }
    }
    builder
        .finish()
        .expect("randomly generated circuits are acyclic by construction")
}

/// Picks a driver from the pool with a bias towards the most recent
/// `locality` entries, avoiding duplicates already chosen for this gate.
fn pick_driver<R: Rng + ?Sized>(
    pool: &[GateId],
    locality: usize,
    rng: &mut R,
    already: &[GateId],
) -> GateId {
    for _ in 0..8 {
        let candidate = if rng.next_bool(0.75) && pool.len() > locality {
            // Recent window.
            let start = pool.len() - locality;
            pool[start + rng.next_index(locality)]
        } else {
            pool[rng.next_index(pool.len())]
        };
        if !already.contains(&candidate) {
            return candidate;
        }
    }
    // Fall back to any gate; a duplicate fanin pin is legal, just redundant.
    pool[rng.next_index(pool.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelize::levelize;

    #[test]
    fn generation_is_deterministic() {
        let config = RandomCircuitConfig {
            seed: 7,
            ..RandomCircuitConfig::default()
        };
        let a = random_circuit(&config);
        let b = random_circuit(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_circuit(&RandomCircuitConfig {
            seed: 1,
            ..RandomCircuitConfig::default()
        });
        let b = random_circuit(&RandomCircuitConfig {
            seed: 2,
            ..RandomCircuitConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn requested_sizes_are_respected() {
        let config = RandomCircuitConfig {
            inputs: 10,
            gates: 150,
            ..RandomCircuitConfig::default()
        };
        let c = random_circuit(&config);
        assert_eq!(c.primary_inputs().len(), 10);
        assert_eq!(c.gate_count(), 160);
        assert!(!c.primary_outputs().is_empty());
    }

    #[test]
    fn generated_circuits_are_acyclic() {
        for seed in 0..5 {
            let c = random_circuit(&RandomCircuitConfig {
                seed,
                gates: 300,
                ..RandomCircuitConfig::default()
            });
            assert!(levelize(&c).is_ok());
        }
    }

    #[test]
    fn every_non_output_gate_has_fanout() {
        let c = random_circuit(&RandomCircuitConfig::default());
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Input {
                continue;
            }
            assert!(
                c.fanout_count(id) > 0 || c.is_primary_output(id),
                "gate {id} is dead logic"
            );
        }
    }

    #[test]
    fn industrial_preset_scales_to_one_hundred_thousand_gates() {
        let config = RandomCircuitConfig::industrial(100_000, 9);
        let circuit = random_circuit(&config);
        assert_eq!(
            circuit.gate_count(),
            100_000 + circuit.primary_inputs().len()
        );
        let levels = levelize(&circuit).expect("acyclic");
        // Wide and shallow: the whole point of the preset.
        assert!(
            levels.depth() < 2_000,
            "industrial circuit too deep: {} levels",
            levels.depth()
        );
        assert!(!circuit.primary_outputs().is_empty());
    }

    #[test]
    fn industrial_preset_is_deterministic() {
        let a = random_circuit(&RandomCircuitConfig::industrial(2_000, 5));
        let b = random_circuit(&RandomCircuitConfig::industrial(2_000, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_configuration_is_normalised() {
        let c = random_circuit(&RandomCircuitConfig {
            inputs: 0,
            gates: 0,
            max_fanin: 0,
            locality: 0,
            seed: 3,
        });
        assert_eq!(c.primary_inputs().len(), 1);
        assert_eq!(c.gate_count(), 2);
    }
}
