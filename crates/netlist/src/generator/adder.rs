//! Ripple-carry adders.

use super::fresh_inputs;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates a full adder inside `builder`, returning `(sum, carry_out)`.
fn full_adder_block(
    builder: &mut CircuitBuilder,
    a: GateId,
    b: GateId,
    carry_in: GateId,
    prefix: &str,
) -> (GateId, GateId) {
    let axb = builder.gate(format!("{prefix}_axb"), GateKind::Xor, &[a, b]);
    let sum = builder.gate(format!("{prefix}_sum"), GateKind::Xor, &[axb, carry_in]);
    let and1 = builder.gate(format!("{prefix}_and1"), GateKind::And, &[a, b]);
    let and2 = builder.gate(format!("{prefix}_and2"), GateKind::And, &[axb, carry_in]);
    let carry = builder.gate(format!("{prefix}_cout"), GateKind::Or, &[and1, and2]);
    (sum, carry)
}

/// Instantiates an n-bit ripple-carry adder inside an existing builder.
///
/// `a` and `b` must have the same length; `carry_in` is optional (treated as
/// constant zero when absent).  Returns the sum bits (LSB first) followed by
/// the final carry-out.
///
/// # Panics
///
/// Panics if `a` and `b` differ in length or are empty.
pub fn ripple_carry_adder_block(
    builder: &mut CircuitBuilder,
    a: &[GateId],
    b: &[GateId],
    carry_in: Option<GateId>,
    prefix: &str,
) -> (Vec<GateId>, GateId) {
    assert!(!a.is_empty(), "adder width must be at least one bit");
    assert_eq!(a.len(), b.len(), "adder operands must have equal width");
    let mut carry = match carry_in {
        Some(c) => c,
        None => builder.constant_zero(format!("{prefix}_cin0")),
    };
    let mut sums = Vec::with_capacity(a.len());
    for (bit, (&ai, &bi)) in a.iter().zip(b.iter()).enumerate() {
        let (sum, carry_out) =
            full_adder_block(builder, ai, bi, carry, &format!("{prefix}_fa{bit}"));
        sums.push(sum);
        carry = carry_out;
    }
    (sums, carry)
}

/// Builds a standalone n-bit ripple-carry adder circuit.
///
/// Inputs are `a0..a(n-1)`, `b0..b(n-1)` and `cin`; outputs are the sum bits
/// and the carry out.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn ripple_carry_adder(bits: usize) -> Circuit {
    assert!(bits > 0, "adder width must be at least one bit");
    let mut builder = CircuitBuilder::new(format!("rca{bits}"));
    let a = fresh_inputs(&mut builder, "a", bits);
    let b = fresh_inputs(&mut builder, "b", bits);
    let cin = builder.input("cin");
    let (sums, carry) = ripple_carry_adder_block(&mut builder, &a, &b, Some(cin), "add");
    for sum in sums {
        builder.mark_output(sum);
    }
    builder.mark_output(carry);
    builder
        .finish()
        .expect("generated adder is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_has_expected_interface() {
        let c = ripple_carry_adder(4);
        assert_eq!(c.primary_inputs().len(), 9); // 4 + 4 + cin
        assert_eq!(c.primary_outputs().len(), 5); // 4 sums + carry
    }

    #[test]
    fn adder_gate_count_scales_linearly() {
        let small = ripple_carry_adder(2).gate_count();
        let large = ripple_carry_adder(8).gate_count();
        // Five gates plus two primary inputs per additional full-adder stage.
        assert_eq!(large - small, 6 * (5 + 2));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_adder_panics() {
        let _ = ripple_carry_adder(0);
    }

    #[test]
    fn block_without_carry_in_uses_constant() {
        let mut b = CircuitBuilder::new("t");
        let a = fresh_inputs(&mut b, "a", 2);
        let bb = fresh_inputs(&mut b, "b", 2);
        let (sums, carry) = ripple_carry_adder_block(&mut b, &a, &bb, None, "add");
        for s in sums {
            b.mark_output(s);
        }
        b.mark_output(carry);
        let c = b.finish().expect("valid");
        // A constant-zero source must exist.
        assert!(c.iter().any(|(_, gate)| gate.kind() == GateKind::Const0));
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_operand_width_panics() {
        let mut b = CircuitBuilder::new("t");
        let a = fresh_inputs(&mut b, "a", 2);
        let bb = fresh_inputs(&mut b, "b", 3);
        let _ = ripple_carry_adder_block(&mut b, &a, &bb, None, "add");
    }
}
