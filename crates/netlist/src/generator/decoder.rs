//! Binary decoders.

use super::fresh_inputs;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates a k-to-2^k decoder inside an existing builder and returns the
/// 2^k one-hot outputs (output `i` is high when the address spells `i`).
///
/// # Panics
///
/// Panics if `address` is empty.
pub fn decoder_block(
    builder: &mut CircuitBuilder,
    address: &[GateId],
    prefix: &str,
) -> Vec<GateId> {
    assert!(
        !address.is_empty(),
        "decoder needs at least one address bit"
    );
    let complements: Vec<GateId> = address
        .iter()
        .enumerate()
        .map(|(bit, &a)| builder.gate(format!("{prefix}_n{bit}"), GateKind::Not, &[a]))
        .collect();
    let count = 1usize << address.len();
    (0..count)
        .map(|value| {
            let fanin: Vec<GateId> = address
                .iter()
                .enumerate()
                .map(|(bit, &a)| {
                    if (value >> bit) & 1 == 1 {
                        a
                    } else {
                        complements[bit]
                    }
                })
                .collect();
            builder.gate(format!("{prefix}_y{value}"), GateKind::And, &fanin)
        })
        .collect()
}

/// Builds a standalone k-to-2^k decoder circuit.
///
/// # Panics
///
/// Panics if `address_bits` is zero.
pub fn decoder(address_bits: usize) -> Circuit {
    assert!(address_bits > 0, "decoder needs at least one address bit");
    let mut builder = CircuitBuilder::new(format!("dec{address_bits}"));
    let address = fresh_inputs(&mut builder, "a", address_bits);
    let outputs = decoder_block(&mut builder, &address, "dec");
    for out in outputs {
        builder.mark_output(out);
    }
    builder.finish().expect("generated decoder is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_interface() {
        let c = decoder(3);
        assert_eq!(c.primary_inputs().len(), 3);
        assert_eq!(c.primary_outputs().len(), 8);
        // 3 inverters + 8 AND gates + 3 inputs.
        assert_eq!(c.gate_count(), 14);
    }

    #[test]
    fn each_output_sees_every_address_bit() {
        let c = decoder(2);
        for &out in c.primary_outputs() {
            assert_eq!(c.gate(out).fanin_count(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one address bit")]
    fn zero_address_panics() {
        let _ = decoder(0);
    }
}
