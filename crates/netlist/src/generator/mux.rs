//! Multiplexer trees.

use super::fresh_inputs;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates a 2^k-to-1 multiplexer inside an existing builder.
///
/// `data` must contain exactly `2^select.len()` entries; entry `i` is routed
/// to the output when the select lines spell `i` (select\[0\] is the LSB).
///
/// # Panics
///
/// Panics if the data length is not `2^select.len()` or the select list is
/// empty.
pub fn mux_tree_block(
    builder: &mut CircuitBuilder,
    data: &[GateId],
    select: &[GateId],
    prefix: &str,
) -> GateId {
    assert!(!select.is_empty(), "mux needs at least one select line");
    assert_eq!(
        data.len(),
        1usize << select.len(),
        "mux data count must be 2^select"
    );
    let mut layer: Vec<GateId> = data.to_vec();
    for (stage, &sel) in select.iter().enumerate() {
        let sel_n = builder.gate(format!("{prefix}_s{stage}_n"), GateKind::Not, &[sel]);
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair_index in 0..layer.len() / 2 {
            let low = layer[2 * pair_index];
            let high = layer[2 * pair_index + 1];
            let pick_low = builder.gate(
                format!("{prefix}_s{stage}_l{pair_index}"),
                GateKind::And,
                &[low, sel_n],
            );
            let pick_high = builder.gate(
                format!("{prefix}_s{stage}_h{pair_index}"),
                GateKind::And,
                &[high, sel],
            );
            next.push(builder.gate(
                format!("{prefix}_s{stage}_o{pair_index}"),
                GateKind::Or,
                &[pick_low, pick_high],
            ));
        }
        layer = next;
    }
    layer[0]
}

/// Builds a standalone 2^k-to-1 multiplexer circuit with `select_bits`
/// select lines.
///
/// # Panics
///
/// Panics if `select_bits` is zero.
pub fn mux_tree(select_bits: usize) -> Circuit {
    assert!(select_bits > 0, "mux needs at least one select line");
    let mut builder = CircuitBuilder::new(format!("mux{}", 1usize << select_bits));
    let data = fresh_inputs(&mut builder, "d", 1usize << select_bits);
    let select = fresh_inputs(&mut builder, "s", select_bits);
    let out = mux_tree_block(&mut builder, &data, &select, "mux");
    let y = builder.gate("y", GateKind::Buf, &[out]);
    builder.mark_output(y);
    builder.finish().expect("generated mux is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_interface() {
        let c = mux_tree(3);
        assert_eq!(c.primary_inputs().len(), 8 + 3);
        assert_eq!(c.primary_outputs().len(), 1);
    }

    #[test]
    fn gate_count_matches_structure() {
        // For k select bits: each stage s has (2^k / 2^(s+1)) 2:1 muxes of 3
        // gates each plus one inverter per stage, plus the output buffer.
        let c = mux_tree(2);
        let expected_logic = (2 * 3 + 1) + (3 + 1) + 1;
        assert_eq!(c.gate_count(), 4 + 2 + expected_logic);
    }

    #[test]
    #[should_panic(expected = "at least one select")]
    fn zero_select_panics() {
        let _ = mux_tree(0);
    }

    #[test]
    #[should_panic(expected = "2^select")]
    fn mismatched_data_count_panics() {
        let mut b = CircuitBuilder::new("t");
        let data = fresh_inputs(&mut b, "d", 3);
        let select = fresh_inputs(&mut b, "s", 2);
        let _ = mux_tree_block(&mut b, &data, &select, "m");
    }
}
