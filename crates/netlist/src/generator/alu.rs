//! A small arithmetic-logic unit generator.

use super::adder::ripple_carry_adder_block;
use super::fresh_inputs;
use super::mux::mux_tree_block;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Width configuration for [`alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluWidth(pub usize);

impl AluWidth {
    /// The operand width in bits.
    pub fn bits(self) -> usize {
        self.0
    }
}

/// Instantiates an n-bit four-function ALU inside an existing builder.
///
/// Function select (`op`, two bits): `00` = ADD, `01` = AND, `10` = OR,
/// `11` = XOR.  Returns the result bits (LSB first) and the adder carry-out.
///
/// # Panics
///
/// Panics if the operands differ in width or are empty, or if `op` does not
/// contain exactly two select lines.
pub fn alu_block(
    builder: &mut CircuitBuilder,
    a: &[GateId],
    b: &[GateId],
    op: &[GateId],
    prefix: &str,
) -> (Vec<GateId>, GateId) {
    assert!(!a.is_empty(), "ALU width must be at least one bit");
    assert_eq!(a.len(), b.len(), "ALU operands must have equal width");
    assert_eq!(op.len(), 2, "ALU needs exactly two op-select lines");
    let (sums, carry) = ripple_carry_adder_block(builder, a, b, None, &format!("{prefix}_add"));
    let mut result = Vec::with_capacity(a.len());
    for (bit, ((&ai, &bi), &sum)) in a.iter().zip(b.iter()).zip(sums.iter()).enumerate() {
        let and_bit = builder.gate(format!("{prefix}_and{bit}"), GateKind::And, &[ai, bi]);
        let or_bit = builder.gate(format!("{prefix}_or{bit}"), GateKind::Or, &[ai, bi]);
        let xor_bit = builder.gate(format!("{prefix}_xor{bit}"), GateKind::Xor, &[ai, bi]);
        let selected = mux_tree_block(
            builder,
            &[sum, and_bit, or_bit, xor_bit],
            op,
            &format!("{prefix}_sel{bit}"),
        );
        result.push(builder.gate(format!("{prefix}_y{bit}"), GateKind::Buf, &[selected]));
    }
    (result, carry)
}

/// Builds a standalone n-bit four-function ALU circuit.
///
/// # Panics
///
/// Panics if the width is zero.
pub fn alu(width: AluWidth) -> Circuit {
    assert!(width.bits() > 0, "ALU width must be at least one bit");
    let mut builder = CircuitBuilder::new(format!("alu{}", width.bits()));
    let a = fresh_inputs(&mut builder, "a", width.bits());
    let b = fresh_inputs(&mut builder, "b", width.bits());
    let op = fresh_inputs(&mut builder, "op", 2);
    let (result, carry) = alu_block(&mut builder, &a, &b, &op, "alu");
    for bit in result {
        builder.mark_output(bit);
    }
    builder.mark_output(carry);
    builder.finish().expect("generated ALU is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_interface() {
        let c = alu(AluWidth(4));
        assert_eq!(c.primary_inputs().len(), 4 + 4 + 2);
        assert_eq!(c.primary_outputs().len(), 5);
    }

    #[test]
    fn alu_contains_all_function_units() {
        let c = alu(AluWidth(2));
        assert!(c.find_signal("alu_add_fa0_sum").is_some());
        assert!(c.find_signal("alu_and1").is_some());
        assert!(c.find_signal("alu_or0").is_some());
        assert!(c.find_signal("alu_xor1").is_some());
    }

    #[test]
    #[should_panic(expected = "exactly two op-select")]
    fn wrong_op_width_panics() {
        let mut b = CircuitBuilder::new("t");
        let a = fresh_inputs(&mut b, "a", 2);
        let bb = fresh_inputs(&mut b, "b", 2);
        let op = fresh_inputs(&mut b, "op", 3);
        let _ = alu_block(&mut b, &a, &bb, &op, "alu");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_panics() {
        let _ = alu(AluWidth(0));
    }
}
