//! Array multipliers.

use super::adder::ripple_carry_adder_block;
use super::fresh_inputs;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates an n×n array multiplier inside an existing builder and
/// returns the 2n product bits (LSB first).
///
/// The structure is the classic shift-and-add array: partial products are
/// formed with AND gates and accumulated with ripple-carry adder rows, which
/// yields a deep, reconvergent netlist that stresses the fault simulator the
/// way real data-path logic does.
///
/// # Panics
///
/// Panics if the operands differ in width or are empty.
pub fn array_multiplier_block(
    builder: &mut CircuitBuilder,
    a: &[GateId],
    b: &[GateId],
    prefix: &str,
) -> Vec<GateId> {
    assert!(!a.is_empty(), "multiplier width must be at least one bit");
    assert_eq!(
        a.len(),
        b.len(),
        "multiplier operands must have equal width"
    );
    let width = a.len();
    // Partial product rows: row j is a AND b[j], shifted left by j.
    let rows: Vec<Vec<GateId>> = b
        .iter()
        .enumerate()
        .map(|(j, &bj)| {
            a.iter()
                .enumerate()
                .map(|(i, &ai)| {
                    builder.gate(format!("{prefix}_pp{j}_{i}"), GateKind::And, &[ai, bj])
                })
                .collect()
        })
        .collect();
    // Accumulate rows with ripple-carry adders.
    let mut product: Vec<GateId> = Vec::with_capacity(2 * width);
    let mut accumulator: Vec<GateId> = rows[0].clone();
    product.push(accumulator[0]);
    for (j, row) in rows.iter().enumerate().skip(1) {
        // Add row (width bits) to the shifted accumulator, zero-extended to
        // the row width; produce width sum bits plus carry.
        let mut addend: Vec<GateId> = accumulator[1..].to_vec();
        while addend.len() < row.len() {
            let zero = builder.constant_zero(format!("{prefix}_z{j}_{}", addend.len()));
            addend.push(zero);
        }
        let (sums, carry) =
            ripple_carry_adder_block(builder, row, &addend, None, &format!("{prefix}_row{j}"));
        product.push(sums[0]);
        accumulator = sums;
        accumulator.push(carry);
        // After the final row the remaining accumulator bits are the high
        // half of the product.
        if j == width - 1 {
            product.extend(accumulator[1..].iter().copied());
        }
    }
    if width == 1 {
        // Single-bit multiply: the product is just the partial product plus a
        // constant-zero high bit.
        let zero = builder.constant_zero(format!("{prefix}_hi"));
        product.push(zero);
    }
    debug_assert_eq!(product.len(), 2 * width);
    product
}

/// Builds a standalone n×n array multiplier circuit.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn array_multiplier(bits: usize) -> Circuit {
    assert!(bits > 0, "multiplier width must be at least one bit");
    let mut builder = CircuitBuilder::new(format!("mul{bits}x{bits}"));
    let a = fresh_inputs(&mut builder, "a", bits);
    let b = fresh_inputs(&mut builder, "b", bits);
    let product = array_multiplier_block(&mut builder, &a, &b, "mul");
    for bit in product {
        builder.mark_output(bit);
    }
    builder.finish().expect("generated multiplier is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_interface() {
        let c = array_multiplier(4);
        assert_eq!(c.primary_inputs().len(), 8);
        assert_eq!(c.primary_outputs().len(), 8);
    }

    #[test]
    fn single_bit_multiplier() {
        let c = array_multiplier(1);
        assert_eq!(c.primary_outputs().len(), 2);
    }

    #[test]
    fn multiplier_is_substantially_larger_than_adder() {
        let mul = array_multiplier(8).gate_count();
        let add = super::super::adder::ripple_carry_adder(8).gate_count();
        assert!(mul > 3 * add, "multiplier {mul} vs adder {add}");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_panics() {
        let _ = array_multiplier(0);
    }
}
