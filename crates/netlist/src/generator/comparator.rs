//! Equality and magnitude comparators.

use super::fresh_inputs;
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates an n-bit comparator inside an existing builder.
///
/// Returns `(equal, a_greater)` where `equal` is high when `a == b` and
/// `a_greater` is high when `a > b` (unsigned, bit 0 is the LSB).
///
/// # Panics
///
/// Panics if the operands differ in width or are empty.
pub fn comparator_block(
    builder: &mut CircuitBuilder,
    a: &[GateId],
    b: &[GateId],
    prefix: &str,
) -> (GateId, GateId) {
    assert!(!a.is_empty(), "comparator width must be at least one bit");
    assert_eq!(
        a.len(),
        b.len(),
        "comparator operands must have equal width"
    );
    // Per-bit equality.
    let eq_bits: Vec<GateId> = a
        .iter()
        .zip(b.iter())
        .enumerate()
        .map(|(bit, (&ai, &bi))| {
            builder.gate(format!("{prefix}_eq{bit}"), GateKind::Xnor, &[ai, bi])
        })
        .collect();
    let equal = builder.gate(format!("{prefix}_eq"), GateKind::And, &eq_bits);
    // a > b when, scanning from the MSB, the first differing bit has a=1,b=0.
    let mut greater_terms = Vec::with_capacity(a.len());
    for bit in (0..a.len()).rev() {
        let b_not = builder.gate(format!("{prefix}_bn{bit}"), GateKind::Not, &[b[bit]]);
        let mut fanin = vec![a[bit], b_not];
        // All higher bits must be equal for this bit to decide.
        fanin.extend(eq_bits.iter().skip(bit + 1).copied());
        greater_terms.push(builder.gate(format!("{prefix}_gt{bit}"), GateKind::And, &fanin));
    }
    let greater = builder.gate(format!("{prefix}_gt"), GateKind::Or, &greater_terms);
    (equal, greater)
}

/// Builds a standalone n-bit comparator circuit with outputs `eq` and `gt`.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn comparator(bits: usize) -> Circuit {
    assert!(bits > 0, "comparator width must be at least one bit");
    let mut builder = CircuitBuilder::new(format!("cmp{bits}"));
    let a = fresh_inputs(&mut builder, "a", bits);
    let b = fresh_inputs(&mut builder, "b", bits);
    let (equal, greater) = comparator_block(&mut builder, &a, &b, "cmp");
    builder.mark_output(equal);
    builder.mark_output(greater);
    builder.finish().expect("generated comparator is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_interface() {
        let c = comparator(4);
        assert_eq!(c.primary_inputs().len(), 8);
        assert_eq!(c.primary_outputs().len(), 2);
    }

    #[test]
    fn msb_term_has_smallest_fanin() {
        // The MSB greater-term needs no equality qualifiers.
        let c = comparator(4);
        let gt3 = c.find_signal("cmp_gt3").expect("exists");
        assert_eq!(c.gate(gt3).fanin_count(), 2);
        let gt0 = c.find_signal("cmp_gt0").expect("exists");
        assert_eq!(c.gate(gt0).fanin_count(), 2 + 3);
    }

    #[test]
    #[should_panic(expected = "equal width")]
    fn mismatched_widths_panic() {
        let mut b = CircuitBuilder::new("t");
        let a = fresh_inputs(&mut b, "a", 2);
        let bb = fresh_inputs(&mut b, "b", 1);
        let _ = comparator_block(&mut b, &a, &bb, "c");
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_panics() {
        let _ = comparator(0);
    }
}
