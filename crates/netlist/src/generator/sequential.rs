//! Sequential circuit generators: counters, finite-state machines and a
//! pipelined datapath.
//!
//! These are the device classes the scan methodology of the era was built
//! for: state registers with combinational next-state logic.  Each
//! generator returns a sequential [`Circuit`] whose flip-flops are meant to
//! be stitched into scan chains with
//! [`scan::insert_scan`](crate::scan::insert_scan) before fault simulation.
//!
//! Reset semantics are deliberately out of scope: state is controlled and
//! observed through the scan path, so the generators specify only the
//! next-state functions, not initialisation.

use super::{fresh_inputs, ripple_carry_adder_block};
use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::gate::GateKind;

/// Instantiates an n-bit binary up-counter with enable inside `builder`.
///
/// Bit `i` toggles when `enable` and all lower bits are 1:
/// `d_i = q_i XOR (enable AND q_0 AND … AND q_{i-1})`.  Returns the state
/// bits, LSB first.
///
/// # Panics
///
/// Panics if `bits` is zero.
pub fn binary_counter_block(
    builder: &mut CircuitBuilder,
    enable: GateId,
    bits: usize,
    prefix: &str,
) -> Vec<GateId> {
    assert!(bits > 0, "counter width must be at least one bit");
    let q: Vec<GateId> = (0..bits)
        .map(|i| builder.dff_placeholder(format!("{prefix}_q{i}")))
        .collect();
    let mut carry = enable;
    for (i, &qi) in q.iter().enumerate() {
        let d = builder.gate(format!("{prefix}_d{i}"), GateKind::Xor, &[qi, carry]);
        builder.bind_dff(qi, d);
        if i + 1 < bits {
            carry = builder.gate(format!("{prefix}_c{i}"), GateKind::And, &[carry, qi]);
        }
    }
    q
}

/// Builds a standalone n-bit binary up-counter.
///
/// Input `en` enables counting; outputs are the state bits `ctr_q0..`.
pub fn binary_counter(bits: usize) -> Circuit {
    let mut builder = CircuitBuilder::new(format!("counter{bits}"));
    let enable = builder.input("en");
    let q = binary_counter_block(&mut builder, enable, bits, "ctr");
    for &bit in &q {
        builder.mark_output(bit);
    }
    builder.finish().expect("counter is structurally valid")
}

/// Instantiates a one-hot sequence-detector FSM inside `builder`.
///
/// The machine watches input `x` for the bit string `pattern`.  State bit
/// `s_i` (1-indexed) means "the last `i` symbols matched the first `i`
/// pattern symbols"; the returned accept signal is the last state bit and
/// matches may overlap.  The encoding self-recovers from any state — in
/// particular from the all-zero scan-load state.
///
/// Returns `(state_bits, accept)`.
///
/// # Panics
///
/// Panics if `pattern` is empty.
pub fn sequence_detector_block(
    builder: &mut CircuitBuilder,
    x: GateId,
    pattern: &[bool],
    prefix: &str,
) -> (Vec<GateId>, GateId) {
    assert!(!pattern.is_empty(), "pattern must have at least one symbol");
    let not_x = builder.gate(format!("{prefix}_nx"), GateKind::Not, &[x]);
    let literal = |want: bool| if want { x } else { not_x };
    let mut states = Vec::with_capacity(pattern.len());
    let mut prev: Option<GateId> = None;
    for (i, &symbol) in pattern.iter().enumerate() {
        let d = match prev {
            // s_1 watches the raw input: a match can start on any symbol.
            None => literal(symbol),
            Some(p) => builder.gate(
                format!("{prefix}_d{}", i + 1),
                GateKind::And,
                &[p, literal(symbol)],
            ),
        };
        let s = builder.dff(format!("{prefix}_s{}", i + 1), d);
        states.push(s);
        prev = Some(s);
    }
    let accept = *states.last().expect("pattern is non-empty");
    (states, accept)
}

/// Builds a standalone sequence-detector FSM for `pattern` with input `x`
/// and output `accept` (a buffer of the final state bit).
pub fn sequence_detector(pattern: &[bool]) -> Circuit {
    let mut builder = CircuitBuilder::new(format!("seqdet{}", pattern.len()));
    let x = builder.input("x");
    let (_, accept) = sequence_detector_block(&mut builder, x, pattern, "fsm");
    let out = builder.gate("accept", GateKind::Buf, &[accept]);
    builder.mark_output(out);
    builder.finish().expect("detector is structurally valid")
}

/// Builds a three-stage pipelined datapath:
///
/// ```text
/// stage 1: registers operands a, b, c        (3w flip-flops)
/// stage 2: registers a + b                   (w+1 flip-flops)
/// stage 3: registers (a + b) XOR c and the
///          carry bit                         (w+1 flip-flops)
/// ```
///
/// Inputs are `a0..`, `b0..`, `c0..`; outputs are the final-stage register
/// bits.  Total state: `5w + 2` flip-flops (42 at the default width used by
/// the BIST experiments, `w = 8`).
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn pipelined_datapath(width: usize) -> Circuit {
    assert!(width > 0, "datapath width must be at least one bit");
    let mut builder = CircuitBuilder::new(format!("pipeline{width}"));
    let a = fresh_inputs(&mut builder, "a", width);
    let b = fresh_inputs(&mut builder, "b", width);
    let c = fresh_inputs(&mut builder, "c", width);
    let reg = |builder: &mut CircuitBuilder, bits: &[GateId], prefix: &str| -> Vec<GateId> {
        bits.iter()
            .enumerate()
            .map(|(i, &bit)| builder.dff(format!("{prefix}{i}"), bit))
            .collect()
    };
    let ra = reg(&mut builder, &a, "ra");
    let rb = reg(&mut builder, &b, "rb");
    let rc = reg(&mut builder, &c, "rc");
    let (sum, carry) = ripple_carry_adder_block(&mut builder, &ra, &rb, None, "add");
    let rs = reg(&mut builder, &sum, "rs");
    let rcar = builder.dff("rcar", carry);
    let xors: Vec<GateId> = rs
        .iter()
        .zip(rc.iter())
        .enumerate()
        .map(|(i, (&s, &m))| builder.gate(format!("x{i}"), GateKind::Xor, &[s, m]))
        .collect();
    let ro = reg(&mut builder, &xors, "ro");
    let rco = builder.dff("rco", rcar);
    for &bit in &ro {
        builder.mark_output(bit);
    }
    builder.mark_output(rco);
    builder.finish().expect("pipeline is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::insert_scan;

    #[test]
    fn counter_has_expected_state_and_outputs() {
        let c = binary_counter(4);
        assert_eq!(c.state_elements().len(), 4);
        assert_eq!(c.primary_outputs().len(), 4);
        assert_eq!(c.primary_inputs().len(), 1);
        assert!(c.has_state());
        // The counter's feedback loops must levelise (state breaks cycles).
        assert!(crate::levelize::levelize(&c).is_ok());
    }

    #[test]
    fn detector_state_matches_pattern_length() {
        let c = sequence_detector(&[true, false, true]);
        assert_eq!(c.state_elements().len(), 3);
        assert_eq!(c.primary_inputs().len(), 1);
        assert_eq!(c.primary_outputs().len(), 1);
    }

    #[test]
    fn pipeline_has_five_w_plus_two_flops() {
        let c = pipelined_datapath(8);
        assert_eq!(c.state_elements().len(), 5 * 8 + 2);
        assert_eq!(c.primary_inputs().len(), 24);
        assert_eq!(c.primary_outputs().len(), 9);
        assert!(c.state_elements().len() >= 32, "BIST-experiment scale");
    }

    #[test]
    fn generated_circuits_accept_scan_insertion() {
        for circuit in [
            binary_counter(6),
            sequence_detector(&[true, true, false, true]),
            pipelined_datapath(4),
        ] {
            let cells = circuit.state_elements().len();
            let scan = insert_scan(&circuit, 2.min(cells)).expect("scan inserts");
            assert_eq!(scan.cell_count(), cells);
            assert!(!scan.test_view().has_state());
        }
    }
}
