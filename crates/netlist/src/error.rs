//! Error type for netlist construction and parsing.

use std::fmt;

/// Error returned by circuit construction, validation and `.bench` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal name was referenced before it was defined.
    UnknownSignal {
        /// The undefined signal name.
        name: String,
    },
    /// A signal name was defined more than once.
    DuplicateSignal {
        /// The repeated signal name.
        name: String,
    },
    /// A gate was given the wrong number of inputs for its kind.
    BadFanin {
        /// The gate kind involved.
        kind: &'static str,
        /// The number of inputs supplied.
        actual: usize,
        /// Human-readable description of what the kind requires.
        expected: &'static str,
    },
    /// The circuit contains a combinational cycle.
    CombinationalCycle {
        /// The name of a signal on the cycle.
        signal: String,
    },
    /// A syntax error in a `.bench` description.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The circuit has no primary outputs (nothing is observable).
    NoOutputs,
    /// A gate identifier was out of range for the circuit.
    InvalidGateId {
        /// The numeric id that was out of range.
        id: usize,
        /// The number of gates in the circuit.
        gate_count: usize,
    },
    /// A scan-insertion request was invalid for the target circuit.
    Scan {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            NetlistError::DuplicateSignal { name } => {
                write!(f, "signal `{name}` defined more than once")
            }
            NetlistError::BadFanin {
                kind,
                actual,
                expected,
            } => write!(
                f,
                "gate kind {kind} given {actual} inputs; expected {expected}"
            ),
            NetlistError::CombinationalCycle { signal } => {
                write!(f, "combinational cycle through signal `{signal}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::Scan { message } => write!(f, "scan insertion failed: {message}"),
            NetlistError::InvalidGateId { id, gate_count } => {
                write!(
                    f,
                    "gate id {id} out of range for circuit with {gate_count} gates"
                )
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_facts() {
        let cases: Vec<(NetlistError, &str)> = vec![
            (NetlistError::UnknownSignal { name: "foo".into() }, "foo"),
            (NetlistError::DuplicateSignal { name: "bar".into() }, "bar"),
            (
                NetlistError::BadFanin {
                    kind: "NOT",
                    actual: 2,
                    expected: "exactly one input",
                },
                "NOT",
            ),
            (
                NetlistError::CombinationalCycle {
                    signal: "loop".into(),
                },
                "loop",
            ),
            (
                NetlistError::Parse {
                    line: 4,
                    message: "bad token".into(),
                },
                "line 4",
            ),
            (NetlistError::NoOutputs, "no primary outputs"),
            (
                NetlistError::InvalidGateId {
                    id: 9,
                    gate_count: 3,
                },
                "9",
            ),
            (
                NetlistError::Scan {
                    message: "no flip-flops".into(),
                },
                "no flip-flops",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "`{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
