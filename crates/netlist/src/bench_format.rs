//! Reader and writer for the ISCAS-style `.bench` netlist format.
//!
//! The format is line oriented:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(sum)
//! sum = XOR(a, b)
//! carry = AND(a, b)
//! ```
//!
//! Combinational primitives and `DFF` state elements are supported (`q =
//! DFF(d)`, the ISCAS-89 convention); sequential circuits are tested
//! through scan insertion ([`crate::scan`]), so the clock stays implicit.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::GateKind;
use std::collections::HashMap;

/// Parses a `.bench` description into a [`Circuit`].
///
/// Signals may be referenced before they are defined (the ISCAS benchmarks
/// do this freely); the parser resolves references after reading the whole
/// text.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownSignal`] for references that are never defined,
/// and the usual structural errors for duplicate names, bad arities, missing
/// outputs or cycles.
pub fn parse(name: &str, text: &str) -> Result<Circuit, NetlistError> {
    // First pass: record definitions in order, plus declared outputs.
    struct PendingGate {
        signal: String,
        kind: GateKind,
        fanin_names: Vec<String>,
        line: usize,
    }
    let mut pending: Vec<PendingGate> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();

    for (line_index, raw_line) in text.lines().enumerate() {
        let line_number = line_index + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = parse_directive(line, "INPUT") {
            let signal = parse_single_name(rest, line_number)?;
            pending.push(PendingGate {
                signal,
                kind: GateKind::Input,
                fanin_names: Vec::new(),
                line: line_number,
            });
        } else if let Some(rest) = parse_directive(line, "OUTPUT") {
            output_names.push(parse_single_name(rest, line_number)?);
        } else if let Some(eq_pos) = line.find('=') {
            let signal = line[..eq_pos].trim().to_string();
            if signal.is_empty() {
                return Err(NetlistError::Parse {
                    line: line_number,
                    message: "missing signal name before `=`".to_string(),
                });
            }
            let rhs = line[eq_pos + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: line_number,
                message: format!("expected `FUNC(args)` after `=`, found `{rhs}`"),
            })?;
            let close = rhs.rfind(')').ok_or_else(|| NetlistError::Parse {
                line: line_number,
                message: "missing closing parenthesis".to_string(),
            })?;
            if close < open {
                return Err(NetlistError::Parse {
                    line: line_number,
                    message: "mismatched parentheses".to_string(),
                });
            }
            let func = rhs[..open].trim();
            let kind = GateKind::parse(func).ok_or_else(|| NetlistError::Parse {
                line: line_number,
                message: format!("unknown gate function `{func}`"),
            })?;
            if kind == GateKind::Input {
                return Err(NetlistError::Parse {
                    line: line_number,
                    message: "INPUT cannot appear on the right-hand side".to_string(),
                });
            }
            let args = rhs[open + 1..close].trim();
            let fanin_names: Vec<String> = if args.is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|s| s.trim().to_string()).collect()
            };
            if fanin_names.iter().any(|n| n.is_empty()) {
                return Err(NetlistError::Parse {
                    line: line_number,
                    message: "empty argument in gate input list".to_string(),
                });
            }
            pending.push(PendingGate {
                signal,
                kind,
                fanin_names,
                line: line_number,
            });
        } else {
            return Err(NetlistError::Parse {
                line: line_number,
                message: format!("unrecognised line `{line}`"),
            });
        }
    }

    // Second pass: create gates in definition order, then resolve fanin.
    let mut builder = CircuitBuilder::new(name);
    let mut ids: HashMap<String, GateId> = HashMap::new();
    for gate in &pending {
        let id = match gate.kind {
            GateKind::Input => builder.input(gate.signal.clone()),
            kind => builder.gate(gate.signal.clone(), kind, &[]),
        };
        ids.insert(gate.signal.clone(), id);
    }
    // The builder stores gates in push order; rebuild with resolved fanin.
    // We cannot mutate fanin in place through the builder API, so assemble a
    // fresh builder now that every name has a known id.
    let mut resolved = CircuitBuilder::new(name);
    let mut final_ids: HashMap<String, GateId> = HashMap::new();
    for gate in &pending {
        let id = match gate.kind {
            GateKind::Input => resolved.input(gate.signal.clone()),
            kind => {
                let mut fanin = Vec::with_capacity(gate.fanin_names.len());
                for input_name in &gate.fanin_names {
                    let driver = ids.get(input_name).ok_or_else(|| {
                        // Attribute the unknown signal to the defining line.
                        let _ = gate.line;
                        NetlistError::UnknownSignal {
                            name: input_name.clone(),
                        }
                    })?;
                    fanin.push(*driver);
                }
                resolved.gate(gate.signal.clone(), kind, &fanin)
            }
        };
        final_ids.insert(gate.signal.clone(), id);
    }
    for output in &output_names {
        let id = final_ids
            .get(output)
            .ok_or_else(|| NetlistError::UnknownSignal {
                name: output.clone(),
            })?;
        resolved.mark_output(*id);
    }
    resolved.finish()
}

/// Serialises a circuit to `.bench` text.
///
/// The output parses back to an equivalent circuit (same gates, names,
/// connectivity and outputs).
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    out.push_str(&format!(
        "# {} inputs, {} outputs, {} gates\n",
        circuit.primary_inputs().len(),
        circuit.primary_outputs().len(),
        circuit.gate_count()
    ));
    for &input in circuit.primary_inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.signal_name(input)));
    }
    for &output in circuit.primary_outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.signal_name(output)));
    }
    for (id, gate) in circuit.iter() {
        if gate.kind() == GateKind::Input {
            continue;
        }
        let args: Vec<&str> = gate
            .fanin()
            .iter()
            .map(|&driver| circuit.signal_name(driver))
            .collect();
        out.push_str(&format!(
            "{} = {}({})\n",
            circuit.signal_name(id),
            gate.kind().name(),
            args.join(", ")
        ));
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_directive<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if upper.starts_with(keyword) {
        Some(line[keyword.len()..].trim())
    } else {
        None
    }
}

fn parse_single_name(rest: &str, line: usize) -> Result<String, NetlistError> {
    let rest = rest.trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(NetlistError::Parse {
            line,
            message: "expected a single parenthesised signal name".to_string(),
        });
    }
    let name = rest[1..rest.len() - 1].trim();
    if name.is_empty() || name.contains(',') {
        return Err(NetlistError::Parse {
            line,
            message: "expected exactly one signal name".to_string(),
        });
    }
    Ok(name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const HALF_ADDER: &str = "\
# half adder
INPUT(a)
INPUT(b)
OUTPUT(sum)
OUTPUT(carry)
sum = XOR(a, b)
carry = AND(a, b)
";

    #[test]
    fn parses_half_adder() {
        let circuit = parse("half_adder", HALF_ADDER).expect("parses");
        assert_eq!(circuit.primary_inputs().len(), 2);
        assert_eq!(circuit.primary_outputs().len(), 2);
        assert_eq!(circuit.gate_count(), 4);
        let sum = circuit.find_signal("sum").expect("exists");
        assert_eq!(circuit.gate(sum).kind(), GateKind::Xor);
    }

    #[test]
    fn forward_references_are_allowed() {
        let text = "\
INPUT(a)
OUTPUT(z)
z = NOT(y)
y = NOT(a)
";
        let circuit = parse("forward", text).expect("parses");
        assert_eq!(circuit.gate_count(), 3);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = crate::library::c17();
        let text = write(&original);
        let reparsed = parse(original.name(), &text).expect("round trips");
        assert_eq!(reparsed.gate_count(), original.gate_count());
        assert_eq!(
            reparsed.primary_inputs().len(),
            original.primary_inputs().len()
        );
        assert_eq!(
            reparsed.primary_outputs().len(),
            original.primary_outputs().len()
        );
        // Every signal keeps its kind and fanin names.
        for (id, gate) in original.iter() {
            let name = original.signal_name(id);
            let new_id = reparsed.find_signal(name).expect("signal survives");
            assert_eq!(reparsed.gate(new_id).kind(), gate.kind());
            let old_fanin: Vec<&str> = gate
                .fanin()
                .iter()
                .map(|&d| original.signal_name(d))
                .collect();
            let new_fanin: Vec<&str> = reparsed
                .gate(new_id)
                .fanin()
                .iter()
                .map(|&d| reparsed.signal_name(d))
                .collect();
            assert_eq!(old_fanin, new_fanin);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n\n# leading comment\nINPUT(a)   # trailing comment\nOUTPUT(z)\nz = BUF(a)\n";
        let circuit = parse("comments", text).expect("parses");
        assert_eq!(circuit.gate_count(), 2);
    }

    #[test]
    fn unknown_function_is_reported_with_line() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n";
        match parse("bad", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("FROB"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn undefined_signal_is_reported() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n";
        match parse("bad", text) {
            Err(NetlistError::UnknownSignal { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected unknown signal, got {other:?}"),
        }
    }

    #[test]
    fn undefined_output_is_reported() {
        let text = "INPUT(a)\nOUTPUT(ghost)\nz = BUF(a)\n";
        assert!(matches!(
            parse("bad", text),
            Err(NetlistError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for text in [
            "INPUT a\n",
            "OUTPUT(a, b)\n",
            "z = AND(a,)\nINPUT(a)\nOUTPUT(z)\n",
            "just nonsense\n",
            " = AND(a, b)\n",
            "z = AND a, b\n",
        ] {
            assert!(parse("bad", text).is_err(), "should reject: {text}");
        }
    }

    #[test]
    fn input_on_rhs_is_rejected() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = INPUT(a)\n";
        assert!(matches!(
            parse("bad", text),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn dff_parses_and_round_trips() {
        // ISCAS-89 style: a flip-flop in a feedback loop, referenced before
        // it is defined.
        let text = "INPUT(a)\nOUTPUT(z)\nz = AND(a, q)\nq = DFF(z)\n";
        let circuit = parse("seq", text).expect("parses");
        let q = circuit.find_signal("q").expect("exists");
        assert_eq!(circuit.gate(q).kind(), GateKind::Dff);
        assert_eq!(circuit.state_elements(), &[q]);
        let written = write(&circuit);
        assert!(written.contains("q = DFF(z)"), "{written}");
        let reparsed = parse("seq", &written).expect("round trips");
        assert_eq!(reparsed.state_elements().len(), 1);
    }

    #[test]
    fn write_emits_headers() {
        let circuit = parse("half_adder", HALF_ADDER).expect("parses");
        let text = write(&circuit);
        assert!(text.contains("INPUT(a)"));
        assert!(text.contains("OUTPUT(carry)"));
        assert!(text.contains("sum = XOR(a, b)"));
    }
}
