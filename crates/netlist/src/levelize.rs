//! Topological levelisation of combinational circuits.
//!
//! Every simulator and the ATPG engine process gates in topological order;
//! this module computes that order once, assigns each gate a level (the
//! length of the longest path from a primary input or constant), and detects
//! combinational cycles.

use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;

/// The result of levelising a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    /// Gates in a valid topological order (drivers before loads).
    order: Vec<GateId>,
    /// Level of each gate, indexed by gate id.
    levels: Vec<usize>,
    /// The maximum level in the circuit (its logic depth).
    depth: usize,
}

impl Levelization {
    /// Gates in topological order.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Level of gate `id`: 0 for sources, otherwise 1 + max level of fanin.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the levelised circuit.
    pub fn level(&self, id: GateId) -> usize {
        self.levels[id.index()]
    }

    /// All levels indexed by gate id.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// The logic depth of the circuit (maximum level).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Computes a topological order and per-gate levels.
///
/// State elements ([`GateKind::Dff`](crate::gate::GateKind::Dff)) are
/// level-0 sources: their output is held state, so the D-pin edge is not an
/// ordering constraint and feedback loops through a flip-flop are legal.
/// Only cycles made entirely of combinational gates are rejected.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the circuit graph contains
/// a combinational cycle; the reported signal lies on one such cycle.
pub fn levelize(circuit: &Circuit) -> Result<Levelization, NetlistError> {
    let gate_count = circuit.gate_count();
    // A DFF's fanin edge carries state across clock cycles, not a
    // combinational dependency: its pending count starts at zero and its
    // loads-of-driver edge is skipped below.
    let mut pending_fanin: Vec<usize> = circuit
        .gates()
        .iter()
        .map(|gate| {
            if gate.kind().is_state() {
                0
            } else {
                gate.fanin_count()
            }
        })
        .collect();
    let mut levels = vec![0usize; gate_count];
    let mut order = Vec::with_capacity(gate_count);
    let mut ready: Vec<GateId> = circuit
        .iter()
        .filter(|(_, gate)| gate.fanin_count() == 0 || gate.kind().is_state())
        .map(|(id, _)| id)
        .collect();
    // Kahn's algorithm; the ready list is processed as a stack which is fine
    // because levels are computed from fanin maxima, not from visit order.
    while let Some(id) = ready.pop() {
        order.push(id);
        let gate_level = levels[id.index()];
        for &load in circuit.fanout(id) {
            if circuit.gate(load).kind().is_state() {
                // The load is a DFF: it is already scheduled as a source.
                continue;
            }
            let load_index = load.index();
            levels[load_index] = levels[load_index].max(gate_level + 1);
            pending_fanin[load_index] -= 1;
            if pending_fanin[load_index] == 0 {
                ready.push(load);
            }
        }
    }
    if order.len() != gate_count {
        // Some gate never became ready: it lies on (or behind) a cycle.
        let stuck = (0..gate_count)
            .find(|&i| pending_fanin[i] > 0)
            .expect("a gate with unresolved fanin must exist");
        return Err(NetlistError::CombinationalCycle {
            signal: circuit.signal_name(GateId(stuck)).to_string(),
        });
    }
    let depth = levels.iter().copied().max().unwrap_or(0);
    Ok(Levelization {
        order,
        levels,
        depth,
    })
}

/// Returns the gates grouped by level, from level 0 upwards.
pub fn gates_by_level(circuit: &Circuit, levelization: &Levelization) -> Vec<Vec<GateId>> {
    let mut buckets = vec![Vec::new(); levelization.depth() + 1];
    for (id, _) in circuit.iter() {
        buckets[levelization.level(id)].push(id);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::gate::GateKind;

    fn chain(length: usize) -> Circuit {
        let mut b = CircuitBuilder::new("chain");
        let mut prev = b.input("in");
        for i in 0..length {
            prev = b.gate(format!("n{i}"), GateKind::Not, &[prev]);
        }
        b.mark_output(prev);
        b.finish().expect("valid")
    }

    #[test]
    fn chain_depth_equals_length() {
        let c = chain(10);
        let lev = levelize(&c).expect("acyclic");
        assert_eq!(lev.depth(), 10);
        assert_eq!(lev.order().len(), c.gate_count());
    }

    #[test]
    fn drivers_come_before_loads() {
        let c = crate::library::c17();
        let lev = levelize(&c).expect("acyclic");
        let mut position = vec![0usize; c.gate_count()];
        for (pos, &id) in lev.order().iter().enumerate() {
            position[id.index()] = pos;
        }
        for (id, gate) in c.iter() {
            for &driver in gate.fanin() {
                assert!(
                    position[driver.index()] < position[id.index()],
                    "driver {driver} must precede {id}"
                );
            }
        }
    }

    #[test]
    fn levels_exceed_fanin_levels() {
        let c = crate::library::c17();
        let lev = levelize(&c).expect("acyclic");
        for (id, gate) in c.iter() {
            for &driver in gate.fanin() {
                assert!(lev.level(id) > lev.level(driver));
            }
        }
    }

    #[test]
    fn sources_are_level_zero() {
        let c = chain(3);
        let lev = levelize(&c).expect("acyclic");
        let input = c.primary_inputs()[0];
        assert_eq!(lev.level(input), 0);
    }

    #[test]
    fn gates_by_level_partitions_all_gates() {
        let c = crate::library::c17();
        let lev = levelize(&c).expect("acyclic");
        let buckets = gates_by_level(&c, &lev);
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, c.gate_count());
        for (level, bucket) in buckets.iter().enumerate() {
            for &id in bucket {
                assert_eq!(lev.level(id), level);
            }
        }
    }

    #[test]
    fn dff_feedback_loop_is_legal_and_level_zero() {
        // A toggle flip-flop: q = DFF(NOT(q)).  The feedback loop passes
        // through the state element, so it is not a combinational cycle.
        let mut b = CircuitBuilder::new("toggle");
        let q = b.dff_placeholder("q");
        let nq = b.gate("nq", GateKind::Not, &[q]);
        b.bind_dff(q, nq);
        b.mark_output(q);
        let c = b.finish().expect("sequential loop is valid");
        let lev = levelize(&c).expect("dff loop must not be a cycle");
        assert_eq!(lev.level(q), 0);
        assert_eq!(lev.level(nq), 1);
        assert_eq!(lev.order().len(), c.gate_count());
    }

    #[test]
    fn combinational_cycle_is_still_rejected_alongside_dffs() {
        // a = AND(na, q); na = NOT(a): a pure combinational cycle plus a
        // flip-flop.  The cycle must still be reported.  Forward GateId
        // references are resolved at finish, like the builder's cycle test.
        let mut b = CircuitBuilder::new("bad");
        let q = b.dff("q", GateId(1)); // D reads `a`, defined next
        let a = b.gate("a", GateKind::And, &[GateId(2), q]);
        let _na = b.gate("na", GateKind::Not, &[a]);
        b.mark_output(a);
        let err = b.finish().expect_err("combinational cycle");
        assert!(matches!(err, NetlistError::CombinationalCycle { .. }));
    }

    #[test]
    fn reconvergent_fanout_levels() {
        // a -> x -> z ; a -> z  (z = AND(x, a)); level(z) = 2.
        let mut b = CircuitBuilder::new("reconv");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a]);
        let z = b.gate("z", GateKind::And, &[x, a]);
        b.mark_output(z);
        let c = b.finish().expect("valid");
        let lev = levelize(&c).expect("acyclic");
        assert_eq!(lev.level(c.find_signal("z").expect("exists")), 2);
    }
}
