//! Incremental circuit construction.

use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::{Gate, GateKind};
use std::collections::HashMap;

/// Builds a [`Circuit`] gate by gate.
///
/// Signals are identified by name; the builder checks for duplicate
/// definitions eagerly and the final [`finish`](CircuitBuilder::finish)
/// validates fanin arities and output presence.
///
/// ```
/// use lsiq_netlist::{CircuitBuilder, GateKind};
///
/// # fn main() -> Result<(), lsiq_netlist::NetlistError> {
/// let mut builder = CircuitBuilder::new("half-adder");
/// let a = builder.input("a");
/// let b = builder.input("b");
/// let sum = builder.gate("sum", GateKind::Xor, &[a, b]);
/// let carry = builder.gate("carry", GateKind::And, &[a, b]);
/// builder.mark_output(sum);
/// builder.mark_output(carry);
/// let circuit = builder.finish()?;
/// assert_eq!(circuit.gate_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    gates: Vec<Gate>,
    signal_names: Vec<String>,
    outputs: Vec<GateId>,
    by_name: HashMap<String, GateId>,
    duplicate: Option<String>,
}

impl CircuitBuilder {
    /// Starts a new empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            gates: Vec::new(),
            signal_names: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
            duplicate: None,
        }
    }

    fn push(&mut self, name: String, gate: Gate) -> GateId {
        let id = GateId(self.gates.len());
        if self.by_name.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        self.gates.push(gate);
        self.signal_names.push(name);
        id
    }

    /// Adds a primary input and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> GateId {
        self.push(name.into(), Gate::new(GateKind::Input, Vec::new()))
    }

    /// Adds a logic gate driving the signal `name` and returns its id.
    ///
    /// Arity validation is deferred to [`finish`](CircuitBuilder::finish) so
    /// that generators can assemble circuits without intermediate error
    /// handling.
    pub fn gate(&mut self, name: impl Into<String>, kind: GateKind, fanin: &[GateId]) -> GateId {
        self.push(name.into(), Gate::new(kind, fanin.to_vec()))
    }

    /// Adds a D flip-flop driven by `d` and returns its id (the Q output).
    ///
    /// For feedback through the flip-flop (state machines, counters) use
    /// [`dff_placeholder`](CircuitBuilder::dff_placeholder) /
    /// [`bind_dff`](CircuitBuilder::bind_dff) so the next-state logic can be
    /// built from the Q output before the D pin exists.
    pub fn dff(&mut self, name: impl Into<String>, d: GateId) -> GateId {
        self.push(name.into(), Gate::new(GateKind::Dff, vec![d]))
    }

    /// Adds a D flip-flop whose D pin is bound later with
    /// [`bind_dff`](CircuitBuilder::bind_dff).  The returned id is the Q
    /// output and can be used as fanin immediately.  A placeholder left
    /// unbound fails [`finish`](CircuitBuilder::finish) with a
    /// [`NetlistError::BadFanin`] (a DFF takes exactly one input).
    pub fn dff_placeholder(&mut self, name: impl Into<String>) -> GateId {
        self.push(name.into(), Gate::new(GateKind::Dff, Vec::new()))
    }

    /// Binds the D pin of a flip-flop created by
    /// [`dff_placeholder`](CircuitBuilder::dff_placeholder).
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not an unbound DFF placeholder — binding twice or
    /// binding a logic gate is a construction bug, not an input error.
    pub fn bind_dff(&mut self, dff: GateId, d: GateId) {
        let gate = &self.gates[dff.index()];
        assert!(
            gate.kind() == GateKind::Dff && gate.fanin_count() == 0,
            "bind_dff target must be an unbound DFF placeholder"
        );
        self.gates[dff.index()] = Gate::new(GateKind::Dff, vec![d]);
    }

    /// Adds a constant-0 source.
    pub fn constant_zero(&mut self, name: impl Into<String>) -> GateId {
        self.push(name.into(), Gate::new(GateKind::Const0, Vec::new()))
    }

    /// Adds a constant-1 source.
    pub fn constant_one(&mut self, name: impl Into<String>) -> GateId {
        self.push(name.into(), Gate::new(GateKind::Const1, Vec::new()))
    }

    /// Marks the signal driven by `id` as a primary output.
    ///
    /// Marking the same gate twice is idempotent.
    pub fn mark_output(&mut self, id: GateId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Looks up a previously defined signal by name.
    pub fn find_signal(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Number of gates added so far.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// A fresh signal name of the form `prefix_N` guaranteed not to collide
    /// with any existing signal.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut counter = self.gates.len();
        loop {
            let candidate = format!("{prefix}_{counter}");
            if !self.by_name.contains_key(&candidate) {
                return candidate;
            }
            counter += 1;
        }
    }

    /// Finalises the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if two gates were given the
    /// same signal name, [`NetlistError::BadFanin`] for illegal arities,
    /// [`NetlistError::NoOutputs`] when no output was marked, or
    /// [`NetlistError::CombinationalCycle`] if the gates form a cycle.
    pub fn finish(self) -> Result<Circuit, NetlistError> {
        if let Some(name) = self.duplicate {
            return Err(NetlistError::DuplicateSignal { name });
        }
        let circuit = Circuit::from_parts(self.name, self.gates, self.signal_names, self.outputs)?;
        // Reject cyclic structures outright: every consumer assumes a DAG.
        crate::levelize::levelize(&circuit)?;
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_circuit() {
        let mut b = CircuitBuilder::new("demo");
        let a = b.input("a");
        let c = b.constant_one("one");
        let y = b.gate("y", GateKind::And, &[a, c]);
        b.mark_output(y);
        let circuit = b.finish().expect("valid");
        assert_eq!(circuit.gate_count(), 3);
        assert_eq!(circuit.primary_inputs().len(), 1);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = CircuitBuilder::new("dup");
        let a = b.input("a");
        let _ = b.gate("a", GateKind::Not, &[a]);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateSignal { .. })
        ));
    }

    #[test]
    fn bad_arity_is_rejected_at_finish() {
        let mut b = CircuitBuilder::new("arity");
        let a = b.input("a");
        let bad = b.gate("bad", GateKind::Not, &[a, a]);
        b.mark_output(bad);
        assert!(matches!(b.finish(), Err(NetlistError::BadFanin { .. })));
    }

    #[test]
    fn cycles_are_rejected_at_finish() {
        // Build a cycle by referencing a forward id: x = NOT(y); y = NOT(x).
        let mut b = CircuitBuilder::new("cycle");
        let x = b.gate("x", GateKind::Not, &[GateId(1)]);
        let y = b.gate("y", GateKind::Not, &[x]);
        b.mark_output(y);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut b = CircuitBuilder::new("idem");
        let a = b.input("a");
        let y = b.gate("y", GateKind::Buf, &[a]);
        b.mark_output(y);
        b.mark_output(y);
        let circuit = b.finish().expect("valid");
        assert_eq!(circuit.primary_outputs().len(), 1);
    }

    #[test]
    fn fresh_names_do_not_collide() {
        let mut b = CircuitBuilder::new("fresh");
        let _ = b.input("n_0");
        let name = b.fresh_name("n");
        assert_ne!(name, "n_0");
        assert!(b.find_signal(&name).is_none());
    }

    #[test]
    fn find_signal_before_finish() {
        let mut b = CircuitBuilder::new("find");
        let a = b.input("a");
        assert_eq!(b.find_signal("a"), Some(a));
        assert_eq!(b.find_signal("b"), None);
        assert_eq!(b.gate_count(), 1);
    }

    #[test]
    fn dff_feedback_builds_through_placeholder() {
        // A toggle cell: q = DFF(NOT(q)).
        let mut b = CircuitBuilder::new("toggle");
        let q = b.dff_placeholder("q");
        let nq = b.gate("nq", GateKind::Not, &[q]);
        b.bind_dff(q, nq);
        b.mark_output(nq);
        let circuit = b.finish().expect("valid sequential loop");
        assert_eq!(circuit.gate(q).kind(), GateKind::Dff);
        assert_eq!(circuit.gate(q).fanin(), &[nq]);
        assert_eq!(circuit.state_elements(), &[q]);
        assert!(circuit.has_state());
    }

    #[test]
    fn unbound_dff_placeholder_fails_finish() {
        let mut b = CircuitBuilder::new("unbound");
        let q = b.dff_placeholder("q");
        b.mark_output(q);
        assert!(matches!(b.finish(), Err(NetlistError::BadFanin { .. })));
    }

    #[test]
    fn constants_have_no_fanin() {
        let mut b = CircuitBuilder::new("consts");
        let zero = b.constant_zero("zero");
        let one = b.constant_one("one");
        let y = b.gate("y", GateKind::Or, &[zero, one]);
        b.mark_output(y);
        let circuit = b.finish().expect("valid");
        assert_eq!(circuit.gate(zero).fanin_count(), 0);
        assert_eq!(circuit.gate(one).kind(), GateKind::Const1);
    }
}
