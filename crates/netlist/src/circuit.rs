//! The combinational circuit container.

use crate::error::NetlistError;
use crate::gate::{Gate, GateKind};
use std::collections::HashMap;

/// Identifier of a gate within a [`Circuit`].
///
/// The identifier doubles as the identifier of the signal the gate drives:
/// every gate drives exactly one signal (its "stem"), and fanout branches are
/// addressed as (driven gate, input pin) pairs by the fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub usize);

impl GateId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for GateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A validated gate-level circuit — combinational logic plus optional D
/// flip-flop state elements.
///
/// Construct one with [`CircuitBuilder`](crate::builder::CircuitBuilder) or
/// by parsing a `.bench` description with
/// [`bench_format::parse`](crate::bench_format::parse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    gates: Vec<Gate>,
    signal_names: Vec<String>,
    primary_inputs: Vec<GateId>,
    primary_outputs: Vec<GateId>,
    state_elements: Vec<GateId>,
    fanout: Vec<Vec<GateId>>,
    name_index: HashMap<String, GateId>,
}

impl Circuit {
    /// Assembles a circuit from its parts, computing fanout and validating
    /// structure.  Intended for use by the builder and parser; library users
    /// should prefer [`CircuitBuilder`](crate::builder::CircuitBuilder).
    ///
    /// # Errors
    ///
    /// Returns an error if a gate's fanin arity is illegal for its kind, if a
    /// fanin reference is out of range, or if the circuit has no primary
    /// outputs.
    pub(crate) fn from_parts(
        name: String,
        gates: Vec<Gate>,
        signal_names: Vec<String>,
        primary_outputs: Vec<GateId>,
    ) -> Result<Self, NetlistError> {
        let gate_count = gates.len();
        let mut primary_inputs = Vec::new();
        let mut state_elements = Vec::new();
        let mut fanout = vec![Vec::new(); gate_count];
        for (index, gate) in gates.iter().enumerate() {
            let id = GateId(index);
            if !gate.kind().accepts_fanin(gate.fanin_count()) {
                return Err(NetlistError::BadFanin {
                    kind: gate.kind().name(),
                    actual: gate.fanin_count(),
                    expected: match gate.kind().fanin_bounds() {
                        (0, 0) => "no inputs",
                        (1, 1) => "exactly one input",
                        _ => "at least one input",
                    },
                });
            }
            for &driver in gate.fanin() {
                if driver.index() >= gate_count {
                    return Err(NetlistError::InvalidGateId {
                        id: driver.index(),
                        gate_count,
                    });
                }
                fanout[driver.index()].push(id);
            }
            if gate.kind() == GateKind::Input {
                primary_inputs.push(id);
            }
            if gate.kind().is_state() {
                state_elements.push(id);
            }
        }
        if primary_outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        for &out in &primary_outputs {
            if out.index() >= gate_count {
                return Err(NetlistError::InvalidGateId {
                    id: out.index(),
                    gate_count,
                });
            }
        }
        let mut name_index = HashMap::with_capacity(signal_names.len());
        for (index, signal) in signal_names.iter().enumerate() {
            name_index.insert(signal.clone(), GateId(index));
        }
        Ok(Circuit {
            name,
            gates,
            signal_names,
            primary_inputs,
            primary_outputs,
            state_elements,
            fanout,
            name_index,
        })
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates, counting primary inputs as gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The gate with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// All gates, indexed by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The signal name driven by gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn signal_name(&self, id: GateId) -> &str {
        &self.signal_names[id.index()]
    }

    /// Looks up a gate by the name of the signal it drives.
    pub fn find_signal(&self, name: &str) -> Option<GateId> {
        self.name_index.get(name).copied()
    }

    /// Primary input gates in declaration order.
    pub fn primary_inputs(&self) -> &[GateId] {
        &self.primary_inputs
    }

    /// Primary output gates in declaration order.
    pub fn primary_outputs(&self) -> &[GateId] {
        &self.primary_outputs
    }

    /// State elements (D flip-flops) in declaration order.
    pub fn state_elements(&self) -> &[GateId] {
        &self.state_elements
    }

    /// Returns `true` if the circuit contains any state element, i.e. is
    /// sequential rather than purely combinational.
    pub fn has_state(&self) -> bool {
        !self.state_elements.is_empty()
    }

    /// Gates driven by the output of gate `id` (its fanout list).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn fanout(&self, id: GateId) -> &[GateId] {
        &self.fanout[id.index()]
    }

    /// Number of fanout branches of gate `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this circuit.
    pub fn fanout_count(&self, id: GateId) -> usize {
        self.fanout[id.index()].len()
    }

    /// Returns `true` if gate `id` is a designated primary output.
    pub fn is_primary_output(&self, id: GateId) -> bool {
        self.primary_outputs.contains(&id)
    }

    /// Returns `true` if gate `id` is a fanout stem, i.e. drives more than
    /// one input pin (or drives pins and is also a primary output).
    pub fn is_fanout_stem(&self, id: GateId) -> bool {
        let branches = self.fanout_count(id) + usize::from(self.is_primary_output(id));
        branches > 1
    }

    /// Iterates over `(GateId, &Gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates.iter().enumerate().map(|(i, g)| (GateId(i), g))
    }

    /// Total number of gate input pins in the circuit.
    pub fn total_pin_count(&self) -> usize {
        self.gates.iter().map(|g| g.fanin_count()).sum()
    }

    /// Estimated CMOS transistor count of the whole circuit.
    pub fn transistor_estimate(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.kind().transistor_count(g.fanin_count()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn tiny_circuit() -> Circuit {
        // y = NAND(a, b); z = NOT(y); outputs y, z.
        let mut b = CircuitBuilder::new("tiny");
        let a = b.input("a");
        let bb = b.input("b");
        let y = b.gate("y", GateKind::Nand, &[a, bb]);
        let z = b.gate("z", GateKind::Not, &[y]);
        b.mark_output(y);
        b.mark_output(z);
        b.finish().expect("valid circuit")
    }

    #[test]
    fn accessors_report_structure() {
        let c = tiny_circuit();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.primary_inputs().len(), 2);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.total_pin_count(), 3);
        let y = c.find_signal("y").expect("exists");
        assert_eq!(c.gate(y).kind(), GateKind::Nand);
        assert_eq!(c.signal_name(y), "y");
        assert!(c.find_signal("missing").is_none());
    }

    #[test]
    fn fanout_is_computed() {
        let c = tiny_circuit();
        let a = c.find_signal("a").expect("exists");
        let y = c.find_signal("y").expect("exists");
        let z = c.find_signal("z").expect("exists");
        assert_eq!(c.fanout(a), &[y]);
        assert_eq!(c.fanout(y), &[z]);
        assert_eq!(c.fanout_count(z), 0);
    }

    #[test]
    fn fanout_stem_detection() {
        let mut b = CircuitBuilder::new("stem");
        let a = b.input("a");
        let x = b.gate("x", GateKind::Not, &[a]);
        let y = b.gate("y", GateKind::Not, &[a]);
        let z = b.gate("z", GateKind::And, &[x, y]);
        b.mark_output(z);
        let c = b.finish().expect("valid");
        let a = c.find_signal("a").expect("exists");
        assert!(c.is_fanout_stem(a));
        let x = c.find_signal("x").expect("exists");
        assert!(!c.is_fanout_stem(x));
    }

    #[test]
    fn output_that_also_fans_out_is_a_stem() {
        let c = tiny_circuit();
        // y drives z and is itself a primary output: two branches.
        let y = c.find_signal("y").expect("exists");
        assert!(c.is_fanout_stem(y));
    }

    #[test]
    fn circuit_without_outputs_is_rejected() {
        let mut b = CircuitBuilder::new("no-out");
        let a = b.input("a");
        let _ = b.gate("x", GateKind::Not, &[a]);
        assert!(matches!(b.finish(), Err(NetlistError::NoOutputs)));
    }

    #[test]
    fn transistor_estimate_sums_gates() {
        let c = tiny_circuit();
        // NAND2 = 4, NOT = 2, inputs = 0.
        assert_eq!(c.transistor_estimate(), 6);
    }

    #[test]
    fn iter_yields_every_gate_in_order() {
        let c = tiny_circuit();
        let ids: Vec<usize> = c.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn gate_id_display() {
        assert_eq!(GateId(7).to_string(), "g7");
        assert_eq!(GateId(7).index(), 7);
    }
}
