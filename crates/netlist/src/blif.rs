//! Reader and writer for the Berkeley Logic Interchange Format (BLIF),
//! gate-level subset with single-clock latches.
//!
//! BLIF is the exchange format of the Berkeley synthesis tools (SIS, ABC)
//! and the form in which the ISCAS benchmark circuits commonly circulate.
//! The supported subset is gate-level logic plus `.latch`:
//!
//! ```text
//! .model c17
//! .inputs G1 G2 G3 G6 G7   # line continuations with `\` are supported
//! .outputs G22 G23
//! .names G1 G3 G10         # sum-of-products cover, one cube per row
//! 11 0
//! .names G3 G6 G11
//! 11 0
//! .latch G11 S0 re clk 0   # D flip-flop: input, output, [type control], [init]
//! .end
//! ```
//!
//! Each `.names` block lists the cube inputs followed by the output signal,
//! then one cover row per cube: an input plane over `0`/`1`/`-` and a single
//! output character.  Rows with output `1` describe the ON-set (the function
//! is the OR of the cubes); rows with output `0` describe the OFF-set (the
//! function is the complement of the OR).  Mixing both phases in one block
//! is rejected.
//!
//! # Gate mapping
//!
//! Covers that correspond to a single primitive are mapped directly — a
//! single all-`1` cube becomes `AND` (`NAND` for phase 0), a single all-`0`
//! cube becomes `NOR` (`OR` for phase 0), single-literal covers become
//! `BUF`/`NOT`, empty covers become constants.  General covers are
//! synthesised as a two-level network: one `NOT` per negated literal
//! (signal `out$nI`), one `AND` per multi-literal cube (signal `out$cJ`),
//! and a final `OR`/`NOR` driving the block's output signal.
//!
//! # Latches
//!
//! `.latch <input> <output> [<type> <control>] [<init-val>]` becomes a
//! [`GateKind::Dff`].  The model is single-clock edge-triggered full scan:
//! the trigger type and control clock are parsed and discarded (a `<type>`
//! outside `fe re ah al as` is rejected), and the initial value (`0`–`3`,
//! default `3` = unknown) is accepted but not stored — state is controlled
//! through scan ([`crate::scan`]), never through reset, so the init value
//! carries no information here.  The writer emits `2` (don't care).
//!
//! # Error behaviour
//!
//! Hierarchical and multi-clock constructs (`.subckt`, `.gate`, `.mlatch`,
//! …) are rejected with [`NetlistError::Parse`] naming the line, as are
//! malformed cover rows and signals driven more than once (two `.names`
//! blocks, a `.latch` colliding with a `.names`, or a driver for a declared
//! `.inputs` signal); references to never-defined signals surface as
//! [`NetlistError::UnknownSignal`], and the remaining structural errors
//! (missing outputs, cycles) come from [`CircuitBuilder`].
//! See `docs/FORMATS.md` for the full ingestion guide.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::GateKind;
use std::collections::HashMap;

/// One `.names` block: the signal list (inputs first, output last) and the
/// raw cover rows.
struct NamesBlock {
    signals: Vec<String>,
    cover: Vec<(String, char)>,
    line: usize,
}

/// One parsed netlist element, in declaration order.
enum Element {
    Names(NamesBlock),
    Latch {
        input: String,
        output: String,
        line: usize,
    },
}

/// One literal of a cube: a block-input position, plain or negated.
#[derive(Clone, Copy)]
enum Term {
    Pos(usize),
    Neg(usize),
}

/// The synthesis plan of one `.names` block.
enum Plan {
    /// The cover is constant (empty cover, or a tautological all-`-` cube).
    Const(bool),
    /// Sum of products: OR of the cubes, complemented when `phase` is false.
    Sop { cubes: Vec<Vec<Term>>, phase: bool },
}

/// Parses a BLIF description into a [`Circuit`].
///
/// `name` is the circuit name used when the text carries no `.model`
/// directive; a `.model` name takes precedence.  Signals may be referenced
/// before they are defined.
///
/// ```
/// use lsiq_netlist::blif;
/// use lsiq_netlist::GateKind;
///
/// let text = "\
/// .model majority
/// .inputs a b c
/// .outputs m
/// .names a b c m
/// 11- 1
/// 1-1 1
/// -11 1
/// .end
/// ";
/// let circuit = blif::parse("fallback", text).expect("parses");
/// assert_eq!(circuit.name(), "majority");
/// assert_eq!(circuit.primary_inputs().len(), 3);
/// let m = circuit.find_signal("m").expect("exists");
/// assert_eq!(circuit.gate(m).kind(), GateKind::Or);
/// ```
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for unsupported or malformed constructs
/// (with the offending line number), [`NetlistError::UnknownSignal`] for
/// references that are never defined, and the usual structural errors for
/// duplicate names, missing outputs or cycles.
pub fn parse(name: &str, text: &str) -> Result<Circuit, NetlistError> {
    let mut model_name: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut elements: Vec<Element> = Vec::new();
    let mut in_names = false;

    for (line, content) in logical_lines(text) {
        let content = content.trim();
        if content.is_empty() {
            continue;
        }
        if content.starts_with('.') {
            let mut parts = content.split_whitespace();
            let directive = parts.next().expect("non-empty line");
            in_names = false;
            match directive {
                ".model" => {
                    if model_name.is_some() {
                        return Err(NetlistError::Parse {
                            line,
                            message: "duplicate `.model` directive".to_string(),
                        });
                    }
                    let given = parts.next().ok_or_else(|| NetlistError::Parse {
                        line,
                        message: "`.model` needs a name".to_string(),
                    })?;
                    model_name = Some(given.to_string());
                }
                ".inputs" => inputs.extend(parts.map(str::to_string)),
                ".outputs" => outputs.extend(parts.map(str::to_string)),
                ".names" => {
                    let signals: Vec<String> = parts.map(str::to_string).collect();
                    if signals.is_empty() {
                        return Err(NetlistError::Parse {
                            line,
                            message: "`.names` needs at least an output signal".to_string(),
                        });
                    }
                    elements.push(Element::Names(NamesBlock {
                        signals,
                        cover: Vec::new(),
                        line,
                    }));
                    in_names = true;
                }
                ".latch" => {
                    let tokens: Vec<&str> = parts.collect();
                    let (input, output, kind, init) = match tokens.as_slice() {
                        [input, output] => (*input, *output, None, None),
                        [input, output, init] => (*input, *output, None, Some(*init)),
                        [input, output, kind, _control] => (*input, *output, Some(*kind), None),
                        [input, output, kind, _control, init] => {
                            (*input, *output, Some(*kind), Some(*init))
                        }
                        _ => {
                            return Err(NetlistError::Parse {
                                line,
                                message: "`.latch` needs `<input> <output> \
                                          [<type> <control>] [<init-val>]`"
                                    .to_string(),
                            });
                        }
                    };
                    if let Some(kind) = kind {
                        if !matches!(kind, "fe" | "re" | "ah" | "al" | "as") {
                            return Err(NetlistError::Parse {
                                line,
                                message: format!(
                                    "invalid `.latch` trigger type `{kind}` \
                                     (expected fe, re, ah, al or as)"
                                ),
                            });
                        }
                    }
                    if let Some(init) = init {
                        if !matches!(init, "0" | "1" | "2" | "3") {
                            return Err(NetlistError::Parse {
                                line,
                                message: format!(
                                    "invalid `.latch` initial value `{init}` (expected 0-3)"
                                ),
                            });
                        }
                    }
                    elements.push(Element::Latch {
                        input: input.to_string(),
                        output: output.to_string(),
                        line,
                    });
                }
                ".end" => break,
                ".subckt" | ".gate" | ".mlatch" | ".clock" | ".exdc" => {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!(
                            "unsupported BLIF construct `{directive}` (supported subset: \
                             .model, .inputs, .outputs, .names, .latch, .end)"
                        ),
                    });
                }
                other => {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("unknown BLIF directive `{other}`"),
                    });
                }
            }
        } else {
            if !in_names {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("cover row `{content}` outside a `.names` block"),
                });
            }
            let block = match elements.last_mut() {
                Some(Element::Names(block)) => block,
                _ => unreachable!("in_names implies a trailing block"),
            };
            block
                .cover
                .push(parse_cover_row(content, block.signals.len() - 1, line)?);
        }
    }

    // Every signal has exactly one driver; report collisions with the line
    // of the second definition before the builder turns them into a
    // line-less `DuplicateSignal`.
    let input_set: std::collections::HashSet<&str> = inputs.iter().map(String::as_str).collect();
    let mut driven: HashMap<&str, usize> = HashMap::new();
    for element in &elements {
        let (output, line) = match element {
            Element::Names(block) => (
                block.signals.last().expect("validated non-empty").as_str(),
                block.line,
            ),
            Element::Latch { output, line, .. } => (output.as_str(), *line),
        };
        if input_set.contains(output) {
            return Err(NetlistError::Parse {
                line,
                message: format!("signal `{output}` is declared `.inputs` and also driven"),
            });
        }
        if let Some(first) = driven.insert(output, line) {
            return Err(NetlistError::Parse {
                line,
                message: format!(
                    "signal `{output}` driven more than once (first driven at line {first})"
                ),
            });
        }
    }

    let circuit_name = model_name.unwrap_or_else(|| name.to_string());
    let plans: Vec<Option<Plan>> = elements
        .iter()
        .map(|element| match element {
            Element::Names(block) => plan_block(block).map(Some),
            Element::Latch { .. } => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    // First pass: create every gate (including the synthesised NOT/AND
    // helpers) with placeholder fanin, purely to assign ids to names; both
    // passes emit the same gate sequence, so the ids agree.
    let mut index = CircuitBuilder::new(circuit_name.clone());
    for input in &inputs {
        index.input(input.clone());
    }
    for (element, plan) in elements.iter().zip(plans.iter()) {
        emit_element(&mut index, element, plan.as_ref(), &mut |_| Ok(GateId(0)))?;
    }

    // Second pass: emit again with fanin resolved through the first pass.
    let mut builder = CircuitBuilder::new(circuit_name);
    for input in &inputs {
        builder.input(input.clone());
    }
    for (element, plan) in elements.iter().zip(plans.iter()) {
        emit_element(&mut builder, element, plan.as_ref(), &mut |signal| {
            index
                .find_signal(signal)
                .ok_or_else(|| NetlistError::UnknownSignal {
                    name: signal.to_string(),
                })
        })?;
    }
    for output in &outputs {
        let id = builder
            .find_signal(output)
            .ok_or_else(|| NetlistError::UnknownSignal {
                name: output.clone(),
            })?;
        builder.mark_output(id);
    }
    builder.finish()
}

/// Joins `\`-continued lines and strips `#` comments, yielding
/// `(first line number, logical line)` pairs.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (index, raw) in text.lines().enumerate() {
        let stripped = match raw.find('#') {
            Some(position) => &raw[..position],
            None => raw,
        };
        let trimmed = stripped.trim_end();
        let (content, continued) = match trimmed.strip_suffix('\\') {
            Some(head) => (head, true),
            None => (trimmed, false),
        };
        match pending.take() {
            Some((line, mut joined)) => {
                joined.push(' ');
                joined.push_str(content);
                if continued {
                    pending = Some((line, joined));
                } else {
                    lines.push((line, joined));
                }
            }
            None if continued => pending = Some((index + 1, content.to_string())),
            None => lines.push((index + 1, content.to_string())),
        }
    }
    if let Some(entry) = pending {
        lines.push(entry);
    }
    lines
}

/// Parses one cover row into `(input plane, output character)`.
fn parse_cover_row(
    content: &str,
    input_count: usize,
    line: usize,
) -> Result<(String, char), NetlistError> {
    let tokens: Vec<&str> = content.split_whitespace().collect();
    let (plane, output) = match (input_count, tokens.as_slice()) {
        (0, [output]) => (String::new(), *output),
        (_, [plane, output]) if input_count > 0 => ((*plane).to_string(), *output),
        _ => {
            return Err(NetlistError::Parse {
                line,
                message: format!(
                    "expected {} cover row, found `{content}`",
                    if input_count == 0 {
                        "a bare `0`/`1`".to_string()
                    } else {
                        "`<input-plane> <output>`".to_string()
                    }
                ),
            })
        }
    };
    if plane.chars().count() != input_count {
        return Err(NetlistError::Parse {
            line,
            message: format!(
                "input plane `{plane}` has {} columns, the `.names` block has {input_count} inputs",
                plane.chars().count()
            ),
        });
    }
    if let Some(bad) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
        return Err(NetlistError::Parse {
            line,
            message: format!("invalid input-plane character `{bad}` (expected 0, 1 or -)"),
        });
    }
    match output {
        "0" => Ok((plane, '0')),
        "1" => Ok((plane, '1')),
        other => Err(NetlistError::Parse {
            line,
            message: format!("invalid cover output `{other}` (expected 0 or 1)"),
        }),
    }
}

/// Derives the synthesis plan of a `.names` block from its cover.
fn plan_block(block: &NamesBlock) -> Result<Plan, NetlistError> {
    if block.cover.is_empty() {
        // No ON-set cube: the function is constant 0.
        return Ok(Plan::Const(false));
    }
    let phase = block.cover[0].1 == '1';
    if block
        .cover
        .iter()
        .any(|(_, value)| (*value == '1') != phase)
    {
        return Err(NetlistError::Parse {
            line: block.line,
            message: "mixed cover output phases in one `.names` block".to_string(),
        });
    }
    let mut cubes = Vec::with_capacity(block.cover.len());
    for (plane, _) in &block.cover {
        let mut terms = Vec::new();
        for (position, value) in plane.chars().enumerate() {
            match value {
                '1' => terms.push(Term::Pos(position)),
                '0' => terms.push(Term::Neg(position)),
                _ => {}
            }
        }
        if terms.is_empty() {
            // An all-`-` cube covers everything: the function is constant.
            return Ok(Plan::Const(phase));
        }
        cubes.push(terms);
    }
    Ok(Plan::Sop { cubes, phase })
}

/// Emits one parsed element: a `.latch` becomes a single DFF gate, a
/// `.names` block goes through [`emit_block`].
fn emit_element(
    builder: &mut CircuitBuilder,
    element: &Element,
    plan: Option<&Plan>,
    resolve: &mut dyn FnMut(&str) -> Result<GateId, NetlistError>,
) -> Result<(), NetlistError> {
    match element {
        Element::Names(block) => {
            let plan = plan.expect("names elements carry a plan");
            emit_block(builder, block, plan, resolve)
        }
        Element::Latch { input, output, .. } => {
            let driver = resolve(input)?;
            builder.dff(output.clone(), driver);
            Ok(())
        }
    }
}

/// Emits the gates of one planned `.names` block.
///
/// `resolve` maps a referenced signal name to its gate id; the first parse
/// pass supplies a placeholder (only the emission *sequence* matters there),
/// the second the real ids.  Both passes run this same function, so the
/// sequences cannot diverge.
fn emit_block(
    builder: &mut CircuitBuilder,
    block: &NamesBlock,
    plan: &Plan,
    resolve: &mut dyn FnMut(&str) -> Result<GateId, NetlistError>,
) -> Result<(), NetlistError> {
    let output = block.signals.last().expect("validated non-empty").clone();
    let input_names = &block.signals[..block.signals.len() - 1];
    let (cubes, phase) = match plan {
        Plan::Const(false) => {
            builder.gate(output, GateKind::Const0, &[]);
            return Ok(());
        }
        Plan::Const(true) => {
            builder.gate(output, GateKind::Const1, &[]);
            return Ok(());
        }
        Plan::Sop { cubes, phase } => (cubes, *phase),
    };

    // One shared NOT per negated block input, created on first use.
    let mut negations: HashMap<usize, GateId> = HashMap::new();
    let mut negated = |builder: &mut CircuitBuilder,
                       resolve: &mut dyn FnMut(&str) -> Result<GateId, NetlistError>,
                       position: usize|
     -> Result<GateId, NetlistError> {
        if let Some(&id) = negations.get(&position) {
            return Ok(id);
        }
        let driver = resolve(&input_names[position])?;
        let id = builder.gate(format!("{output}$n{position}"), GateKind::Not, &[driver]);
        negations.insert(position, id);
        Ok(id)
    };

    if let [cube] = cubes.as_slice() {
        // Single cube: fold the polarity into the gate kind when uniform.
        if let [term] = cube.as_slice() {
            let (position, positive) = match *term {
                Term::Pos(position) => (position, true),
                Term::Neg(position) => (position, false),
            };
            let driver = resolve(&input_names[position])?;
            let kind = if positive == phase {
                GateKind::Buf
            } else {
                GateKind::Not
            };
            builder.gate(output, kind, &[driver]);
        } else if cube.iter().all(|term| matches!(term, Term::Pos(_))) {
            let fanin = resolve_terms(cube, input_names, resolve)?;
            let kind = if phase { GateKind::And } else { GateKind::Nand };
            builder.gate(output, kind, &fanin);
        } else if cube.iter().all(|term| matches!(term, Term::Neg(_))) {
            // AND of complements is NOR of the plain signals (De Morgan).
            let fanin = resolve_terms(cube, input_names, resolve)?;
            let kind = if phase { GateKind::Nor } else { GateKind::Or };
            builder.gate(output, kind, &fanin);
        } else {
            let mut fanin = Vec::with_capacity(cube.len());
            for &term in cube {
                fanin.push(match term {
                    Term::Pos(position) => resolve(&input_names[position])?,
                    Term::Neg(position) => negated(builder, resolve, position)?,
                });
            }
            let kind = if phase { GateKind::And } else { GateKind::Nand };
            builder.gate(output, kind, &fanin);
        }
        return Ok(());
    }

    // General sum of products: one AND per multi-literal cube, then the
    // OR (NOR for phase 0) over the cube terms.
    let mut cube_terms = Vec::with_capacity(cubes.len());
    for (cube_index, cube) in cubes.iter().enumerate() {
        let term = if let [term] = cube.as_slice() {
            match *term {
                Term::Pos(position) => resolve(&input_names[position])?,
                Term::Neg(position) => negated(builder, resolve, position)?,
            }
        } else {
            let mut fanin = Vec::with_capacity(cube.len());
            for &term in cube {
                fanin.push(match term {
                    Term::Pos(position) => resolve(&input_names[position])?,
                    Term::Neg(position) => negated(builder, resolve, position)?,
                });
            }
            builder.gate(format!("{output}$c{cube_index}"), GateKind::And, &fanin)
        };
        cube_terms.push(term);
    }
    let kind = if phase { GateKind::Or } else { GateKind::Nor };
    builder.gate(output, kind, &cube_terms);
    Ok(())
}

/// Resolves every literal of a uniform-polarity cube to its plain driver.
fn resolve_terms(
    cube: &[Term],
    input_names: &[String],
    resolve: &mut dyn FnMut(&str) -> Result<GateId, NetlistError>,
) -> Result<Vec<GateId>, NetlistError> {
    cube.iter()
        .map(|&term| {
            let position = match term {
                Term::Pos(position) | Term::Neg(position) => position,
            };
            resolve(&input_names[position])
        })
        .collect()
}

/// Serialises a circuit to BLIF text.
///
/// Every logic gate becomes one `.names` block with a canonical cover and
/// every D flip-flop a `.latch` line (initial value `2`, don't care — state
/// is controlled through scan, not reset); the output parses back to a
/// circuit with the same signal names and equivalent logic (XOR/XNOR covers
/// are exponential in fanin and re-synthesise as sum-of-products networks,
/// all other kinds round-trip structurally).
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", circuit.name()));
    if !circuit.primary_inputs().is_empty() {
        out.push_str(".inputs");
        for &input in circuit.primary_inputs() {
            out.push(' ');
            out.push_str(circuit.signal_name(input));
        }
        out.push('\n');
    }
    if !circuit.primary_outputs().is_empty() {
        out.push_str(".outputs");
        for &output in circuit.primary_outputs() {
            out.push(' ');
            out.push_str(circuit.signal_name(output));
        }
        out.push('\n');
    }
    for (id, gate) in circuit.iter() {
        if gate.kind() == GateKind::Input {
            continue;
        }
        if gate.kind() == GateKind::Dff {
            out.push_str(&format!(
                ".latch {} {} 2\n",
                circuit.signal_name(gate.fanin()[0]),
                circuit.signal_name(id)
            ));
            continue;
        }
        out.push_str(".names");
        for &driver in gate.fanin() {
            out.push(' ');
            out.push_str(circuit.signal_name(driver));
        }
        out.push(' ');
        out.push_str(circuit.signal_name(id));
        out.push('\n');
        let fanin = gate.fanin().len();
        match gate.kind() {
            GateKind::Input | GateKind::Dff => unreachable!("handled above"),
            GateKind::Const0 => {}
            GateKind::Const1 => out.push_str("1\n"),
            GateKind::Buf => out.push_str("1 1\n"),
            GateKind::Not => out.push_str("0 1\n"),
            GateKind::And => out.push_str(&format!("{} 1\n", "1".repeat(fanin))),
            GateKind::Nand => out.push_str(&format!("{} 0\n", "1".repeat(fanin))),
            GateKind::Or => out.push_str(&format!("{} 0\n", "0".repeat(fanin))),
            GateKind::Nor => out.push_str(&format!("{} 1\n", "0".repeat(fanin))),
            GateKind::Xor | GateKind::Xnor => {
                let want_odd = gate.kind() == GateKind::Xor;
                for assignment in 0u64..(1u64 << fanin) {
                    if (assignment.count_ones() % 2 == 1) != want_odd {
                        continue;
                    }
                    let row: String = (0..fanin)
                        .map(|bit| {
                            if (assignment >> bit) & 1 == 1 {
                                '1'
                            } else {
                                '0'
                            }
                        })
                        .collect();
                    out.push_str(&format!("{row} 1\n"));
                }
            }
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    const C17_BLIF: &str = "\
.model c17
.inputs G1 G2 G3 G6 G7
.outputs G22 G23
.names G1 G3 G10
11 0
.names G3 G6 G11
11 0
.names G2 G11 G16
11 0
.names G11 G7 G19
11 0
.names G10 G16 G22
11 0
.names G16 G19 G23
11 0
.end
";

    /// Tiny reference evaluator (recursive with memoisation) so the BLIF
    /// tests can check functional equivalence without depending on the
    /// simulation crate.
    fn evaluate(circuit: &Circuit, assignment: &[bool]) -> Vec<bool> {
        fn value(circuit: &Circuit, id: GateId, memo: &mut Vec<Option<bool>>) -> bool {
            if let Some(cached) = memo[id.index()] {
                return cached;
            }
            let gate = circuit.gate(id);
            let inputs: Vec<bool> = gate
                .fanin()
                .iter()
                .map(|&driver| value(circuit, driver, memo))
                .collect();
            let result = match gate.kind() {
                GateKind::Input => false,
                GateKind::Dff => false, // reset state
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                GateKind::Buf => inputs[0],
                GateKind::Not => !inputs[0],
                GateKind::And => inputs.iter().all(|&v| v),
                GateKind::Nand => !inputs.iter().all(|&v| v),
                GateKind::Or => inputs.iter().any(|&v| v),
                GateKind::Nor => !inputs.iter().any(|&v| v),
                GateKind::Xor => inputs.iter().filter(|&&v| v).count() % 2 == 1,
                GateKind::Xnor => inputs.iter().filter(|&&v| v).count() % 2 == 0,
            };
            memo[id.index()] = Some(result);
            result
        }
        let mut memo: Vec<Option<bool>> = vec![None; circuit.gate_count()];
        for (position, &input) in circuit.primary_inputs().iter().enumerate() {
            memo[input.index()] = Some(assignment.get(position).copied().unwrap_or(false));
        }
        circuit
            .primary_outputs()
            .iter()
            .map(|&output| value(circuit, output, &mut memo))
            .collect()
    }

    #[test]
    fn parses_c17_with_direct_gate_mapping() {
        let circuit = parse("fallback", C17_BLIF).expect("parses");
        assert_eq!(circuit.name(), "c17");
        assert_eq!(circuit.primary_inputs().len(), 5);
        assert_eq!(circuit.primary_outputs().len(), 2);
        assert_eq!(circuit.gate_count(), 11); // 5 inputs + 6 NANDs, no helpers
        for signal in ["G10", "G11", "G16", "G19", "G22", "G23"] {
            let id = circuit.find_signal(signal).expect("exists");
            assert_eq!(circuit.gate(id).kind(), GateKind::Nand, "{signal}");
        }
        // Bit-for-bit the same function as the built-in library circuit.
        let reference = library::c17();
        for pattern in 0u64..32 {
            let assignment: Vec<bool> = (0..5).map(|bit| (pattern >> bit) & 1 == 1).collect();
            assert_eq!(
                evaluate(&circuit, &assignment),
                evaluate(&reference, &assignment),
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn maps_single_cube_covers_onto_primitives() {
        let text = "\
.model kinds
.inputs a b
.outputs and_ nand_ nor_ or_ buf_ not_
.names a b and_
11 1
.names a b nand_
11 0
.names a b nor_
00 1
.names a b or_
00 0
.names a buf_
1 1
.names a not_
0 1
.end
";
        let circuit = parse("kinds", text).expect("parses");
        let expect = [
            ("and_", GateKind::And),
            ("nand_", GateKind::Nand),
            ("nor_", GateKind::Nor),
            ("or_", GateKind::Or),
            ("buf_", GateKind::Buf),
            ("not_", GateKind::Not),
        ];
        for (signal, kind) in expect {
            let id = circuit.find_signal(signal).expect("exists");
            assert_eq!(circuit.gate(id).kind(), kind, "{signal}");
        }
        assert_eq!(circuit.gate_count(), 8); // no helper gates needed
    }

    #[test]
    fn synthesises_general_covers_as_two_level_networks() {
        // f = a·¬b + c  (mixed polarity, multiple cubes).
        let text = "\
.model sop
.inputs a b c
.outputs f
.names a b c f
10- 1
--1 1
.end
";
        let circuit = parse("sop", text).expect("parses");
        let f = circuit.find_signal("f").expect("exists");
        assert_eq!(circuit.gate(f).kind(), GateKind::Or);
        // Helpers: one NOT for ¬b, one AND for the first cube.
        assert!(circuit.find_signal("f$n1").is_some());
        assert!(circuit.find_signal("f$c0").is_some());
        for (a, b, c) in [
            (false, false, false),
            (true, false, false),
            (true, true, true),
        ] {
            let expected = (a && !b) || c;
            assert_eq!(
                evaluate(&circuit, &[a, b, c]),
                vec![expected],
                "{a} {b} {c}"
            );
        }
    }

    #[test]
    fn constants_and_tautologies() {
        let text = "\
.model consts
.outputs zero one dash
.names zero
.names one
1
.names dash
0
.end
";
        // `.names dash` + row `0`: empty OFF-set cube covers everything,
        // so the function is constant 0.
        let circuit = parse("consts", text).expect("parses");
        let zero = circuit.find_signal("zero").expect("exists");
        let one = circuit.find_signal("one").expect("exists");
        let dash = circuit.find_signal("dash").expect("exists");
        assert_eq!(circuit.gate(zero).kind(), GateKind::Const0);
        assert_eq!(circuit.gate(one).kind(), GateKind::Const1);
        assert_eq!(circuit.gate(dash).kind(), GateKind::Const0);
    }

    #[test]
    fn line_continuations_and_comments() {
        let text = "\
.model cont   # trailing comment
.inputs a \\
b
.outputs z
.names a b \\
z
11 1
.end
";
        let circuit = parse("cont", text).expect("parses");
        assert_eq!(circuit.primary_inputs().len(), 2);
        let z = circuit.find_signal("z").expect("exists");
        assert_eq!(circuit.gate(z).kind(), GateKind::And);
    }

    #[test]
    fn forward_references_are_allowed() {
        let text = "\
.model forward
.inputs a
.outputs z
.names y z
0 1
.names a y
0 1
.end
";
        let circuit = parse("forward", text).expect("parses");
        assert_eq!(circuit.gate_count(), 3);
    }

    #[test]
    fn model_name_falls_back_to_the_argument() {
        let text = ".inputs a\n.outputs z\n.names a z\n1 1\n";
        let circuit = parse("fallback", text).expect("parses");
        assert_eq!(circuit.name(), "fallback");
    }

    #[test]
    fn hierarchical_constructs_are_rejected() {
        for (construct, snippet) in [
            (".subckt", ".subckt sub a=x\n"),
            (".gate", ".gate nand2 a=x b=y o=z\n"),
            (".mlatch", ".mlatch lat d=x q=z clk 0\n"),
        ] {
            let text = format!(".model seq\n.inputs a\n.outputs z\n{snippet}");
            match parse("seq", &text) {
                Err(NetlistError::Parse { line, message }) => {
                    assert_eq!(line, 4, "{construct}");
                    assert!(message.contains(construct), "{message}");
                }
                other => panic!("{construct}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_covers_are_rejected_with_lines() {
        // Wrong plane width.
        let text = ".model m\n.inputs a b\n.outputs z\n.names a b z\n111 1\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 5);
                assert!(message.contains("3 columns"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Bad plane character.
        let text = ".model m\n.inputs a\n.outputs z\n.names a z\nx 1\n.end\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::Parse { line: 5, .. })
        ));
        // Bad output character.
        let text = ".model m\n.inputs a\n.outputs z\n.names a z\n1 2\n.end\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::Parse { line: 5, .. })
        ));
        // Mixed phases.
        let text = ".model m\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { message, .. }) => {
                assert!(message.contains("mixed"), "{message}")
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Cover row with no block.
        let text = ".model m\n.inputs a\n11 1\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::Parse { line: 3, .. })
        ));
        // Unknown directive, duplicate model, empty .names.
        for text in [
            ".model m\n.frobnicate\n",
            ".model m\n.model n\n",
            ".model m\n.names\n",
        ] {
            assert!(matches!(parse("m", text), Err(NetlistError::Parse { .. })));
        }
    }

    #[test]
    fn unknown_signals_are_reported() {
        let text = ".model m\n.inputs a\n.outputs z\n.names ghost z\n1 1\n.end\n";
        match parse("m", text) {
            Err(NetlistError::UnknownSignal { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected unknown signal, got {other:?}"),
        }
        let text = ".model m\n.inputs a\n.outputs ghost\n.names a z\n1 1\n.end\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn latch_forms_all_parse_to_dff() {
        // 2-, 3-, 4- and 5-token `.latch` lines, including a feedback loop
        // through a latch (q2 toggles off its own inverse).
        let text = "\
.model seq
.inputs d clk
.outputs q0 q1 q2 q3
.latch d q0
.latch d q1 0
.latch d q3 re clk
.latch nq2 q2 re clk 3
.names q2 nq2
0 1
.end
";
        let circuit = parse("seq", text).expect("parses");
        assert_eq!(circuit.state_elements().len(), 4);
        assert!(circuit.has_state());
        for signal in ["q0", "q1", "q2", "q3"] {
            let id = circuit.find_signal(signal).expect("exists");
            assert_eq!(circuit.gate(id).kind(), GateKind::Dff, "{signal}");
        }
        let q2 = circuit.find_signal("q2").expect("exists");
        let nq2 = circuit.find_signal("nq2").expect("exists");
        assert_eq!(circuit.gate(q2).fanin(), &[nq2]);
    }

    #[test]
    fn malformed_latches_are_rejected_with_lines() {
        // Too few tokens.
        let text = ".model m\n.inputs d\n.outputs q\n.latch d\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains(".latch"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Bad initial value.
        let text = ".model m\n.inputs d\n.outputs q\n.latch d q 7\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("initial value"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Bad trigger type.
        let text = ".model m\n.inputs d\n.outputs q\n.latch d q xx clk 0\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains("trigger type"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Too many tokens.
        let text = ".model m\n.inputs d\n.outputs q\n.latch d q re clk 0 extra\n.end\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn duplicate_drivers_are_rejected_with_lines() {
        // Two `.names` blocks for one signal.
        let text = ".model m\n.inputs a b\n.outputs z\n.names a z\n1 1\n.names b z\n1 1\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 6);
                assert!(message.contains("more than once"), "{message}");
                assert!(message.contains("line 4"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // A `.latch` output colliding with a `.names` output.
        let text = ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n.latch a z\n.end\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::Parse { line: 6, .. })
        ));
        // A driver for a declared `.inputs` signal.
        let text = ".model m\n.inputs a b\n.outputs a\n.names b a\n1 1\n.end\n";
        match parse("m", text) {
            Err(NetlistError::Parse { line, message }) => {
                assert_eq!(line, 4);
                assert!(message.contains(".inputs"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Same, through a latch.
        let text = ".model m\n.inputs a b\n.outputs a\n.latch b a\n.end\n";
        assert!(matches!(
            parse("m", text),
            Err(NetlistError::Parse { line: 4, .. })
        ));
    }

    #[test]
    fn output_that_is_also_an_input_round_trips() {
        let mut b = CircuitBuilder::new("passthrough");
        let a = b.input("a");
        let z = b.gate("z", GateKind::Not, &[a]);
        b.mark_output(a);
        b.mark_output(z);
        let original = b.finish().expect("valid");
        let text = write(&original);
        let reparsed = parse("passthrough", &text).expect("round trips");
        assert_eq!(reparsed.primary_outputs().len(), 2);
        let a = reparsed.find_signal("a").expect("exists");
        assert_eq!(reparsed.gate(a).kind(), GateKind::Input);
        assert!(reparsed.is_primary_output(a));
    }

    #[test]
    fn constant_gates_round_trip() {
        let mut b = CircuitBuilder::new("consts");
        let zero = b.constant_zero("zero");
        let one = b.constant_one("one");
        b.mark_output(zero);
        b.mark_output(one);
        let original = b.finish().expect("valid");
        let text = write(&original);
        let reparsed = parse("consts", &text).expect("round trips");
        let zero = reparsed.find_signal("zero").expect("exists");
        let one = reparsed.find_signal("one").expect("exists");
        assert_eq!(reparsed.gate(zero).kind(), GateKind::Const0);
        assert_eq!(reparsed.gate(one).kind(), GateKind::Const1);
    }

    #[test]
    fn latch_round_trip_preserves_state_elements() {
        // A two-bit Johnson-style twist: q1 = DFF(q0), q0 = DFF(NOT(q1)).
        let mut b = CircuitBuilder::new("twist");
        let q1 = b.dff_placeholder("q1");
        let nq1 = b.gate("nq1", GateKind::Not, &[q1]);
        let q0 = b.dff("q0", nq1);
        b.bind_dff(q1, q0);
        let out = b.gate("out", GateKind::And, &[q0, q1]);
        b.mark_output(out);
        let original = b.finish().expect("valid");
        let text = write(&original);
        assert!(text.contains(".latch q0 q1 2"), "{text}");
        assert!(text.contains(".latch nq1 q0 2"), "{text}");
        let reparsed = parse("twist", &text).expect("round trips");
        assert_eq!(
            reparsed.state_elements().len(),
            original.state_elements().len()
        );
        for (id, gate) in original.iter() {
            let name = original.signal_name(id);
            let new_id = reparsed.find_signal(name).expect("signal survives");
            assert_eq!(reparsed.gate(new_id).kind(), gate.kind(), "{name}");
        }
    }

    #[test]
    fn round_trip_preserves_structure_without_xor() {
        let original = library::c17();
        let text = write(&original);
        let reparsed = parse(original.name(), &text).expect("round trips");
        assert_eq!(reparsed.gate_count(), original.gate_count());
        assert_eq!(reparsed.name(), original.name());
        for (id, gate) in original.iter() {
            let name = original.signal_name(id);
            let new_id = reparsed.find_signal(name).expect("signal survives");
            assert_eq!(reparsed.gate(new_id).kind(), gate.kind(), "{name}");
            let old_fanin: Vec<&str> = gate
                .fanin()
                .iter()
                .map(|&driver| original.signal_name(driver))
                .collect();
            let new_fanin: Vec<&str> = reparsed
                .gate(new_id)
                .fanin()
                .iter()
                .map(|&driver| reparsed.signal_name(driver))
                .collect();
            assert_eq!(old_fanin, new_fanin, "{name}");
        }
    }

    #[test]
    fn round_trip_preserves_function_with_xor() {
        // XOR covers re-synthesise as SOP networks: structure changes,
        // function must not.
        let original = library::full_adder();
        let text = write(&original);
        let reparsed = parse(original.name(), &text).expect("round trips");
        for pattern in 0u64..8 {
            let assignment: Vec<bool> = (0..3).map(|bit| (pattern >> bit) & 1 == 1).collect();
            assert_eq!(
                evaluate(&original, &assignment),
                evaluate(&reparsed, &assignment),
                "pattern {pattern}"
            );
        }
    }
}
