//! Structural circuit statistics.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use crate::levelize::levelize;
use std::collections::BTreeMap;

/// Structural statistics of a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of primary inputs.
    pub primary_inputs: usize,
    /// Number of primary outputs.
    pub primary_outputs: usize,
    /// Number of logic gates (everything that is not a primary input).
    pub logic_gates: usize,
    /// Total number of gate input pins.
    pub pins: usize,
    /// Number of fanout stems (signals driving more than one branch).
    pub fanout_stems: usize,
    /// Logic depth (maximum level), zero for purely input circuits.
    pub depth: usize,
    /// Estimated CMOS transistor count.
    pub transistors: usize,
    /// Gate counts broken down by kind.
    pub by_kind: BTreeMap<GateKind, usize>,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a combinational cycle, which validated
    /// circuits cannot.
    pub fn of(circuit: &Circuit) -> CircuitStats {
        let mut by_kind: BTreeMap<GateKind, usize> = BTreeMap::new();
        for (_, gate) in circuit.iter() {
            *by_kind.entry(gate.kind()).or_insert(0) += 1;
        }
        let logic_gates = circuit.gate_count()
            - by_kind.get(&GateKind::Input).copied().unwrap_or(0)
            - by_kind.get(&GateKind::Const0).copied().unwrap_or(0)
            - by_kind.get(&GateKind::Const1).copied().unwrap_or(0);
        let fanout_stems = circuit
            .iter()
            .filter(|(id, _)| circuit.is_fanout_stem(*id))
            .count();
        let depth = levelize(circuit)
            .expect("validated circuits are acyclic")
            .depth();
        CircuitStats {
            primary_inputs: circuit.primary_inputs().len(),
            primary_outputs: circuit.primary_outputs().len(),
            logic_gates,
            pins: circuit.total_pin_count(),
            fanout_stems,
            depth,
            transistors: circuit.transistor_estimate(),
            by_kind,
        }
    }

    /// Number of single stuck-at fault sites under the standard convention
    /// (two faults per gate output plus two per fanout branch pin).
    ///
    /// This is the uncollapsed fault-universe size `N` that the paper's
    /// coverage fraction `f = m/N` refers to.
    pub fn uncollapsed_fault_sites(&self) -> usize {
        2 * (self.primary_inputs + self.logic_gates) + 2 * self.pins
    }
}

impl std::fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "inputs: {}, outputs: {}, gates: {}, pins: {}",
            self.primary_inputs, self.primary_outputs, self.logic_gates, self.pins
        )?;
        writeln!(
            f,
            "fanout stems: {}, depth: {}, transistors (est.): {}",
            self.fanout_stems, self.depth, self.transistors
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn c17_statistics() {
        let stats = CircuitStats::of(&library::c17());
        assert_eq!(stats.primary_inputs, 5);
        assert_eq!(stats.primary_outputs, 2);
        assert_eq!(stats.logic_gates, 6);
        assert_eq!(stats.pins, 12);
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.by_kind.get(&GateKind::Nand), Some(&6));
        assert_eq!(stats.transistors, 6 * 4);
    }

    #[test]
    fn fault_site_count_matches_convention() {
        let stats = CircuitStats::of(&library::c17());
        // 2*(5 + 6) + 2*12 = 46 uncollapsed stuck-at sites for c17.
        assert_eq!(stats.uncollapsed_fault_sites(), 46);
    }

    #[test]
    fn display_is_not_empty() {
        let stats = CircuitStats::of(&library::half_adder());
        let text = stats.to_string();
        assert!(text.contains("inputs: 2"));
        assert!(text.contains("XOR"));
    }

    #[test]
    fn larger_circuits_have_more_of_everything() {
        let small = CircuitStats::of(&library::adder4());
        let big = CircuitStats::of(&crate::generator::ripple_carry_adder(16));
        assert!(big.logic_gates > small.logic_gates);
        assert!(big.pins > small.pins);
        assert!(big.transistors > small.transistors);
        assert!(big.depth > small.depth);
    }
}
