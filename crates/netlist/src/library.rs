//! Embedded example circuits.
//!
//! Includes the classic ISCAS-85 `c17` netlist, a handful of small arithmetic
//! blocks used throughout the test suites, and [`lsi_class`], a composite
//! circuit sized to roughly 25 000 transistor equivalents that stands in for
//! the Bell Labs LSI chip of the paper's Section 7 experiment.

use crate::bench_format;
use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::generator::{alu, ripple_carry_adder};
use crate::generator::{
    alu_block, array_multiplier_block, comparator_block, decoder_block, mux_tree_block,
    parity_tree_block, random_circuit, ripple_carry_adder_block, AluWidth, RandomCircuitConfig,
};

/// The ISCAS-85 `c17` benchmark: 5 inputs, 2 outputs, 6 NAND gates.
///
/// Small enough for exhaustive truth-table checks, which makes it the
/// reference circuit for validating the simulators and fault machinery.
pub fn c17() -> Circuit {
    const TEXT: &str = "\
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";
    bench_format::parse("c17", TEXT).expect("embedded c17 netlist is valid")
}

/// A half adder (2 inputs, sum and carry outputs).
pub fn half_adder() -> Circuit {
    const TEXT: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(sum)
OUTPUT(carry)
sum = XOR(a, b)
carry = AND(a, b)
";
    bench_format::parse("half_adder", TEXT).expect("embedded half adder is valid")
}

/// A full adder (3 inputs, sum and carry outputs).
pub fn full_adder() -> Circuit {
    const TEXT: &str = "\
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
axb = XOR(a, b)
sum = XOR(axb, cin)
ab = AND(a, b)
axbc = AND(axb, cin)
cout = OR(ab, axbc)
";
    bench_format::parse("full_adder", TEXT).expect("embedded full adder is valid")
}

/// A 4-bit ripple-carry adder.
pub fn adder4() -> Circuit {
    ripple_carry_adder(4)
}

/// A 4-bit four-function ALU.
pub fn alu4() -> Circuit {
    alu(AluWidth(4))
}

/// Configuration of the LSI-class composite circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsiClassConfig {
    /// Target transistor-equivalent count; generation stops once the
    /// estimate reaches this value.
    pub target_transistors: usize,
    /// Seed controlling the random-logic portions.
    pub seed: u64,
}

impl Default for LsiClassConfig {
    fn default() -> Self {
        // The paper's Section 7 chip "contains about 25,000 transistors".
        LsiClassConfig {
            target_transistors: 25_000,
            seed: 1981,
        }
    }
}

/// Builds an LSI-class composite circuit of datapath blocks, decode/control
/// logic and random logic, sized by transistor estimate.
///
/// The circuit is purely combinational (the paper's analysis operates on the
/// combinational stuck-at universe) and deterministic for a given
/// configuration.
pub fn lsi_class(config: LsiClassConfig) -> Circuit {
    lsi_class_impl(config, false)
}

/// Builds the sequential variant of [`lsi_class`]: the same composite of
/// datapath, decode and random-logic blocks, but with every bus and control
/// input held in a D flip-flop, the way an LSI chip of the era latched its
/// pads into an internal register file.
///
/// The 40 input registers (two 16-bit buses plus 8 control bits) are the
/// state that [`scan::insert_scan`](crate::scan::insert_scan) stitches into
/// chains for the full-scan BIST experiments.
pub fn sequential_lsi_class(config: LsiClassConfig) -> Circuit {
    lsi_class_impl(config, true)
}

fn lsi_class_impl(config: LsiClassConfig, registered_inputs: bool) -> Circuit {
    let variant = if registered_inputs { "seq_" } else { "" };
    let mut builder = CircuitBuilder::new(format!(
        "lsi_class_{variant}{}t_{}",
        config.target_transistors, config.seed
    ));
    // A shared bus of primary inputs that the blocks draw operands from,
    // mimicking an internal data bus.  In the sequential variant each bus
    // and control line is registered before use.
    let latch = |builder: &mut CircuitBuilder, pin: crate::circuit::GateId, name: String| {
        if registered_inputs {
            builder.dff(name, pin)
        } else {
            pin
        }
    };
    let bus_width = 16usize;
    let bus_a: Vec<_> = (0..bus_width)
        .map(|i| {
            let pin = builder.input(format!("busa{i}"));
            latch(&mut builder, pin, format!("rbusa{i}"))
        })
        .collect();
    let bus_b: Vec<_> = (0..bus_width)
        .map(|i| {
            let pin = builder.input(format!("busb{i}"));
            latch(&mut builder, pin, format!("rbusb{i}"))
        })
        .collect();
    let control: Vec<_> = (0..8)
        .map(|i| {
            let pin = builder.input(format!("ctl{i}"));
            latch(&mut builder, pin, format!("rctl{i}"))
        })
        .collect();

    let mut block_index = 0usize;
    let mut estimate = 0usize;
    // Rotate through block kinds until the transistor budget is met.
    while estimate < config.target_transistors {
        let prefix = format!("b{block_index}");
        let before = builder.gate_count();
        match block_index % 6 {
            0 => {
                let (sums, carry) = ripple_carry_adder_block(
                    &mut builder,
                    &bus_a,
                    &bus_b,
                    Some(control[0]),
                    &prefix,
                );
                for s in sums {
                    builder.mark_output(s);
                }
                builder.mark_output(carry);
            }
            1 => {
                let product =
                    array_multiplier_block(&mut builder, &bus_a[..8], &bus_b[..8], &prefix);
                for p in product {
                    builder.mark_output(p);
                }
            }
            2 => {
                let (result, carry) = alu_block(
                    &mut builder,
                    &bus_a[..8],
                    &bus_b[..8],
                    &control[..2],
                    &prefix,
                );
                for r in result {
                    builder.mark_output(r);
                }
                builder.mark_output(carry);
            }
            3 => {
                let decoded = decoder_block(&mut builder, &control[..5], &prefix);
                // Qualify each decode line with a bus bit and fold into a
                // parity signature so the decoder is observable.
                let qualified: Vec<_> = decoded
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        builder.gate(
                            format!("{prefix}_q{i}"),
                            crate::gate::GateKind::And,
                            &[d, bus_a[i % bus_width]],
                        )
                    })
                    .collect();
                let signature = parity_tree_block(&mut builder, &qualified, &prefix);
                builder.mark_output(signature);
            }
            4 => {
                let (equal, greater) = comparator_block(&mut builder, &bus_a, &bus_b, &prefix);
                builder.mark_output(equal);
                builder.mark_output(greater);
                let selected = mux_tree_block(
                    &mut builder,
                    &bus_a[..8],
                    &control[..3],
                    &format!("{prefix}_m"),
                );
                builder.mark_output(selected);
            }
            _ => {
                // Random control logic is generated as a standalone circuit
                // and spliced in by name, driven from the buses.
                let random = random_circuit(&RandomCircuitConfig {
                    inputs: 24,
                    gates: 600,
                    max_fanin: 4,
                    locality: 48,
                    seed: config.seed.wrapping_add(block_index as u64),
                });
                splice(&mut builder, &random, &prefix, &[&bus_a, &bus_b, &control]);
            }
        }
        let after = builder.gate_count();
        // Update the running transistor estimate from the gates just added.
        estimate += estimate_added(&builder, before, after);
        block_index += 1;
    }
    builder
        .finish()
        .expect("composite LSI-class circuit is structurally valid")
}

/// Copies `donor` into `builder`, renaming its signals with `prefix` and
/// replacing its primary inputs with signals taken round-robin from the
/// supplied driver groups.  The donor's primary outputs become outputs of the
/// composite circuit.
fn splice(
    builder: &mut CircuitBuilder,
    donor: &Circuit,
    prefix: &str,
    driver_groups: &[&Vec<crate::circuit::GateId>],
) {
    use crate::gate::GateKind;
    let all_drivers: Vec<crate::circuit::GateId> = driver_groups
        .iter()
        .flat_map(|group| group.iter().copied())
        .collect();
    let mut mapping = vec![None; donor.gate_count()];
    let mut input_counter = 0usize;
    for (id, gate) in donor.iter() {
        let mapped = if gate.kind() == GateKind::Input {
            let driver = all_drivers[input_counter % all_drivers.len()];
            input_counter += 1;
            driver
        } else {
            let fanin: Vec<_> = gate
                .fanin()
                .iter()
                .map(|&d| mapping[d.index()].expect("donor gates are in topological id order"))
                .collect();
            builder.gate(
                format!("{prefix}_{}", donor.signal_name(id)),
                gate.kind(),
                &fanin,
            )
        };
        mapping[id.index()] = Some(mapped);
    }
    for &out in donor.primary_outputs() {
        if donor.gate(out).kind() != GateKind::Input {
            builder.mark_output(mapping[out.index()].expect("mapped above"));
        }
    }
}

/// Estimates transistors contributed by gates added between two builder
/// checkpoints.  The builder does not expose its gates directly, so the
/// estimate is reconstructed from gate count growth with the average cost of
/// a 2–3 input static CMOS gate (about 6 transistors).
fn estimate_added(_builder: &CircuitBuilder, before: usize, after: usize) -> usize {
    (after - before) * 6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_structure() {
        let c = c17();
        assert_eq!(c.primary_inputs().len(), 5);
        assert_eq!(c.primary_outputs().len(), 2);
        assert_eq!(c.gate_count(), 11);
    }

    #[test]
    fn small_arithmetic_blocks_build() {
        assert_eq!(half_adder().primary_outputs().len(), 2);
        assert_eq!(full_adder().primary_inputs().len(), 3);
        assert_eq!(adder4().primary_outputs().len(), 5);
        assert!(alu4().gate_count() > 50);
    }

    #[test]
    fn lsi_class_reaches_transistor_target() {
        let config = LsiClassConfig {
            target_transistors: 5_000,
            seed: 3,
        };
        let c = lsi_class(config);
        assert!(
            c.transistor_estimate() >= 4_000,
            "estimate {} too small",
            c.transistor_estimate()
        );
        assert!(!c.primary_outputs().is_empty());
    }

    #[test]
    fn lsi_class_is_deterministic() {
        let config = LsiClassConfig {
            target_transistors: 3_000,
            seed: 11,
        };
        assert_eq!(lsi_class(config), lsi_class(config));
    }

    #[test]
    fn default_lsi_class_config_targets_paper_chip() {
        let config = LsiClassConfig::default();
        assert_eq!(config.target_transistors, 25_000);
    }

    #[test]
    fn sequential_lsi_class_registers_every_pad() {
        let config = LsiClassConfig {
            target_transistors: 3_000,
            seed: 7,
        };
        let c = sequential_lsi_class(config);
        // Two 16-bit buses plus 8 control lines, each behind a flip-flop.
        assert_eq!(c.state_elements().len(), 40);
        assert_eq!(c.primary_inputs().len(), 40);
        assert!(c.has_state());
        // The combinational portion is the same block rotation: same input
        // and output counts as the combinational build.
        let comb = lsi_class(config);
        assert_eq!(c.primary_outputs().len(), comb.primary_outputs().len());
        assert!(!comb.has_state());
        // Deterministic like its combinational sibling.
        assert_eq!(sequential_lsi_class(config), sequential_lsi_class(config));
    }
}
