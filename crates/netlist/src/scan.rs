//! Full-scan insertion and the time-frame-expanded test view.
//!
//! The 1981 study measured fault coverage on a production LSI chip tested
//! through its scan interface.  This module provides the design-for-test
//! transformation that makes the rest of the workspace — five combinational
//! fault-simulation engines, STUMPS pattern generation, MISR compaction —
//! applicable to sequential devices without any per-engine changes:
//!
//! 1. [`insert_scan`] rewrites a sequential [`Circuit`] so every D flip-flop
//!    becomes a *scan cell*: a 2:1 multiplexer in front of the D pin selects
//!    between functional data (`scan_en = 0`) and the previous cell of a
//!    shift chain (`scan_en = 1`).  The flip-flops are stitched into
//!    `chains` near-equal shift registers, each with its own `scan_in`
//!    primary input and a `scan_out` primary output (the last cell's Q).
//!
//! 2. The companion *test view* is the one-time-frame expansion of the scan
//!    design in capture mode: `scan_en` is tied to constant 0, every
//!    flip-flop is replaced by a pseudo-primary input (its Q is controllable
//!    by shifting), and every scan-cell mux output is a pseudo-primary
//!    output (its D capture is observable by shifting out).  The view is a
//!    pure combinational circuit with the *same gate ids* as the scan
//!    design, so faults located in one are meaningful in the other.
//!
//! A full-scan test cycle — shift a pattern in, pulse the functional clock
//! once, shift the response out — is then exactly one combinational
//! simulation of the test view.  Stuck-at faults on the inserted mux gates
//! model defects in the scan path itself and are part of the view's fault
//! universe like any other gate fault.
//!
//! # Scan-cell construction
//!
//! The mux is synthesised from the workspace's primitive gates.  One
//! inverter `scan_en$n` is shared by the whole design; each cell `q` with
//! functional next-state signal `d` and shift predecessor `si` becomes:
//!
//! ```text
//! q$d   = AND(scan_en$n, d)     -- functional path, enabled when scan_en=0
//! q$s   = AND(scan_en, si)      -- shift path, enabled when scan_en=1
//! q$mux = OR(q$d, q$s)          -- the 2:1 mux
//! q     = DFF(q$mux)
//! ```
//!
//! Three gates per cell plus the shared inverter: the area overhead the
//! paper's era paid for scan design, reproduced structurally.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, GateId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Name of the scan-enable primary input added by [`insert_scan`].
pub const SCAN_ENABLE_NAME: &str = "scan_en";

/// A scan-inserted design together with its expanded combinational test
/// view.
///
/// Both circuits share one gate-id space: gate `g` in
/// [`circuit`](ScanCircuit::circuit) and gate `g` in
/// [`test_view`](ScanCircuit::test_view) describe the same physical site
/// (the view merely re-types `scan_en` as constant 0 and each flip-flop as
/// a pseudo-primary input).
#[derive(Debug, Clone)]
pub struct ScanCircuit {
    circuit: Circuit,
    test_view: Circuit,
    chains: Vec<Vec<GateId>>,
    scan_enable: GateId,
    scan_ins: Vec<GateId>,
    scan_outs: Vec<GateId>,
    scan_path_gates: Vec<GateId>,
    functional_output_count: usize,
}

impl ScanCircuit {
    /// The scan-inserted sequential circuit (mux-D scan cells, stitched
    /// chains, `scan_en`/`scan_in*` inputs, `scan_out` outputs).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The time-frame-expanded combinational test view: one scan test cycle
    /// (shift in, capture, shift out) equals one simulation of this circuit.
    ///
    /// Its primary inputs are the `scan_in*` pins, the functional primary
    /// inputs and one pseudo-primary input per flip-flop, in gate-id order;
    /// its primary outputs are the functional (non-flip-flop) outputs
    /// followed by one pseudo-primary output per scan cell in chain-major
    /// shift order — the exact bit order a tester or MISR observes.
    pub fn test_view(&self) -> &Circuit {
        &self.test_view
    }

    /// Scan chains in shift order: `chains()[c]` lists the Q gate ids of
    /// chain `c` from the cell nearest `scan_in` to the cell driving
    /// `scan_out`.
    pub fn chains(&self) -> &[Vec<GateId>] {
        &self.chains
    }

    /// Number of scan chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Total number of scan cells (flip-flops in the original design).
    pub fn cell_count(&self) -> usize {
        self.chains.iter().map(|chain| chain.len()).sum()
    }

    /// Length of the longest chain — the number of shift clocks needed to
    /// load or unload the design.
    pub fn max_chain_length(&self) -> usize {
        self.chains
            .iter()
            .map(|chain| chain.len())
            .max()
            .unwrap_or(0)
    }

    /// The `scan_en` primary input gate.
    pub fn scan_enable(&self) -> GateId {
        self.scan_enable
    }

    /// The `scan_in` primary input gate of each chain.
    pub fn scan_ins(&self) -> &[GateId] {
        &self.scan_ins
    }

    /// The `scan_out` gate (last cell Q) of each chain.
    pub fn scan_outs(&self) -> &[GateId] {
        &self.scan_outs
    }

    /// Gates inserted by scan stitching: the shared `scan_en$n` inverter and
    /// each cell's `$d`/`$s`/`$mux` gates.  Faults on these sites (in either
    /// id space) model defects in the scan path itself.
    pub fn scan_path_gates(&self) -> &[GateId] {
        &self.scan_path_gates
    }

    /// Number of functional (non-flip-flop) primary outputs at the front of
    /// the test view's output list; the remaining outputs are the per-cell
    /// pseudo-primary outputs in chain-major shift order.
    pub fn functional_output_count(&self) -> usize {
        self.functional_output_count
    }
}

/// Stitches every flip-flop of `circuit` into `chains` scan chains and
/// builds the expanded combinational test view.
///
/// Chains are formed from contiguous, near-equal runs of
/// [`Circuit::state_elements`] order, so the assignment is deterministic
/// for a given netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Scan`] if `chains` is zero, if the circuit has
/// no flip-flops, or if there are more chains than flip-flops, and
/// [`NetlistError::DuplicateSignal`] if the circuit already uses one of the
/// reserved scan signal names (`scan_en`, `scan_in*`, `*$d`, `*$s`,
/// `*$mux`).
pub fn insert_scan(circuit: &Circuit, chains: usize) -> Result<ScanCircuit, NetlistError> {
    if chains == 0 {
        return Err(NetlistError::Scan {
            message: "at least one scan chain is required".to_string(),
        });
    }
    let cells = circuit.state_elements().len();
    if cells == 0 {
        return Err(NetlistError::Scan {
            message: format!(
                "circuit `{}` has no flip-flops to stitch into scan chains",
                circuit.name()
            ),
        });
    }
    if chains > cells {
        return Err(NetlistError::Scan {
            message: format!("cannot split {cells} flip-flop(s) into {chains} scan chains"),
        });
    }

    // New ids are assigned arithmetically up front so original fanin
    // references can be rewritten in a single pass: the preamble occupies
    // ids 0..chains+2, then each original gate takes one slot, except
    // flip-flops which expand to four ($d, $s, $mux, Q at base+3).
    let scan_enable = GateId(0);
    let scan_ins: Vec<GateId> = (0..chains).map(|c| GateId(1 + c)).collect();
    let not_scan_enable = GateId(1 + chains);
    let mut map = Vec::with_capacity(circuit.gate_count());
    let mut next = 2 + chains;
    for gate in circuit.gates() {
        if gate.kind().is_state() {
            map.push(GateId(next + 3));
            next += 4;
        } else {
            map.push(GateId(next));
            next += 1;
        }
    }

    // Chain c gets cells chain_start(c)..chain_start(c+1) of state-element
    // order; the first `cells % chains` chains are one cell longer.
    let chain_of_cell = |cell: usize| -> (usize, bool) {
        let base = cells / chains;
        let longer = cells % chains;
        if cell < longer * (base + 1) {
            (cell / (base + 1), cell % (base + 1) == 0)
        } else {
            let rest = cell - longer * (base + 1);
            (longer + rest / base, rest % base == 0)
        }
    };

    let mut builder = CircuitBuilder::new(format!("{}_scan", circuit.name()));
    let scan_en = builder.input(SCAN_ENABLE_NAME);
    debug_assert_eq!(scan_en, scan_enable);
    for (c, &scan_in) in scan_ins.iter().enumerate() {
        let id = builder.input(format!("scan_in{c}"));
        debug_assert_eq!(id, scan_in);
    }
    let nse = builder.gate(format!("{SCAN_ENABLE_NAME}$n"), GateKind::Not, &[scan_en]);
    debug_assert_eq!(nse, not_scan_enable);

    let mut scan_path_gates = vec![not_scan_enable];
    let mut chain_lists: Vec<Vec<GateId>> = vec![Vec::new(); chains];
    let mut cell_index = 0usize;
    for (id, gate) in circuit.iter() {
        let name = circuit.signal_name(id);
        if gate.kind().is_state() {
            let (chain, is_first) = chain_of_cell(cell_index);
            let shift_in = if is_first {
                scan_ins[chain]
            } else {
                // State elements appear in id order, so the predecessor's
                // mapped Q id is already known (and may even be a forward
                // reference — the builder validates ids only at finish).
                *chain_lists[chain].last().expect("non-first cell")
            };
            let d = map[gate.fanin()[0].index()];
            let d_and = builder.gate(format!("{name}$d"), GateKind::And, &[nse, d]);
            let s_and = builder.gate(format!("{name}$s"), GateKind::And, &[scan_en, shift_in]);
            let mux = builder.gate(format!("{name}$mux"), GateKind::Or, &[d_and, s_and]);
            let q = builder.dff(name, mux);
            debug_assert_eq!(q, map[id.index()]);
            scan_path_gates.extend([d_and, s_and, mux]);
            chain_lists[chain].push(q);
            cell_index += 1;
        } else {
            let fanin: Vec<GateId> = gate.fanin().iter().map(|f| map[f.index()]).collect();
            let new_id = builder.gate(name, gate.kind(), &fanin);
            debug_assert_eq!(new_id, map[id.index()]);
        }
    }
    for &out in circuit.primary_outputs() {
        builder.mark_output(map[out.index()]);
    }
    let scan_outs: Vec<GateId> = chain_lists
        .iter()
        .map(|chain| *chain.last().expect("chains are non-empty"))
        .collect();
    for &out in &scan_outs {
        builder.mark_output(out);
    }
    let scan_circuit = builder.finish()?;

    // The test view re-types gates in place: same ids, same names, but
    // capture mode is frozen in (scan_en = 0) and every flip-flop becomes a
    // pseudo-primary input.
    let mut view = CircuitBuilder::new(format!("{}_scan_view", circuit.name()));
    for (id, gate) in scan_circuit.iter() {
        let name = scan_circuit.signal_name(id);
        let new_id = if id == scan_enable {
            view.constant_zero(name)
        } else if gate.kind().is_state() {
            view.input(name)
        } else {
            view.gate(name, gate.kind(), gate.fanin())
        };
        debug_assert_eq!(new_id, id);
    }
    let mut functional_output_count = 0usize;
    for &out in circuit.primary_outputs() {
        if !circuit.gate(out).kind().is_state() {
            view.mark_output(map[out.index()]);
            functional_output_count += 1;
        }
        // A flip-flop that drives a functional output is observed through
        // scan-out like any other cell: its Q is a pseudo-primary *input*
        // in the view, so it contributes nothing as an output.
    }
    for chain in &chain_lists {
        for &q in chain {
            // Q's single fanin in the scan circuit is the cell's mux: the
            // pseudo-primary output observed when the response shifts out.
            view.mark_output(scan_circuit.gate(q).fanin()[0]);
        }
    }
    let test_view = view.finish()?;
    debug_assert!(!test_view.has_state());

    Ok(ScanCircuit {
        circuit: scan_circuit,
        test_view,
        chains: chain_lists,
        scan_enable,
        scan_ins,
        scan_outs,
        scan_path_gates,
        functional_output_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use std::collections::HashMap;

    /// A 4-bit twisted-ring (Johnson) counter with a decoded output:
    /// d0 = NOT(q3), d_i = q_{i-1}, out = AND(q0, q3).
    fn johnson4() -> Circuit {
        let mut b = CircuitBuilder::new("johnson4");
        let q: Vec<GateId> = (0..4).map(|i| b.dff_placeholder(format!("q{i}"))).collect();
        let nq3 = b.gate("nq3", GateKind::Not, &[q[3]]);
        b.bind_dff(q[0], nq3);
        for i in 1..4 {
            b.bind_dff(q[i], q[i - 1]);
        }
        let out = b.gate("out", GateKind::And, &[q[0], q[3]]);
        b.mark_output(out);
        b.mark_output(q[3]);
        b.finish().expect("valid sequential circuit")
    }

    /// Evaluates a combinational circuit by memoised recursion; `inputs`
    /// maps primary-input ids to values.
    fn eval(circuit: &Circuit, inputs: &HashMap<GateId, bool>, id: GateId) -> bool {
        fn go(
            circuit: &Circuit,
            inputs: &HashMap<GateId, bool>,
            memo: &mut HashMap<GateId, bool>,
            id: GateId,
        ) -> bool {
            if let Some(&v) = memo.get(&id) {
                return v;
            }
            let gate: &Gate = circuit.gate(id);
            let v = match gate.kind() {
                GateKind::Input => inputs[&id],
                GateKind::Const0 => false,
                GateKind::Const1 => true,
                kind => {
                    let ins: Vec<bool> = gate
                        .fanin()
                        .iter()
                        .map(|&f| go(circuit, inputs, memo, f))
                        .collect();
                    match kind {
                        GateKind::Buf => ins[0],
                        GateKind::Not => !ins[0],
                        GateKind::And => ins.iter().all(|&v| v),
                        GateKind::Nand => !ins.iter().all(|&v| v),
                        GateKind::Or => ins.iter().any(|&v| v),
                        GateKind::Nor => !ins.iter().any(|&v| v),
                        GateKind::Xor => ins.iter().filter(|&&v| v).count() % 2 == 1,
                        GateKind::Xnor => ins.iter().filter(|&&v| v).count() % 2 == 0,
                        _ => unreachable!("sources handled above"),
                    }
                }
            };
            memo.insert(id, v);
            v
        }
        let mut memo = HashMap::new();
        go(circuit, inputs, &mut memo, id)
    }

    #[test]
    fn insertion_structure_and_overhead() {
        let c = johnson4();
        let scan = insert_scan(&c, 2).expect("scan inserts");
        // Preamble (scan_en + 2 scan_ins + inverter) plus 3 extra gates per
        // cell on top of the original gate count.
        assert_eq!(scan.circuit().gate_count(), c.gate_count() + 4 + 3 * 4);
        assert_eq!(scan.chain_count(), 2);
        assert_eq!(scan.cell_count(), 4);
        assert_eq!(scan.max_chain_length(), 2);
        assert_eq!(scan.chains()[0].len(), 2);
        assert_eq!(scan.chains()[1].len(), 2);
        // 1 inverter + 3 gates per cell.
        assert_eq!(scan.scan_path_gates().len(), 1 + 3 * 4);
        // Original outputs survive and each chain's scan_out is observable
        // (q3 is both a functional output and chain 1's scan_out, so the
        // output list gains only one new entry).
        let sc = scan.circuit();
        assert_eq!(sc.primary_outputs().len(), c.primary_outputs().len() + 1);
        for &out in scan.scan_outs() {
            assert!(sc.is_primary_output(out));
        }
        assert_eq!(sc.find_signal(SCAN_ENABLE_NAME), Some(scan.scan_enable()));
        assert_eq!(sc.find_signal("scan_in0"), Some(scan.scan_ins()[0]));
        // Signal names carry over 1:1.
        assert_eq!(
            sc.signal_name(sc.find_signal("out").expect("exists")),
            "out"
        );
    }

    #[test]
    fn chains_partition_state_elements_in_order() {
        let c = johnson4();
        for chains in 1..=4 {
            let scan = insert_scan(&c, chains).expect("scan inserts");
            let all: Vec<GateId> = scan.chains().iter().flatten().copied().collect();
            assert_eq!(all.len(), 4, "{chains} chains cover every cell");
            // Q names follow state-element declaration order q0..q3.
            let names: Vec<&str> = all.iter().map(|&q| scan.circuit().signal_name(q)).collect();
            assert_eq!(names, ["q0", "q1", "q2", "q3"]);
            // Near-equal balance: lengths differ by at most one.
            let lengths: Vec<usize> = scan.chains().iter().map(|ch| ch.len()).collect();
            let max = lengths.iter().max().expect("non-empty");
            let min = lengths.iter().min().expect("non-empty");
            assert!(max - min <= 1, "balanced chains, got {lengths:?}");
            // scan_out is each chain's last cell.
            for (chain, &out) in scan.chains().iter().zip(scan.scan_outs()) {
                assert_eq!(*chain.last().expect("non-empty"), out);
                assert!(scan.circuit().is_primary_output(out));
            }
        }
    }

    #[test]
    fn test_view_is_combinational_and_id_aligned() {
        let c = johnson4();
        let scan = insert_scan(&c, 2).expect("scan inserts");
        let view = scan.test_view();
        assert!(!view.has_state());
        assert_eq!(view.gate_count(), scan.circuit().gate_count());
        for (id, gate) in scan.circuit().iter() {
            assert_eq!(view.signal_name(id), scan.circuit().signal_name(id));
            if id == scan.scan_enable() {
                assert_eq!(view.gate(id).kind(), GateKind::Const0);
            } else if gate.kind().is_state() {
                assert_eq!(view.gate(id).kind(), GateKind::Input);
            } else {
                assert_eq!(view.gate(id).kind(), gate.kind());
                assert_eq!(view.gate(id).fanin(), gate.fanin());
            }
        }
        // Outputs: functional non-DFF outputs first (q3 is dropped — it is
        // observed through scan), then one mux per cell in shift order.
        assert_eq!(scan.functional_output_count(), 1);
        assert_eq!(view.primary_outputs().len(), 1 + 4);
        let out_names: Vec<&str> = view
            .primary_outputs()
            .iter()
            .map(|&o| view.signal_name(o))
            .collect();
        assert_eq!(out_names, ["out", "q0$mux", "q1$mux", "q2$mux", "q3$mux"]);
    }

    #[test]
    fn test_view_computes_next_state_in_capture_mode() {
        let c = johnson4();
        let scan = insert_scan(&c, 1).expect("scan inserts");
        let view = scan.test_view();
        // Exhaustively check: for every present state, the view's
        // pseudo-primary outputs equal the Johnson counter's next state and
        // the functional output matches a direct evaluation.
        for state in 0u32..16 {
            let mut inputs = HashMap::new();
            for &pi in view.primary_inputs() {
                // scan_in is irrelevant in capture mode; drive it high to
                // prove the Const0 scan_en blocks the shift path.
                inputs.insert(pi, true);
            }
            for (i, &q) in scan.chains()[0].iter().enumerate() {
                inputs.insert(q, state & (1 << i) != 0);
            }
            let q = |i: usize| state & (1 << i) != 0;
            let expected_next = [!q(3), q(0), q(1), q(2)];
            for (i, &mux) in view.primary_outputs()[1..].iter().enumerate() {
                assert_eq!(
                    eval(view, &inputs, mux),
                    expected_next[i],
                    "state {state:04b} cell {i}"
                );
            }
            let out = view.primary_outputs()[0];
            assert_eq!(eval(view, &inputs, out), q(0) && q(3), "state {state:04b}");
        }
    }

    #[test]
    fn shift_mode_moves_the_chain_by_one() {
        let c = johnson4();
        let scan = insert_scan(&c, 1).expect("scan inserts");
        // Evaluate the *scan circuit*'s mux gates with scan_en = 1: each
        // cell's next value must be its shift predecessor, independent of
        // the functional data path.
        let sc = scan.circuit();
        for state in 0u32..16 {
            for scan_in in [false, true] {
                let mut inputs = HashMap::new();
                inputs.insert(scan.scan_enable(), true);
                inputs.insert(scan.scan_ins()[0], scan_in);
                // DFF Qs act as sources in the sequential circuit; the test
                // evaluator needs their values supplied like inputs.
                let mut with_state = HashMap::new();
                for (i, &q) in scan.chains()[0].iter().enumerate() {
                    with_state.insert(q, state & (1 << i) != 0);
                }
                let chain = scan.chains()[0].clone();
                for (i, &q) in chain.iter().enumerate() {
                    let mux = sc.gate(q).fanin()[0];
                    let expected = if i == 0 {
                        scan_in
                    } else {
                        state & (1 << (i - 1)) != 0
                    };
                    // Inline evaluation treating Q gates as fixed sources.
                    let got = eval_with_state(sc, &inputs, &with_state, mux);
                    assert_eq!(got, expected, "state {state:04b} cell {i}");
                }
            }
        }
    }

    /// Like `eval` but treats DFF gates as sources with given values.
    fn eval_with_state(
        circuit: &Circuit,
        inputs: &HashMap<GateId, bool>,
        state: &HashMap<GateId, bool>,
        id: GateId,
    ) -> bool {
        if let Some(&v) = state.get(&id) {
            return v;
        }
        let gate = circuit.gate(id);
        match gate.kind() {
            GateKind::Input => inputs[&id],
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Dff => state[&id],
            kind => {
                let ins: Vec<bool> = gate
                    .fanin()
                    .iter()
                    .map(|&f| eval_with_state(circuit, inputs, state, f))
                    .collect();
                match kind {
                    GateKind::Buf => ins[0],
                    GateKind::Not => !ins[0],
                    GateKind::And => ins.iter().all(|&v| v),
                    GateKind::Nand => !ins.iter().all(|&v| v),
                    GateKind::Or => ins.iter().any(|&v| v),
                    GateKind::Nor => !ins.iter().any(|&v| v),
                    GateKind::Xor => ins.iter().filter(|&&v| v).count() % 2 == 1,
                    GateKind::Xnor => ins.iter().filter(|&&v| v).count() % 2 == 0,
                    _ => unreachable!("sources handled above"),
                }
            }
        }
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let c = johnson4();
        let err = insert_scan(&c, 0).expect_err("zero chains");
        assert!(matches!(err, NetlistError::Scan { .. }));
        assert!(err.to_string().contains("at least one"));
        let err = insert_scan(&c, 5).expect_err("more chains than cells");
        assert!(err.to_string().contains("4 flip-flop"));
        let comb = crate::library::c17();
        let err = insert_scan(&comb, 1).expect_err("no flip-flops");
        assert!(err.to_string().contains("no flip-flops"));
    }

    #[test]
    fn reserved_name_collision_is_reported() {
        let mut b = CircuitBuilder::new("clash");
        let x = b.input(SCAN_ENABLE_NAME);
        let q = b.dff("q", x);
        b.mark_output(q);
        let c = b.finish().expect("valid");
        let err = insert_scan(&c, 1).expect_err("name collision");
        assert!(matches!(err, NetlistError::DuplicateSignal { .. }));
    }
}
