//! Gate-level netlist substrate for the LSI product-quality reproduction.
//!
//! The paper's experiment needs a circuit with a realistic single-stuck-at
//! fault universe: the 1981 study used a 25 000-transistor Bell Labs LSI chip
//! whose netlist is not available.  This crate provides everything required
//! to stand in for it:
//!
//! * a typed, validated gate-level [`Circuit`] representation,
//! * an ISCAS-style `.bench` reader and writer ([`bench_format`]) and a
//!   combinational BLIF reader and writer ([`blif`]); the format guide is
//!   `docs/FORMATS.md` at the repository root,
//! * levelisation and structural analysis ([`levelize`], [`stats`]),
//! * parameterised circuit generators (adders, multipliers, ALUs, parity and
//!   multiplexer trees, random logic) in [`generator`], and
//! * an embedded library of ready-made circuits, including an "LSI-class"
//!   composite sized to roughly 25 000 transistor equivalents ([`library`]).
//!
//! # Quick example
//!
//! ```
//! use lsiq_netlist::library;
//! use lsiq_netlist::stats::CircuitStats;
//!
//! let c17 = library::c17();
//! let stats = CircuitStats::of(&c17);
//! assert_eq!(c17.primary_inputs().len(), 5);
//! assert_eq!(c17.primary_outputs().len(), 2);
//! assert!(stats.logic_gates >= 6);
//! ```

pub mod bench_format;
pub mod blif;
pub mod builder;
pub mod circuit;
pub mod error;
pub mod gate;
pub mod generator;
pub mod levelize;
pub mod library;
pub mod scan;
pub mod stats;

pub use builder::CircuitBuilder;
pub use circuit::{Circuit, GateId};
pub use error::NetlistError;
pub use gate::{Gate, GateKind};
pub use scan::{insert_scan, ScanCircuit};
