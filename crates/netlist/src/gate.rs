//! Gate kinds and gate records.

use crate::circuit::GateId;
use std::fmt;

/// The kind of a gate in a netlist.
///
/// `Input` marks a primary input; `Dff` marks a D flip-flop (the only state
/// element); the remaining kinds are ordinary logic primitives.  Multi-input
/// XOR/XNOR follow the parity convention (output is the odd/even parity of
/// the inputs), matching the ISCAS benchmark usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// A primary input (no fanin).
    Input,
    /// A D flip-flop: one fanin (the D pin), output is the stored state Q.
    ///
    /// Combinational evaluation treats a DFF like a primary input held at
    /// its current state (reset state 0); the clock is implicit.  Scan
    /// insertion ([`scan`](crate::scan)) replaces DFFs with scan cells so
    /// the fault-simulation engines only ever see the time-frame-expanded
    /// combinational core.
    Dff,
    /// Non-inverting buffer (one input).
    Buf,
    /// Inverter (one input).
    Not,
    /// Logical AND of all inputs.
    And,
    /// Logical NAND of all inputs.
    Nand,
    /// Logical OR of all inputs.
    Or,
    /// Logical NOR of all inputs.
    Nor,
    /// Odd parity of all inputs.
    Xor,
    /// Even parity of all inputs.
    Xnor,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
}

impl GateKind {
    /// All gate kinds that take at least one input, i.e. everything except
    /// primary inputs and constants.
    pub const LOGIC_KINDS: [GateKind; 9] = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Const0,
    ];

    /// Returns the canonical upper-case name used by the `.bench` format.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }

    /// Parses a `.bench` gate-function name (case-insensitive).
    pub fn parse(token: &str) -> Option<GateKind> {
        match token.to_ascii_uppercase().as_str() {
            "INPUT" => Some(GateKind::Input),
            "DFF" => Some(GateKind::Dff),
            "BUF" | "BUFF" => Some(GateKind::Buf),
            "NOT" | "INV" => Some(GateKind::Not),
            "AND" => Some(GateKind::And),
            "NAND" => Some(GateKind::Nand),
            "OR" => Some(GateKind::Or),
            "NOR" => Some(GateKind::Nor),
            "XOR" => Some(GateKind::Xor),
            "XNOR" => Some(GateKind::Xnor),
            "CONST0" | "GND" => Some(GateKind::Const0),
            "CONST1" | "VDD" => Some(GateKind::Const1),
            _ => None,
        }
    }

    /// Returns `true` if this kind takes no fanin.
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Returns `true` if this kind is a state element (a DFF): its output is
    /// held state, not a combinational function of its fanin, so levelisation
    /// treats it as a level-0 source and simulation as an externally supplied
    /// value.
    pub fn is_state(self) -> bool {
        self == GateKind::Dff
    }

    /// Returns `true` if the gate output is the inversion of the
    /// corresponding non-inverting function (NOT, NAND, NOR, XNOR).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// Valid fanin range `(min, max)` for the kind; `usize::MAX` means
    /// unbounded.
    pub fn fanin_bounds(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not | GateKind::Dff => (1, 1),
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (1, usize::MAX),
        }
    }

    /// Checks whether `fanin` inputs is legal for this kind.
    pub fn accepts_fanin(self, fanin: usize) -> bool {
        let (lo, hi) = self.fanin_bounds();
        fanin >= lo && fanin <= hi
    }

    /// Estimated CMOS transistor count for a gate of this kind with `fanin`
    /// inputs, using standard static-CMOS primitive costs.
    ///
    /// The estimate is used to size generated circuits against the paper's
    /// "about 25 000 transistors" description; absolute accuracy is not
    /// required, only a consistent scale.
    pub fn transistor_count(self, fanin: usize) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Not => 2,
            GateKind::Buf => 4,
            GateKind::Nand | GateKind::Nor => 2 * fanin.max(1),
            GateKind::And | GateKind::Or => 2 * fanin.max(1) + 2,
            // A standard static-CMOS edge-triggered D flip-flop (two latch
            // stages plus local clock inverters).
            GateKind::Dff => 24,
            // A two-input XOR/XNOR is typically 10-12 transistors; a tree of
            // (fanin - 1) two-input stages gives the multi-input cost.
            GateKind::Xor | GateKind::Xnor => 10 * fanin.max(2).saturating_sub(1),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One gate instance: its kind and the gates that drive its inputs.
///
/// The gate's own index in the circuit is its output signal; fanout is
/// maintained by [`Circuit`](crate::circuit::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    kind: GateKind,
    fanin: Vec<GateId>,
}

impl Gate {
    /// Creates a gate record.  Fanin arity is validated by the circuit
    /// builder, not here.
    pub fn new(kind: GateKind, fanin: Vec<GateId>) -> Self {
        Gate { kind, fanin }
    }

    /// The gate's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gates driving this gate's inputs, in pin order.
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }

    /// Number of input pins.
    pub fn fanin_count(&self) -> usize {
        self.fanin.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in [
            GateKind::Input,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Dff,
        ] {
            assert_eq!(GateKind::parse(kind.name()), Some(kind));
        }
    }

    #[test]
    fn parse_accepts_aliases_and_any_case() {
        assert_eq!(GateKind::parse("buff"), Some(GateKind::Buf));
        assert_eq!(GateKind::parse("inv"), Some(GateKind::Not));
        assert_eq!(GateKind::parse("nand"), Some(GateKind::Nand));
        assert_eq!(GateKind::parse("gnd"), Some(GateKind::Const0));
        assert_eq!(GateKind::parse("vdd"), Some(GateKind::Const1));
        assert_eq!(GateKind::parse("dff"), Some(GateKind::Dff));
        assert_eq!(GateKind::parse("bogus"), None);
    }

    #[test]
    fn fanin_bounds_enforced() {
        assert!(GateKind::Input.accepts_fanin(0));
        assert!(!GateKind::Input.accepts_fanin(1));
        assert!(GateKind::Not.accepts_fanin(1));
        assert!(!GateKind::Not.accepts_fanin(2));
        assert!(GateKind::Nand.accepts_fanin(1));
        assert!(GateKind::Nand.accepts_fanin(9));
        assert!(!GateKind::Nand.accepts_fanin(0));
    }

    #[test]
    fn inverting_classification() {
        assert!(GateKind::Nand.is_inverting());
        assert!(GateKind::Nor.is_inverting());
        assert!(GateKind::Not.is_inverting());
        assert!(GateKind::Xnor.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(!GateKind::Xor.is_inverting());
    }

    #[test]
    fn source_classification() {
        assert!(GateKind::Input.is_source());
        assert!(GateKind::Const0.is_source());
        assert!(!GateKind::Nand.is_source());
        assert!(!GateKind::Dff.is_source());
    }

    #[test]
    fn state_classification() {
        assert!(GateKind::Dff.is_state());
        assert!(!GateKind::Input.is_state());
        assert!(!GateKind::Buf.is_state());
        assert!(GateKind::Dff.accepts_fanin(1));
        assert!(!GateKind::Dff.accepts_fanin(0));
        assert!(!GateKind::Dff.accepts_fanin(2));
        assert_eq!(GateKind::Dff.transistor_count(1), 24);
    }

    #[test]
    fn transistor_estimates_scale_with_fanin() {
        assert_eq!(GateKind::Not.transistor_count(1), 2);
        assert_eq!(GateKind::Nand.transistor_count(2), 4);
        assert_eq!(GateKind::Nand.transistor_count(4), 8);
        assert_eq!(GateKind::And.transistor_count(2), 6);
        assert_eq!(GateKind::Xor.transistor_count(2), 10);
        assert_eq!(GateKind::Xor.transistor_count(3), 20);
        assert_eq!(GateKind::Input.transistor_count(0), 0);
    }

    #[test]
    fn gate_accessors() {
        let gate = Gate::new(GateKind::Nand, vec![GateId(0), GateId(1)]);
        assert_eq!(gate.kind(), GateKind::Nand);
        assert_eq!(gate.fanin_count(), 2);
        assert_eq!(gate.fanin()[1], GateId(1));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(GateKind::Xnor.to_string(), "XNOR");
    }
}
