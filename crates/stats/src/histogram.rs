//! Simple fixed-bin histograms for Monte-Carlo diagnostics.

use crate::error::StatsError;

/// A histogram with uniform bins over `[lo, hi)`.
///
/// Values below the range are counted in an underflow bucket, values at or
/// above `hi` in an overflow bucket, so no observation is silently dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins spanning `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `bins` is zero or the
    /// range is empty or not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
                expected: "at least one bin",
            });
        }
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less)
            || !lo.is_finite()
            || !hi.is_finite()
        {
            return Err(StatsError::InvalidParameter {
                name: "range",
                value: hi - lo,
                expected: "a finite, non-empty range",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let index = ((value - self.lo) / width) as usize;
            let index = index.min(self.counts.len() - 1);
            self.counts[index] += 1;
        }
    }

    /// Adds every observation from an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for value in values {
            self.record(value);
        }
    }

    /// The per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn bin_center(&self, index: usize) -> f64 {
        assert!(index < self.counts.len(), "bin index out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (index as f64 + 0.5)
    }

    /// The empirical fraction of observations falling in bin `index`,
    /// relative to all in-range observations (zero if nothing in range).
    pub fn fraction(&self, index: usize) -> f64 {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            0.0
        } else {
            self.counts[index] as f64 / in_range as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn records_into_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).expect("valid");
        h.record_all([0.5, 1.5, 1.7, 9.9]);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn tracks_underflow_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).expect("valid");
        h.record(-0.1);
        h.record(1.0);
        h.record(5.0);
        h.record(0.25);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn bin_centers_and_fractions() {
        let mut h = Histogram::new(0.0, 4.0, 4).expect("valid");
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
        assert!((h.bin_center(3) - 3.5).abs() < 1e-12);
        h.record_all([0.1, 0.2, 2.5, 3.9]);
        assert!((h.fraction(0) - 0.5).abs() < 1e-12);
        assert!((h.fraction(1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_empty_histogram_is_zero() {
        let h = Histogram::new(0.0, 1.0, 3).expect("valid");
        assert_eq!(h.fraction(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin index out of range")]
    fn bin_center_out_of_range_panics() {
        let h = Histogram::new(0.0, 1.0, 3).expect("valid");
        let _ = h.bin_center(3);
    }
}
