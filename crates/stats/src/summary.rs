//! Descriptive statistics for simulation output.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean, or zero for an empty sample.
    pub mean: f64,
    /// Population variance (divides by `count`), or zero for an empty sample.
    pub variance: f64,
    /// Smallest observation, or positive infinity for an empty sample.
    pub min: f64,
    /// Largest observation, or negative infinity for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over an iterator of observations.
    ///
    /// Not the `FromIterator` trait method: this inherent constructor keeps
    /// the call explicit (`Summary::from_iter(...)`) rather than hiding the
    /// accumulation behind `collect()`.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I>(values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut count = 0usize;
        let mut mean = 0.0;
        let mut m2 = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for value in values {
            count += 1;
            let delta = value - mean;
            mean += delta / count as f64;
            m2 += delta * (value - mean);
            min = min.min(value);
            max = max.max(value);
        }
        let variance = if count > 0 { m2 / count as f64 } else { 0.0 };
        let mean = if count > 0 { mean } else { 0.0 };
        Summary {
            count,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Standard deviation of the sample.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean, or zero for an empty sample.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }
}

/// Computes the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation
/// between order statistics.  Returns `None` for an empty sample.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    let weight = position - lower as f64;
    Some(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
}

/// The median of a sample, or `None` if it is empty.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_iter([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.variance - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::from_iter(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_iter([3.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn std_error_shrinks_with_sample_size() {
        let small = Summary::from_iter((0..10).map(|i| i as f64));
        let large = Summary::from_iter((0..1000).map(|i| (i % 10) as f64));
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    fn quantiles_interpolate() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&values, 0.0), Some(1.0));
        assert_eq!(quantile(&values, 1.0), Some(4.0));
        assert_eq!(median(&values), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let values = [10.0, 20.0];
        assert_eq!(quantile(&values, -1.0), Some(10.0));
        assert_eq!(quantile(&values, 2.0), Some(20.0));
    }
}
