//! Deterministic pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator used mainly to expand a 64-bit
//!   seed into the larger state of other generators.
//! * [`Xoshiro256StarStar`] — the workhorse generator used by every
//!   Monte-Carlo experiment in the workspace.
//!
//! Both implement the object-safe [`Rng`] trait, which offers the small set
//! of primitive draws the rest of the workspace needs (uniform integers,
//! uniform floats in `[0, 1)`, bounded ranges and Bernoulli trials).
//!
//! # Parallel streams
//!
//! Multi-threaded Monte-Carlo (the production-line pipeline in
//! `lsiq-manufacturing`) needs draws that do not depend on which thread made
//! them.  Two mechanisms support this:
//!
//! * [`Xoshiro256StarStar::stream`] and [`SplitMix64::stream`] derive the
//!   `stream`-th independent generator from a `(seed, stream)` pair in O(1),
//!   so work item `i` can be given its own generator no matter which worker
//!   processes it — the draws are a pure function of `(seed, i)`.
//! * [`Xoshiro256StarStar::split`] carves a sequential generator in two by
//!   jumping the parent 2^128 steps ahead, for the cases where the number of
//!   streams is not known up front.

/// Minimal random-number generator interface used throughout the workspace.
///
/// The trait is object safe so simulators can hold a `&mut dyn Rng` when the
/// concrete generator does not matter.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits so every representable value is equally likely.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires a non-zero bound");
        // Rejection sampling over the top of the 64-bit range.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let (hi, lo) = widening_mul(x, bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Returns a uniformly distributed `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    fn next_index(&mut self, len: usize) -> usize {
        self.next_bounded(len as u64) as usize
    }

    /// Returns `true` with probability `p`.
    ///
    /// Values of `p` at or below zero never return `true`; values at or above
    /// one always do.
    fn next_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }
}

/// 128-bit widening multiplication returning `(high, low)` 64-bit halves.
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// The SplitMix64 generator of Steele, Lea and Flood.
///
/// Primarily used to derive well-distributed state for other generators from
/// a single 64-bit seed, but perfectly usable as a generator in its own right
/// for non-cryptographic simulation work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives the `stream`-th independent generator of `seed` in O(1).
    ///
    /// See [`Xoshiro256StarStar::stream`] for the contract; both generators
    /// use the same `(seed, stream)` mixing so a stream index means the same
    /// thing regardless of the generator consuming it.
    pub fn stream(seed: u64, stream: u64) -> Self {
        SplitMix64::seed_from_u64(mix_stream(seed, stream))
    }

    /// Returns an independent child generator, advancing `self` one step.
    ///
    /// The child is seeded from the parent's next output, so repeated splits
    /// yield a deterministic tree of generators.
    pub fn split(&mut self) -> Self {
        SplitMix64::seed_from_u64(self.next_u64())
    }
}

/// Mixes a stream index into a seed, giving every `(seed, stream)` pair a
/// well-distributed 64-bit sub-seed.  The mix is injective in `stream` for a
/// fixed seed (golden-ratio multiply is odd, XOR preserves distinctness
/// through the SplitMix64 bijection), so no two streams of one experiment can
/// collide.
fn mix_stream(seed: u64, stream: u64) -> u64 {
    let mut mix = SplitMix64::seed_from_u64(seed);
    mix.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator of Blackman and Vigna.
///
/// A fast, high-quality generator with a 256-bit state and a period of
/// 2^256 − 1, suitable for large Monte-Carlo sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// [`SplitMix64`], following the reference initialisation procedure.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::seed_from_u64(seed);
        let s = [
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
        ];
        // The all-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs in a row, so this is a defensive check only.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256StarStar { s }
    }

    /// Derives the `stream`-th independent generator of `seed` in O(1).
    ///
    /// The draws of a stream are a pure function of the `(seed, stream)`
    /// pair: handing work item `i` the generator `stream(seed, i)` makes a
    /// Monte-Carlo experiment independent of iteration order and thread
    /// count, which is how the production-line pipeline keeps its parallel
    /// results byte-identical to the serial ones.
    ///
    /// ```
    /// use lsiq_stats::rng::{Rng, Xoshiro256StarStar};
    ///
    /// // The same (seed, stream) pair always yields the same draws ...
    /// let a = Xoshiro256StarStar::stream(42, 7).next_u64();
    /// let b = Xoshiro256StarStar::stream(42, 7).next_u64();
    /// assert_eq!(a, b);
    /// // ... and different streams of one seed are independent.
    /// assert_ne!(a, Xoshiro256StarStar::stream(42, 8).next_u64());
    /// ```
    pub fn stream(seed: u64, stream: u64) -> Self {
        Xoshiro256StarStar::seed_from_u64(mix_stream(seed, stream))
    }

    /// Returns an independent generator for a parallel stream.
    ///
    /// The returned child continues from the current state while `self` is
    /// advanced by 2^128 steps with the reference `jump()` polynomial, so the
    /// two streams cannot overlap in any realistic simulation.
    pub fn split(&mut self) -> Self {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let child = self.clone();
        let mut s = [0u64; 4];
        for &jump_word in JUMP.iter() {
            for bit in 0..64 {
                if (jump_word >> bit) & 1 != 0 {
                    for (acc, cur) in s.iter_mut().zip(self.s.iter()) {
                        *acc ^= *cur;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = s;
        child
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Fisher–Yates shuffle of a slice using the supplied generator.
pub fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    let len = items.len();
    if len < 2 {
        return;
    }
    for i in (1..len).rev() {
        let j = rng.next_index(i + 1);
        items.swap(i, j);
    }
}

/// Draws `count` distinct indices from `[0, len)` without replacement.
///
/// Uses Floyd's algorithm; the returned indices are in ascending order.
///
/// # Panics
///
/// Panics if `count > len`.
pub fn sample_indices<R: Rng + ?Sized>(len: usize, count: usize, rng: &mut R) -> Vec<usize> {
    assert!(count <= len, "cannot sample {count} items from {len}");
    let mut chosen = std::collections::BTreeSet::new();
    for j in (len - count)..len {
        let t = rng.next_index(j + 1);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism: the same seed reproduces the same stream.
        let mut rng2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(a, rng2.next_u64());
        assert_eq!(b, rng2.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_bounded_is_in_range_and_covers_values() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.next_bounded(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn next_bounded_zero_panics() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let _ = rng.next_bounded(0);
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.next_bool(0.0));
            assert!(rng.next_bool(1.0));
        }
    }

    #[test]
    fn next_bool_frequency_tracks_probability() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let mut items: Vec<u32> = (0..100).collect();
        shuffle(&mut items, &mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            items,
            (0..100).collect::<Vec<_>>(),
            "shuffle should permute"
        );
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        for _ in 0..50 {
            let sample = sample_indices(100, 20, &mut rng);
            assert_eq!(sample.len(), 20);
            assert!(sample.windows(2).all(|w| w[0] < w[1]));
            assert!(sample.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let sample = sample_indices(10, 10, &mut rng);
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        for stream in 0..8u64 {
            let mut a = Xoshiro256StarStar::stream(1234, stream);
            let mut b = Xoshiro256StarStar::stream(1234, stream);
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
        // Pairwise-distinct first draws over a batch of streams (and over
        // neighbouring seeds, which must not alias shifted stream indices).
        let mut first: Vec<u64> = (0..256)
            .map(|s| Xoshiro256StarStar::stream(9, s).next_u64())
            .collect();
        first.extend((0..256).map(|s| Xoshiro256StarStar::stream(10, s).next_u64()));
        first.sort_unstable();
        first.dedup();
        assert_eq!(first.len(), 512, "stream collision detected");
    }

    #[test]
    fn stream_draws_are_uniform() {
        // Aggregate the first f64 of many streams: the per-stream first draw
        // must itself look uniform, since the pipeline gives each chip only
        // its own stream.
        let n = 20_000u64;
        let mean: f64 = (0..n)
            .map(|s| Xoshiro256StarStar::stream(77, s).next_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn splitmix_stream_and_split_are_deterministic() {
        let mut a = SplitMix64::stream(5, 3);
        let mut b = SplitMix64::stream(5, 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut parent1 = SplitMix64::seed_from_u64(1);
        let mut parent2 = SplitMix64::seed_from_u64(1);
        let mut child1 = parent1.split();
        let mut child2 = parent2.split();
        assert_eq!(child1.next_u64(), child2.next_u64());
        assert_eq!(parent1.next_u64(), parent2.next_u64());
        assert_ne!(
            SplitMix64::stream(5, 3).next_u64(),
            SplitMix64::stream(5, 4).next_u64()
        );
    }

    #[test]
    fn split_streams_do_not_collide() {
        let mut parent = Xoshiro256StarStar::seed_from_u64(77);
        let mut child = parent.split();
        let parent_vals: Vec<u64> = (0..32).map(|_| parent.next_u64()).collect();
        let child_vals: Vec<u64> = (0..32).map(|_| child.next_u64()).collect();
        assert_ne!(parent_vals, child_vals);
    }

    #[test]
    fn rng_trait_is_object_safe() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x = dyn_rng.next_f64();
        assert!((0.0..1.0).contains(&x));
    }
}
