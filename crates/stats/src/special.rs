//! Special functions used by the probability distributions and by the
//! analytic model in `lsiq-core`.
//!
//! The implementations favour clarity and accuracy over raw speed; every
//! function here is evaluated at most a few million times per experiment.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), which is accurate to about
/// 1e-13 over the positive real axis.
///
/// # Panics
///
/// Panics if `x` is not finite or not strictly positive.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7, kept at full published precision.
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its accurate region.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    // Small values from a table for exactness; larger values via ln_gamma.
    #[allow(clippy::approx_constant, clippy::excessive_precision)]
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_894,
        30.671_860_106_080_675,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if n < TABLE.len() as u64 {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns negative infinity when `k > n`, matching the convention that the
/// coefficient is zero outside its support.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Binomial coefficient `C(n, k)` as a float.
///
/// Exact for small arguments, computed through logarithms for large ones.
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    if n <= 62 {
        // Exact integer arithmetic: after each step `acc` equals C(n, i+1),
        // which is an integer, so the division is exact and nothing overflows
        // for n up to 62.
        let mut acc: u128 = 1;
        for i in 0..k {
            acc = acc * (n - i) as u128 / (i as u128 + 1);
        }
        acc as f64
    } else {
        ln_binomial(n, k).exp()
    }
}

/// The regularised lower incomplete gamma function `P(a, x)`.
///
/// Used for Poisson CDF evaluation.  Follows the series/continued-fraction
/// split of Numerical Recipes.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "regularized_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// The regularised upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    1.0 - regularized_gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut denom = a;
    for _ in 0..MAX_ITER {
        denom += 1.0;
        term *= x / denom;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Numerically stable `ln(1 + x)` wrapper (thin alias for discoverability).
pub fn ln_1p(x: f64) -> f64 {
    x.ln_1p()
}

/// Numerically stable `exp(x) - 1` wrapper (thin alias for discoverability).
pub fn exp_m1(x: f64) -> f64 {
    x.exp_m1()
}

/// Computes `log(sum(exp(values)))` without overflow.
///
/// Returns negative infinity for an empty slice.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = values.iter().map(|v| (v - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol * expected.abs().max(1.0),
            "actual {actual} vs expected {expected}"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..20 {
            let expected: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert_close(ln_gamma(n as f64), expected, 1e-12);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        for n in 0u64..30 {
            let direct: f64 = (1..=n).map(|k| (k as f64).ln()).sum();
            assert_close(ln_factorial(n), direct, 1e-12);
        }
    }

    #[test]
    fn binomial_small_values_exact() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 5), 252.0);
        assert_eq!(binomial(52, 5), 2_598_960.0);
        assert_eq!(binomial(4, 7), 0.0);
    }

    #[test]
    fn binomial_large_values_consistent_with_logs() {
        let direct = binomial(200, 17);
        let via_log = ln_binomial(200, 17).exp();
        assert_close(direct, via_log, 1e-9);
    }

    #[test]
    fn ln_binomial_out_of_support() {
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn pascals_rule_holds() {
        for n in 1u64..60 {
            for k in 1..n {
                let lhs = binomial(n, k);
                let rhs = binomial(n - 1, k - 1) + binomial(n - 1, k);
                assert_close(lhs, rhs, 1e-12);
            }
        }
    }

    #[test]
    fn regularized_gamma_p_known_values() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(regularized_gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0
        assert_eq!(regularized_gamma_p(3.0, 0.0), 0.0);
    }

    #[test]
    fn regularized_gamma_p_q_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 10.0, 40.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0, 60.0] {
                let p = regularized_gamma_p(a, x);
                let q = regularized_gamma_q(a, x);
                assert_close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn regularized_gamma_p_is_monotone_in_x() {
        let a = 3.7;
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = regularized_gamma_p(a, x);
            assert!(p + 1e-15 >= prev, "P(a,x) must be non-decreasing in x");
            prev = p;
        }
    }

    #[test]
    fn log_sum_exp_basic() {
        let values = [0.0_f64.ln(), 1.0_f64.ln(), 2.0_f64.ln()];
        // log(0 + 1 + 2) = ln 3.  ln(0) is -inf and must be handled.
        assert_close(log_sum_exp(&values), 3.0_f64.ln(), 1e-12);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_handles_large_magnitudes() {
        let values = [1000.0, 1000.0];
        assert_close(log_sum_exp(&values), 1000.0 + 2.0_f64.ln(), 1e-12);
    }

    #[test]
    fn ln_1p_and_exp_m1_are_consistent() {
        for &x in &[1e-12, 1e-6, 0.1, 1.0] {
            assert_close(exp_m1(ln_1p(x)), x, 1e-12);
        }
    }
}
