//! Least-squares fitting utilities.
//!
//! The paper determines its model parameter `n0` by fitting the theoretical
//! rejection curve `P(f)` to an experimental cumulative-reject curve, and by
//! measuring the slope of that curve at the origin.  This module supplies the
//! generic pieces: simple linear regression (optionally through the origin),
//! residual metrics, and a scalar parameter sweep that minimises the sum of
//! squared residuals of an arbitrary model function.

use crate::error::StatsError;

/// Result of a simple linear regression `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

/// Performs an ordinary least-squares regression of `y` on `x`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when fewer than two points are
/// supplied or the slices differ in length, and
/// [`StatsError::InvalidParameter`] when all `x` values are identical.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, StatsError> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: x.len().min(y.len()),
        });
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: mean_x,
            expected: "at least two distinct abscissae",
        });
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Performs a least-squares regression of `y` on `x` constrained through the
/// origin (`y = slope * x`).
///
/// This is the estimator behind the paper's slope method: near the origin the
/// rejection curve is a straight line through zero with slope
/// `P'(0) = (1 - y) * n0`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] when the input is empty or the
/// slices differ in length, and [`StatsError::InvalidParameter`] when all `x`
/// are zero.
pub fn linear_fit_through_origin(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() || x.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: x.len().min(y.len()),
        });
    }
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx == 0.0 {
        return Err(StatsError::InvalidParameter {
            name: "x",
            value: 0.0,
            expected: "at least one non-zero abscissa",
        });
    }
    let sxy: f64 = x.iter().zip(y.iter()).map(|(&a, &b)| a * b).sum();
    Ok(sxy / sxx)
}

/// Sum of squared residuals between observations and a model evaluated at the
/// same abscissae.
pub fn sum_squared_residuals<F>(x: &[f64], y: &[f64], model: F) -> f64
where
    F: Fn(f64) -> f64,
{
    x.iter()
        .zip(y.iter())
        .map(|(&xi, &yi)| {
            let r = yi - model(xi);
            r * r
        })
        .sum()
}

/// Root-mean-square error between observations and a model.
pub fn rmse<F>(x: &[f64], y: &[f64], model: F) -> f64
where
    F: Fn(f64) -> f64,
{
    if x.is_empty() {
        return 0.0;
    }
    (sum_squared_residuals(x, y, model) / x.len() as f64).sqrt()
}

/// Result of a one-parameter model scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanResult {
    /// The parameter value that minimised the objective.
    pub best_parameter: f64,
    /// The objective value at the minimiser.
    pub best_objective: f64,
}

/// Minimises `objective(theta)` over a uniform grid of `steps + 1` candidate
/// values spanning `[lo, hi]`, then refines the winner with a golden-section
/// search in its grid neighbourhood.
///
/// This deliberately mirrors the paper's procedure of overlaying a *family*
/// of curves (one per candidate `n0`) on the experimental data and picking
/// the closest, while also returning a continuous refinement.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] if the range is empty or
/// `steps == 0`.
pub fn scan_minimize<F>(
    mut objective: F,
    lo: f64,
    hi: f64,
    steps: usize,
) -> Result<ScanResult, StatsError>
where
    F: FnMut(f64) -> f64,
{
    // NaN-aware: anything but a strictly increasing, comparable pair is
    // rejected.
    if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
        return Err(StatsError::InvalidParameter {
            name: "range",
            value: hi - lo,
            expected: "lo < hi",
        });
    }
    if steps == 0 {
        return Err(StatsError::InvalidParameter {
            name: "steps",
            value: 0.0,
            expected: "at least one step",
        });
    }
    let step = (hi - lo) / steps as f64;
    let mut best_index = 0;
    let mut best_value = f64::INFINITY;
    for i in 0..=steps {
        let theta = lo + step * i as f64;
        let value = objective(theta);
        if value < best_value {
            best_value = value;
            best_index = i;
        }
    }
    // Golden-section refinement inside the neighbouring grid cells.
    let refine_lo = lo + step * best_index.saturating_sub(1) as f64;
    let refine_hi = (lo + step * (best_index + 1) as f64).min(hi);
    let refined = golden_section_minimize(&mut objective, refine_lo, refine_hi, 80);
    let refined_value = objective(refined);
    if refined_value <= best_value {
        Ok(ScanResult {
            best_parameter: refined,
            best_objective: refined_value,
        })
    } else {
        Ok(ScanResult {
            best_parameter: lo + step * best_index as f64,
            best_objective: best_value,
        })
    }
}

/// Golden-section search for the minimiser of a unimodal function on `[a, b]`.
fn golden_section_minimize<F>(objective: &mut F, mut a: f64, mut b: f64, iterations: usize) -> f64
where
    F: FnMut(f64) -> f64,
{
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = objective(c);
    let mut fd = objective(d);
    for _ in 0..iterations {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = objective(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = objective(d);
        }
        if (b - a).abs() < 1e-12 {
            break;
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.5).collect();
        let fit = linear_fit(&x, &y).expect("fits");
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 1.5).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_rejects_degenerate_input() {
        assert!(linear_fit(&[1.0], &[2.0]).is_err());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_err());
    }

    #[test]
    fn origin_fit_recovers_slope() {
        let x = [0.05, 0.08, 0.10, 0.15];
        let y: Vec<f64> = x.iter().map(|v| 8.2 * v).collect();
        let slope = linear_fit_through_origin(&x, &y).expect("fits");
        assert!((slope - 8.2).abs() < 1e-12);
    }

    #[test]
    fn origin_fit_rejects_all_zero_x() {
        assert!(linear_fit_through_origin(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit_through_origin(&[], &[]).is_err());
    }

    #[test]
    fn residual_metrics_are_zero_for_perfect_model() {
        let x = [0.0, 1.0, 2.0];
        let y = [1.0, 3.0, 5.0];
        let ssr = sum_squared_residuals(&x, &y, |v| 2.0 * v + 1.0);
        assert!(ssr.abs() < 1e-24);
        assert!(rmse(&x, &y, |v| 2.0 * v + 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], &[], |v| v), 0.0);
    }

    #[test]
    fn scan_minimize_finds_quadratic_minimum() {
        let result = scan_minimize(|t| (t - 3.7).powi(2) + 1.0, 0.0, 10.0, 100).expect("valid");
        assert!((result.best_parameter - 3.7).abs() < 1e-6);
        assert!((result.best_objective - 1.0).abs() < 1e-10);
    }

    #[test]
    fn scan_minimize_handles_minimum_at_grid_edge() {
        let result = scan_minimize(|t| t, 0.0, 5.0, 10).expect("valid");
        assert!(result.best_parameter < 1e-6);
    }

    #[test]
    fn scan_minimize_rejects_bad_arguments() {
        assert!(scan_minimize(|t| t, 1.0, 1.0, 10).is_err());
        assert!(scan_minimize(|t| t, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn noisy_linear_fit_r_squared_below_one() {
        let x: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        // Deterministic "noise" so the test is reproducible.
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = linear_fit(&x, &y).expect("fits");
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared < 1.0 && fit.r_squared > 0.9);
    }
}
