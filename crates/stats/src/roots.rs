//! One-dimensional root finding.
//!
//! The quality model needs to invert monotone relations such as eq. (8)
//! (field reject rate as a function of fault coverage) for which a bracketing
//! bisection is robust and more than fast enough, plus a safeguarded Newton
//! iteration for smooth well-behaved cases.

use crate::error::StatsError;

/// Options controlling an iterative root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the argument.
    pub x_tolerance: f64,
    /// Absolute tolerance on the function value.
    pub f_tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            x_tolerance: 1e-12,
            f_tolerance: 1e-12,
            max_iterations: 200,
        }
    }
}

/// Finds a root of `f` in the bracket `[lo, hi]` by bisection.
///
/// # Errors
///
/// Returns [`StatsError::InvalidBracket`] if `f(lo)` and `f(hi)` have the
/// same sign, and [`StatsError::NoConvergence`] if the iteration budget is
/// exhausted (which cannot happen with the default options and a finite
/// bracket, but is reported rather than looping forever).
pub fn bisect<F>(mut f: F, lo: f64, hi: f64, options: RootOptions) -> Result<f64, StatsError>
where
    F: FnMut(f64) -> f64,
{
    let (mut lo, mut hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(StatsError::InvalidBracket { lo, hi });
    }
    for _ in 0..options.max_iterations {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid.abs() <= options.f_tolerance || (hi - lo) <= options.x_tolerance {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(StatsError::NoConvergence {
        iterations: options.max_iterations,
    })
}

/// Finds a root of `f` with Newton's method, falling back to bisection inside
/// `[lo, hi]` whenever a Newton step leaves the bracket or the derivative is
/// too small.
///
/// # Errors
///
/// Returns the same errors as [`bisect`].
pub fn newton_bracketed<F, D>(
    mut f: F,
    mut derivative: D,
    lo: f64,
    hi: f64,
    initial: f64,
    options: RootOptions,
) -> Result<f64, StatsError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    let (mut lo, mut hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(StatsError::InvalidBracket { lo, hi });
    }
    let mut x = initial.clamp(lo, hi);
    for _ in 0..options.max_iterations {
        let fx = f(x);
        if fx.abs() <= options.f_tolerance {
            return Ok(x);
        }
        // Shrink the bracket around the sign change.
        if fx.signum() == f_lo.signum() {
            lo = x;
        } else {
            hi = x;
        }
        if (hi - lo) <= options.x_tolerance {
            return Ok(0.5 * (lo + hi));
        }
        let dfx = derivative(x);
        let newton_step = if dfx.abs() > 1e-300 {
            x - fx / dfx
        } else {
            f64::NAN
        };
        x = if newton_step.is_finite() && newton_step > lo && newton_step < hi {
            newton_step
        } else {
            0.5 * (lo + hi)
        };
    }
    Err(StatsError::NoConvergence {
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_square_root() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, RootOptions::default()).expect("bracketed");
        assert!((root - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_accepts_reversed_bracket() {
        let root = bisect(|x| x - 1.0, 3.0, 0.0, RootOptions::default()).expect("bracketed");
        assert!((root - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_returns_endpoint_roots() {
        let root = bisect(|x| x, 0.0, 5.0, RootOptions::default()).expect("root at endpoint");
        assert_eq!(root, 0.0);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, RootOptions::default()).unwrap_err();
        assert!(matches!(err, StatsError::InvalidBracket { .. }));
    }

    #[test]
    fn newton_converges_quadratically_on_smooth_function() {
        let root = newton_bracketed(
            |x| x.exp() - 3.0,
            |x| x.exp(),
            0.0,
            2.0,
            1.0,
            RootOptions::default(),
        )
        .expect("bracketed");
        assert!((root - 3.0_f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn newton_falls_back_to_bisection_on_flat_derivative() {
        // Derivative reported as zero everywhere: should still converge by
        // bisection fallback.
        let root = newton_bracketed(|x| x - 0.25, |_| 0.0, 0.0, 1.0, 0.9, RootOptions::default())
            .expect("bracketed");
        assert!((root - 0.25).abs() < 1e-9);
    }

    #[test]
    fn newton_rejects_bad_bracket() {
        let err = newton_bracketed(
            |x| x * x + 1.0,
            |x| 2.0 * x,
            -1.0,
            1.0,
            0.0,
            RootOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StatsError::InvalidBracket { .. }));
    }

    #[test]
    fn tight_iteration_budget_reports_no_convergence() {
        let options = RootOptions {
            x_tolerance: 0.0,
            f_tolerance: 0.0,
            max_iterations: 3,
        };
        let err = bisect(|x| x * x - 2.0, 0.0, 2.0, options).unwrap_err();
        assert!(matches!(err, StatsError::NoConvergence { iterations: 3 }));
    }
}
