//! Error type shared by the numerical routines in this crate.

use std::fmt;

/// Error returned by constructors and solvers in `lsiq-stats`.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// A root-finding bracket did not enclose a sign change.
    InvalidBracket {
        /// Lower end of the bracket.
        lo: f64,
        /// Upper end of the bracket.
        hi: f64,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations that were attempted.
        iterations: usize,
    },
    /// The input data set was empty or otherwise too small for the operation.
    InsufficientData {
        /// Number of points required.
        required: usize,
        /// Number of points supplied.
        actual: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            StatsError::InvalidBracket { lo, hi } => {
                write!(f, "bracket [{lo}, {hi}] does not enclose a root")
            }
            StatsError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            StatsError::InsufficientData { required, actual } => write!(
                f,
                "insufficient data: {actual} points supplied, at least {required} required"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let err = StatsError::InvalidParameter {
            name: "mean",
            value: -1.0,
            expected: "a finite value > 0",
        };
        let text = err.to_string();
        assert!(text.contains("mean"));
        assert!(text.contains("-1"));
    }

    #[test]
    fn display_invalid_bracket() {
        let err = StatsError::InvalidBracket { lo: 0.0, hi: 1.0 };
        assert!(err.to_string().contains("bracket"));
    }

    #[test]
    fn display_no_convergence() {
        let err = StatsError::NoConvergence { iterations: 100 };
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn display_insufficient_data() {
        let err = StatsError::InsufficientData {
            required: 2,
            actual: 0,
        };
        assert!(err.to_string().contains("2"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
