//! Probability distributions used by the quality model and the Monte-Carlo
//! production line.
//!
//! Everything is implemented in-tree (no external crates): the [`Poisson`]
//! fault/defect counts of eq. 1, the [`NegativeBinomial`] defect model whose
//! zero class is the paper's yield formula (eq. 3), the [`Hypergeometric`]
//! urn behind the escape probabilities of Appendix A, and a [`Categorical`]
//! chooser for weighted discrete selections (gate kinds, defect kinds).

use crate::error::StatsError;
use crate::rng::Rng;
use crate::special::{ln_binomial, ln_factorial};

/// A distribution that can draw one value with a supplied generator.
pub trait Sample {
    /// The type of a single draw.
    type Value;

    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

/// A discrete distribution over the non-negative integers.
pub trait DiscreteDistribution {
    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Cumulative probability `P(X <= k)`, summed directly.
    fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum()
    }
}

fn require_positive_finite(name: &'static str, value: f64) -> Result<(), StatsError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name,
            value,
            expected: "a finite value > 0",
        });
    }
    Ok(())
}

/// The Poisson distribution with a given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns an error if `mean` is not finite and strictly positive.
    pub fn new(mean: f64) -> Result<Self, StatsError> {
        require_positive_finite("mean", mean)?;
        Ok(Poisson { mean })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl DiscreteDistribution for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.mean.ln() - self.mean - ln_factorial(k)).exp()
    }
}

impl Sample for Poisson {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        sample_poisson(self.mean, rng)
    }
}

/// Draws a Poisson variate.  Means up to 30 use Knuth's product-of-uniforms
/// method; larger means are split additively (a sum of independent Poisson
/// variates is Poisson), keeping the draw exact without `exp` underflow.
fn sample_poisson<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    const KNUTH_LIMIT: f64 = 30.0;
    let mut remaining = mean;
    let mut total = 0u64;
    while remaining > KNUTH_LIMIT {
        total += sample_poisson_knuth(KNUTH_LIMIT, rng);
        remaining -= KNUTH_LIMIT;
    }
    if remaining > 0.0 {
        total += sample_poisson_knuth(remaining, rng);
    }
    total
}

fn sample_poisson_knuth<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    let threshold = (-mean).exp();
    let mut product = 1.0;
    let mut count = 0u64;
    loop {
        product *= rng.next_f64();
        if product <= threshold {
            return count;
        }
        count += 1;
    }
}

/// The negative binomial distribution parameterised, as in yield modelling,
/// by its mean `m` and the clustering parameter `lambda`.
///
/// The defect count is Poisson with a gamma-distributed rate whose squared
/// coefficient of variation is `lambda`; the zero class is then the paper's
/// eq. 3 yield, `P(0) = (1 + lambda * m)^(-1/lambda)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    mean: f64,
    clustering: f64,
}

impl NegativeBinomial {
    /// Creates the distribution from its mean and clustering parameter.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and strictly
    /// positive.
    pub fn from_mean_clustering(mean: f64, clustering: f64) -> Result<Self, StatsError> {
        require_positive_finite("mean", mean)?;
        require_positive_finite("clustering", clustering)?;
        Ok(NegativeBinomial { mean, clustering })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The clustering parameter `lambda`.
    pub fn clustering(&self) -> f64 {
        self.clustering
    }

    /// The number-of-successes parameter `r = 1 / lambda`.
    fn size(&self) -> f64 {
        1.0 / self.clustering
    }

    /// The success probability `p = 1 / (1 + lambda * m)`.
    fn success_probability(&self) -> f64 {
        1.0 / (1.0 + self.clustering * self.mean)
    }
}

impl DiscreteDistribution for NegativeBinomial {
    fn pmf(&self, k: u64) -> f64 {
        // P(k) = Gamma(r + k) / (k! Gamma(r)) * p^r * (1 - p)^k.
        let r = self.size();
        let p = self.success_probability();
        let k_f = k as f64;
        let ln_coeff =
            crate::special::ln_gamma(r + k_f) - ln_factorial(k) - crate::special::ln_gamma(r);
        (ln_coeff + r * p.ln() + k_f * (1.0 - p).ln()).exp()
    }
}

impl Sample for NegativeBinomial {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Gamma-Poisson mixture: rate ~ Gamma(shape = r, scale = lambda * m),
        // then defects ~ Poisson(rate).
        let shape = self.size();
        let scale = self.clustering * self.mean;
        let rate = sample_gamma(shape, rng) * scale;
        if rate <= 0.0 {
            0
        } else {
            sample_poisson(rate, rng)
        }
    }
}

/// Draws a standard normal variate with the Marsaglia polar method.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a Gamma(shape, scale = 1) variate with the Marsaglia–Tsang method,
/// boosted for shapes below one.
fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let boost = rng.next_f64().powf(1.0 / shape);
        return sample_gamma(shape + 1.0, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// The hypergeometric distribution: draws without replacement from an urn.
///
/// With a fault universe of `population` faults of which `successes` are
/// covered by the test set, and `draws` faults actually present on a chip,
/// [`pmf(k)`](DiscreteDistribution::pmf) is the probability that exactly `k`
/// of the present faults are covered (the paper's eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    population: u64,
    draws: u64,
    successes: u64,
}

impl Hypergeometric {
    /// Creates the distribution for `draws` draws from a population of
    /// `population` items containing `successes` marked items.
    ///
    /// # Errors
    ///
    /// Returns an error if the population is empty or either `draws` or
    /// `successes` exceeds it.
    pub fn new(population: u64, draws: u64, successes: u64) -> Result<Self, StatsError> {
        if population == 0 {
            return Err(StatsError::InvalidParameter {
                name: "population",
                value: 0.0,
                expected: "a non-empty population",
            });
        }
        if draws > population {
            return Err(StatsError::InvalidParameter {
                name: "draws",
                value: draws as f64,
                expected: "at most the population size",
            });
        }
        if successes > population {
            return Err(StatsError::InvalidParameter {
                name: "successes",
                value: successes as f64,
                expected: "at most the population size",
            });
        }
        Ok(Hypergeometric {
            population,
            draws,
            successes,
        })
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// The number of draws.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// The number of marked items in the population.
    pub fn successes(&self) -> u64 {
        self.successes
    }
}

impl DiscreteDistribution for Hypergeometric {
    fn pmf(&self, k: u64) -> f64 {
        let n = self.population;
        let m = self.successes;
        let d = self.draws;
        // Support: max(0, d - (n - m)) <= k <= min(d, m).
        if k > d || k > m || d - k > n - m {
            return 0.0;
        }
        (ln_binomial(m, k) + ln_binomial(n - m, d - k) - ln_binomial(n, d)).exp()
    }
}

/// A categorical (weighted index) distribution over `0..weights.len()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates the distribution from non-negative weights (not necessarily
    /// normalised).
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, StatsError> {
        if weights.is_empty() {
            return Err(StatsError::InsufficientData {
                required: 1,
                actual: 0,
            });
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut running = 0.0;
        for &weight in weights {
            if !weight.is_finite() || weight < 0.0 {
                return Err(StatsError::InvalidParameter {
                    name: "weight",
                    value: weight,
                    expected: "a finite value >= 0",
                });
            }
            running += weight;
            cumulative.push(running);
        }
        if running <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "weights",
                value: running,
                expected: "a positive total weight",
            });
        }
        Ok(Categorical { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Returns `true` if there are no categories (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of category `index`.
    pub fn probability(&self, index: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let lo = if index == 0 {
            0.0
        } else {
            self.cumulative[index - 1]
        };
        (self.cumulative[index] - lo) / total
    }
}

impl Sample for Categorical {
    type Value = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = rng.next_f64() * total;
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&target).expect("finite"))
        {
            Ok(index) => (index + 1).min(self.cumulative.len() - 1),
            Err(index) => index.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn poisson_rejects_bad_means() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
        assert!(Poisson::new(3.5).is_ok());
    }

    #[test]
    fn poisson_pmf_sums_to_one_and_matches_mean() {
        let poisson = Poisson::new(4.5).expect("valid");
        let total: f64 = (0..200).map(|k| poisson.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mean: f64 = (0..200).map(|k| k as f64 * poisson.pmf(k)).sum();
        assert!((mean - 4.5).abs() < 1e-9);
        assert_eq!(poisson.mean(), 4.5);
    }

    #[test]
    fn poisson_sampling_matches_mean_and_variance() {
        let poisson = Poisson::new(7.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let n = 100_000;
        let draws: Vec<u64> = (0..n).map(|_| poisson.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 7.0).abs() < 0.05, "mean {mean}");
        let var = draws
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - 7.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn poisson_sampling_handles_large_means() {
        // Exercises the additive split above the Knuth limit.
        let poisson = Poisson::new(250.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson.sample(&mut rng)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 250.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn negative_binomial_zero_class_is_equation_three() {
        for &(m, lambda) in &[(2.0, 0.5), (5.0, 1.0), (0.5, 2.0)] {
            let nb = NegativeBinomial::from_mean_clustering(m, lambda).expect("valid");
            let expected = (1.0 + lambda * m).powf(-1.0 / lambda);
            assert!(
                (nb.pmf(0) - expected).abs() < 1e-10,
                "m={m} lambda={lambda}: pmf(0) {} vs {expected}",
                nb.pmf(0)
            );
        }
    }

    #[test]
    fn negative_binomial_pmf_sums_to_one_with_correct_mean() {
        let nb = NegativeBinomial::from_mean_clustering(3.0, 0.8).expect("valid");
        let total: f64 = (0..500).map(|k| nb.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-8);
        let mean: f64 = (0..500).map(|k| k as f64 * nb.pmf(k)).sum();
        assert!((mean - 3.0).abs() < 1e-6);
        assert_eq!(nb.mean(), 3.0);
        assert_eq!(nb.clustering(), 0.8);
    }

    #[test]
    fn negative_binomial_sampling_matches_moments() {
        let nb = NegativeBinomial::from_mean_clustering(4.0, 0.5).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        let n = 100_000;
        let draws: Vec<u64> = (0..n).map(|_| nb.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        // Variance of NB in this parameterisation: m (1 + lambda m).
        let var = draws
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((var - 12.0).abs() < 0.6, "variance {var}");
    }

    #[test]
    fn negative_binomial_rejects_bad_parameters() {
        assert!(NegativeBinomial::from_mean_clustering(0.0, 1.0).is_err());
        assert!(NegativeBinomial::from_mean_clustering(1.0, 0.0).is_err());
        assert!(NegativeBinomial::from_mean_clustering(-1.0, 1.0).is_err());
        assert!(NegativeBinomial::from_mean_clustering(1.0, f64::NAN).is_err());
    }

    #[test]
    fn hypergeometric_pmf_sums_to_one() {
        let h = Hypergeometric::new(50, 10, 20).expect("valid");
        let total: f64 = (0..=10).map(|k| h.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(h.population(), 50);
        assert_eq!(h.draws(), 10);
        assert_eq!(h.successes(), 20);
    }

    #[test]
    fn hypergeometric_respects_support_bounds() {
        // Population 10, 8 marked, 5 draws: at least 3 draws must be marked.
        let h = Hypergeometric::new(10, 5, 8).expect("valid");
        assert_eq!(h.pmf(0), 0.0);
        assert_eq!(h.pmf(2), 0.0);
        assert!(h.pmf(3) > 0.0);
        assert_eq!(h.pmf(6), 0.0);
    }

    #[test]
    fn hypergeometric_matches_direct_combinatorics() {
        use crate::special::binomial;
        let h = Hypergeometric::new(20, 6, 9).expect("valid");
        for k in 0..=6u64 {
            let direct = binomial(9, k) * binomial(11, 6 - k) / binomial(20, 6);
            assert!((h.pmf(k) - direct).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn hypergeometric_rejects_inconsistent_parameters() {
        assert!(Hypergeometric::new(0, 0, 0).is_err());
        assert!(Hypergeometric::new(10, 11, 5).is_err());
        assert!(Hypergeometric::new(10, 5, 11).is_err());
    }

    #[test]
    fn categorical_sampling_tracks_weights() {
        let chooser = Categorical::new(&[1.0, 3.0, 6.0]).expect("valid");
        assert_eq!(chooser.len(), 3);
        assert!(!chooser.is_empty());
        assert!((chooser.probability(2) - 0.6).abs() < 1e-12);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[chooser.sample(&mut rng)] += 1;
        }
        for (index, &expected) in [0.1, 0.3, 0.6].iter().enumerate() {
            let observed = counts[index] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "category {index}: observed {observed}"
            );
        }
    }

    #[test]
    fn categorical_handles_zero_weight_categories() {
        let chooser = Categorical::new(&[0.0, 1.0, 0.0]).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1_000 {
            assert_eq!(chooser.sample(&mut rng), 1);
        }
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -0.5]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }
}
