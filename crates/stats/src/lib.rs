//! Numerical substrate for the LSI product-quality reproduction.
//!
//! This crate provides the deterministic random-number generation, special
//! functions, probability distributions, root finding and least-squares
//! machinery that the rest of the workspace builds on.  Everything is
//! implemented in-tree so that the Monte-Carlo experiments in
//! `lsiq-manufacturing` and the analytic model in `lsiq-core` are
//! bit-reproducible across platforms and independent of external crate
//! version churn.
//!
//! # Quick example
//!
//! ```
//! use lsiq_stats::rng::Xoshiro256StarStar;
//! use lsiq_stats::dist::Poisson;
//! use lsiq_stats::dist::Sample;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let poisson = Poisson::new(7.0).expect("positive mean");
//! let draw = poisson.sample(&mut rng);
//! assert!(draw < 1_000);
//! ```

pub mod dist;
pub mod error;
pub mod fit;
pub mod histogram;
pub mod rng;
pub mod roots;
pub mod special;
pub mod summary;

pub use error::StatsError;
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
