//! Numerical substrate for the LSI product-quality reproduction.
//!
//! This crate provides the deterministic random-number generation, special
//! functions, probability distributions, root finding and least-squares
//! machinery that the rest of the workspace builds on.  Everything is
//! implemented in-tree so that the Monte-Carlo experiments in
//! `lsiq-manufacturing` and the analytic model in `lsiq-core` are
//! bit-reproducible across platforms and independent of external crate
//! version churn.
//!
//! Where the paper's machinery lives here:
//!
//! * [`dist::Poisson`] — the shifted-Poisson fault-number model of eq. 1
//!   draws its `Poisson(n0 - 1)` part from this,
//! * [`dist::NegativeBinomial`] — clustered defect counts whose zero class
//!   is the yield formula of eq. 3,
//! * [`dist::Hypergeometric`] — the escape probability `q0(n)` of eq. 5,
//! * [`rng::Xoshiro256StarStar`] — the workhorse generator behind every
//!   seeded experiment, with [`rng::Xoshiro256StarStar::stream`] deriving
//!   the per-chip streams that keep the multi-threaded production line
//!   byte-identical to its serial path,
//! * [`fit`] and [`roots`] — the least-squares curve fit and root solving
//!   of the Section 5/6 estimation procedures.
//!
//! # Quick example
//!
//! ```
//! use lsiq_stats::rng::Xoshiro256StarStar;
//! use lsiq_stats::dist::Poisson;
//! use lsiq_stats::dist::Sample;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let poisson = Poisson::new(7.0).expect("positive mean");
//! let draw = poisson.sample(&mut rng);
//! assert!(draw < 1_000);
//! ```

pub mod dist;
pub mod error;
pub mod fit;
pub mod histogram;
pub mod rng;
pub mod roots;
pub mod special;
pub mod summary;

pub use error::StatsError;
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
