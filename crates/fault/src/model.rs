//! The single stuck-at fault model.

use lsiq_netlist::circuit::{Circuit, GateId};
use std::fmt;

/// The value a faulty line is stuck at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StuckValue {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckValue {
    /// The boolean the line is forced to.
    pub fn as_bool(self) -> bool {
        self == StuckValue::One
    }

    /// The packed word the line is forced to (all patterns).
    pub fn as_word(self) -> u64 {
        match self {
            StuckValue::Zero => 0,
            StuckValue::One => u64::MAX,
        }
    }

    /// The opposite stuck value.
    pub fn opposite(self) -> StuckValue {
        match self {
            StuckValue::Zero => StuckValue::One,
            StuckValue::One => StuckValue::Zero,
        }
    }

    /// A dense `0`/`1` index for per-site lookup tables.
    pub fn index(self) -> usize {
        match self {
            StuckValue::Zero => 0,
            StuckValue::One => 1,
        }
    }

    /// Both stuck values.
    pub const BOTH: [StuckValue; 2] = [StuckValue::Zero, StuckValue::One];
}

impl fmt::Display for StuckValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StuckValue::Zero => write!(f, "SA0"),
            StuckValue::One => write!(f, "SA1"),
        }
    }
}

/// Where a stuck-at fault sits.
///
/// Output faults sit on the stem a gate drives; input-pin faults sit on one
/// fanout branch, i.e. on the wire as seen by a single load gate.  The
/// distinction matters exactly when a stem fans out: a branch fault does not
/// affect the other branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// The output (stem) of a gate or primary input.
    Output(GateId),
    /// Input pin `pin` of gate `gate`.
    InputPin {
        /// The gate whose input pin is faulty.
        gate: GateId,
        /// The pin position within that gate's fanin list.
        pin: usize,
    },
}

impl FaultSite {
    /// The gate whose evaluation the fault directly affects: the faulty gate
    /// itself for output faults, the loading gate for pin faults.
    pub fn affected_gate(self) -> GateId {
        match self {
            FaultSite::Output(gate) => gate,
            FaultSite::InputPin { gate, .. } => gate,
        }
    }

    /// The gate that drives the faulty line: the gate itself for output
    /// faults, the pin's driver for pin faults.
    ///
    /// # Panics
    ///
    /// Panics if the site refers to a pin that does not exist in `circuit`.
    pub fn driving_gate(self, circuit: &Circuit) -> GateId {
        match self {
            FaultSite::Output(gate) => gate,
            FaultSite::InputPin { gate, pin } => circuit.gate(gate).fanin()[pin],
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Where the fault sits.
    pub site: FaultSite,
    /// The value the line is stuck at.
    pub stuck: StuckValue,
}

impl Fault {
    /// A stuck-at fault on a gate's output stem.
    pub fn output(gate: GateId, stuck: StuckValue) -> Fault {
        Fault {
            site: FaultSite::Output(gate),
            stuck,
        }
    }

    /// A stuck-at fault on an input pin.
    pub fn input_pin(gate: GateId, pin: usize, stuck: StuckValue) -> Fault {
        Fault {
            site: FaultSite::InputPin { gate, pin },
            stuck,
        }
    }

    /// Renders the fault with circuit signal names, e.g. `G16/SA0` or
    /// `G22.in1/SA1`.
    pub fn describe(&self, circuit: &Circuit) -> String {
        match self.site {
            FaultSite::Output(gate) => {
                format!("{}/{}", circuit.signal_name(gate), self.stuck)
            }
            FaultSite::InputPin { gate, pin } => {
                format!("{}.in{}/{}", circuit.signal_name(gate), pin, self.stuck)
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site {
            FaultSite::Output(gate) => write!(f, "{gate}/{}", self.stuck),
            FaultSite::InputPin { gate, pin } => write!(f, "{gate}.in{pin}/{}", self.stuck),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    #[test]
    fn stuck_value_conversions() {
        assert!(!StuckValue::Zero.as_bool());
        assert!(StuckValue::One.as_bool());
        assert_eq!(StuckValue::Zero.as_word(), 0);
        assert_eq!(StuckValue::One.as_word(), u64::MAX);
        assert_eq!(StuckValue::Zero.opposite(), StuckValue::One);
        assert_eq!(StuckValue::BOTH.len(), 2);
    }

    #[test]
    fn fault_constructors_and_display() {
        let output_fault = Fault::output(GateId(3), StuckValue::Zero);
        assert_eq!(output_fault.to_string(), "g3/SA0");
        let pin_fault = Fault::input_pin(GateId(5), 1, StuckValue::One);
        assert_eq!(pin_fault.to_string(), "g5.in1/SA1");
        assert_eq!(pin_fault.site.affected_gate(), GateId(5));
    }

    #[test]
    fn describe_uses_signal_names() {
        let circuit = library::c17();
        let g16 = circuit.find_signal("G16").expect("exists");
        let fault = Fault::output(g16, StuckValue::One);
        assert_eq!(fault.describe(&circuit), "G16/SA1");
        let pin_fault = Fault::input_pin(g16, 0, StuckValue::Zero);
        assert_eq!(pin_fault.describe(&circuit), "G16.in0/SA0");
    }

    #[test]
    fn driving_gate_resolves_pin_drivers() {
        let circuit = library::c17();
        let g22 = circuit.find_signal("G22").expect("exists");
        let g10 = circuit.find_signal("G10").expect("exists");
        let site = FaultSite::InputPin { gate: g22, pin: 0 };
        assert_eq!(site.driving_gate(&circuit), g10);
        assert_eq!(FaultSite::Output(g22).driving_gate(&circuit), g22);
    }

    #[test]
    fn faults_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(Fault::output(GateId(1), StuckValue::Zero));
        set.insert(Fault::output(GateId(1), StuckValue::Zero));
        set.insert(Fault::output(GateId(1), StuckValue::One));
        assert_eq!(set.len(), 2);
    }
}
