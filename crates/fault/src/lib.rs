//! Single stuck-at fault modelling and fault simulation.
//!
//! This crate supplies the "fault simulator" role that the LAMP system played
//! in the paper's Section 7 experiment:
//!
//! * [`model`] — stuck-at faults on gate outputs and input pins,
//! * [`universe`] — enumeration of the complete fault universe `N`,
//! * [`collapse`] — structural equivalence and dominance collapsing,
//! * [`list`] — fault lists with detection status and coverage accounting,
//! * [`simulator`] — the [`FaultSimulator`] trait every engine implements,
//! * [`serial`], [`ppsfp`], [`deductive`], [`parallel`], [`incremental`] —
//!   five independent fault-simulation algorithms (serial, 64-pattern-parallel
//!   single fault propagation, deductive, the multi-threaded sharded engine,
//!   and event-driven incremental cone propagation), which cross-check each
//!   other in the test suites; the architecture guide comparing them is
//!   `docs/ENGINES.md` at the repository root,
//! * [`coverage`] — cumulative fault-coverage curves as a function of the
//!   number of applied patterns (the paper's `f` axis), and
//! * [`dictionary`] — per-fault first-failing-pattern records, the raw
//!   material of the paper's Table 1.
//!
//! # Quick example
//!
//! ```
//! use lsiq_netlist::library;
//! use lsiq_sim::pattern::{Pattern, PatternSet};
//! use lsiq_fault::universe::FaultUniverse;
//! use lsiq_fault::parallel::ParallelSimulator;
//! use lsiq_fault::simulator::FaultSimulator;
//!
//! let circuit = library::c17();
//! let universe = FaultUniverse::full(&circuit);
//! let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
//! let result = ParallelSimulator::new(&circuit).run(&universe, &patterns);
//! assert!(result.coverage() > 0.99); // exhaustive patterns detect everything
//! ```

mod classes;
mod telemetry;

pub mod collapse;
pub mod coverage;
pub mod deductive;
pub mod dictionary;
pub mod incremental;
pub mod inject;
pub mod list;
pub mod model;
pub mod parallel;
pub mod ppsfp;
pub mod serial;
pub mod simulator;
pub mod universe;

pub use coverage::CoverageCurve;
pub use incremental::IncrementalSimulator;
pub use list::{DetectionState, FaultList, ListArena, ListRef};
pub use model::{Fault, FaultSite, StuckValue};
pub use parallel::ParallelSimulator;
pub use simulator::{BuildEngine, EngineKind, FaultSimulator};
pub use universe::{FaultUniverse, SiteTable};
