//! Deductive fault simulation.
//!
//! For every applied pattern the simulator computes, in one topological pass,
//! the *fault list* of each signal: the set of single stuck-at faults whose
//! presence would complement that signal's value under this pattern.  Faults
//! appearing in the list of any primary output are detected by the pattern.
//! The algorithm simulates all faults of a pattern simultaneously and is the
//! third, independent implementation used to cross-check the serial and
//! PPSFP simulators.
//!
//! # List representation
//!
//! Signal fault lists are sorted, duplicate-free `u32` index lists stored in
//! a bump arena ([`ListArena`]); union, intersection, subtraction and the
//! XOR parity rule are linear merges over sorted slices.  Handles into the
//! arena are freely shared, so a buffer's output list aliases its input list
//! and a fanout branch without an own active fault aliases its stem — no
//! bytes are copied for either.  The arena (and every other buffer of the
//! pass) is reset and reused across patterns, so after the first pattern the
//! engine allocates nothing.  This replaces a `HashSet<usize>` per gate per
//! pattern and is roughly an order of magnitude faster.
//!
//! # Collapsed-universe simulation
//!
//! By default the engine partitions the requested fault universe into
//! structural equivalence classes
//! ([`collapse_equivalence`](crate::collapse::collapse_equivalence)) and
//! propagates
//! one representative per class; the detection of the representative is then
//! credited to every member.  Equivalent faults are detected by exactly the
//! same patterns, so the reported [`FaultList`] is identical to a
//! full-universe run — the collapsed pass just carries ~60 percent fewer
//! list entries.  Disable with
//! [`with_collapsing(false)`](DeductiveSimulator::with_collapsing).

use crate::classes::{simulation_classes, CollapseContext, SimulationClasses};
use crate::list::{FaultList, ListArena, ListRef};
use crate::model::{Fault, StuckValue};
use crate::simulator::FaultSimulator;
use crate::telemetry;
use crate::universe::{FaultUniverse, SiteTable};
use lsiq_netlist::circuit::{Circuit, GateId};
use lsiq_netlist::GateKind;
use lsiq_obs::Span;
use lsiq_sim::eval::controlling_value;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::PATTERNS_PER_WORD;
use lsiq_sim::pattern::PatternSet;

static GOOD_MACHINE: Span = Span::new("engine.deductive.good_machine");
static PROPAGATE: Span = Span::new("engine.deductive.propagate");

/// A deductive fault simulator.
#[derive(Debug)]
pub struct DeductiveSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
    collapse: bool,
    /// Lazily built on the first collapsing run and reused afterwards, so
    /// disabling collapsing never pays for it and suite builders that call
    /// [`run`](FaultSimulator::run) repeatedly pay for it once.
    context: std::cell::OnceCell<CollapseContext>,
}

impl<'c> DeductiveSimulator<'c> {
    /// Prepares a deductive fault simulator for `circuit` with fault dropping
    /// and equivalence collapsing enabled.
    pub fn new(circuit: &'c Circuit) -> Self {
        DeductiveSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
            collapse: true,
            context: std::cell::OnceCell::new(),
        }
    }

    /// Controls fault dropping (see
    /// [`SerialSimulator::with_fault_dropping`](crate::serial::SerialSimulator::with_fault_dropping)).
    ///
    /// The deductive algorithm computes every pattern's full detection set in
    /// one pass regardless, so the flag only controls whether faults already
    /// detected are excluded from later passes; the reported first detections
    /// are identical either way.
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Controls equivalence collapsing (enabled by default).
    ///
    /// When enabled, only one representative per structural equivalence class
    /// of the requested universe is propagated and its detections are copied
    /// to the whole class.  The results are identical either way (enforced by
    /// `tests/engine_differential.rs`); disabling is useful to benchmark the
    /// raw propagation or to sidestep the per-run collapsing pass on tiny
    /// circuits.
    pub fn with_collapsing(mut self, enabled: bool) -> Self {
        self.collapse = enabled;
        self
    }

    /// Partitions the universe's fault indices into groups that provably
    /// share their set of detecting patterns (see
    /// [`classes::simulation_classes`](simulation_classes)).
    fn simulation_classes(&self, universe: &FaultUniverse) -> SimulationClasses {
        simulation_classes(
            self.compiled.circuit(),
            &self.context,
            self.collapse,
            universe,
        )
    }
}

impl FaultSimulator for DeductiveSimulator<'_> {
    fn name(&self) -> &'static str {
        "deductive"
    }

    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        let mut list = FaultList::new(universe);
        if universe.is_empty() || patterns.is_empty() {
            return list;
        }
        let classes = self.simulation_classes(universe);
        telemetry::RUNS.incr();
        telemetry::FAULTS.add(classes.count() as u64);
        let mut drops = 0u64;
        let mut pass = Propagation::new(&self.compiled, universe, &classes);
        let circuit = self.compiled.circuit();
        let input_count = circuit.primary_inputs().len();
        // Good-machine values are computed 64 patterns at a time with packed
        // words (shared with the PPSFP engine) and unpacked per pattern; the
        // word, value and detection buffers are all reused across blocks.
        let mut words: Vec<u64> = Vec::new();
        let mut values: Vec<bool> = vec![false; circuit.gate_count()];
        let mut detected: Vec<u32> = Vec::new();
        for block in 0..patterns.block_count() {
            let (input_words, pattern_count) = patterns.pack_block(input_count, block);
            if pattern_count == 0 {
                break;
            }
            telemetry::GOOD_EVALS.incr();
            {
                let _timer = GOOD_MACHINE.start();
                self.compiled.node_words_into(&input_words, &mut words);
            }
            let _timer = PROPAGATE.start();
            for slot in 0..pattern_count {
                for (value, &word) in values.iter_mut().zip(words.iter()) {
                    *value = (word >> slot) & 1 == 1;
                }
                let pattern_index = block * PATTERNS_PER_WORD + slot;
                pass.detect_pattern(&values, &mut detected);
                for &class in &detected {
                    for &member in classes.members_of(class) {
                        list.mark_detected(member as usize, pattern_index);
                    }
                    if self.drop_detected {
                        pass.deactivate(class);
                        drops += 1;
                    }
                }
            }
        }
        telemetry::DROPS.add(drops);
        list
    }
}

/// The [`StuckValue::index`] slot of the stuck value that *opposes* (and
/// therefore complements) a line at `good` value.
fn opposing_slot(good: bool) -> usize {
    if good {
        StuckValue::Zero.index()
    } else {
        StuckValue::One.index()
    }
}

/// The reusable state of one deductive run: per-site fault-class tables, the
/// list arena, and the per-gate list handles.  Everything here is allocated
/// once per [`DeductiveSimulator::run`] and reused for every pattern.
struct Propagation<'a, 'c> {
    compiled: &'a CompiledCircuit<'c>,
    /// Class index of each site's stuck faults: a [`SiteTable`] over the
    /// one-representative-per-class universe, so a site's position *is* its
    /// class.
    sites: SiteTable,
    /// Classes still being simulated (fault dropping clears entries).
    active: Vec<bool>,
    arena: ListArena,
    /// Current fault list of every gate, indexed by gate id.
    refs: Vec<ListRef>,
    /// Scratch: the effective list seen at each pin of the current gate.
    pin_refs: Vec<ListRef>,
}

impl<'a, 'c> Propagation<'a, 'c> {
    fn new(
        compiled: &'a CompiledCircuit<'c>,
        universe: &FaultUniverse,
        classes: &SimulationClasses,
    ) -> Self {
        let circuit = compiled.circuit();
        let representatives: Vec<Fault> = (0..classes.count() as u32)
            .map(|class| {
                *universe
                    .get(classes.representative(class) as usize)
                    .expect("class member in range")
            })
            .collect();
        Propagation {
            compiled,
            sites: SiteTable::new(circuit, &FaultUniverse::from_faults(representatives)),
            active: vec![true; classes.count()],
            arena: ListArena::new(),
            refs: vec![ListRef::EMPTY; circuit.gate_count()],
            pin_refs: Vec::new(),
        }
    }

    /// Stops propagating a detected class (fault dropping).
    fn deactivate(&mut self, class: u32) {
        self.active[class as usize] = false;
    }

    /// Propagates fault lists for one pattern (whose good-machine `values`
    /// are indexed by gate id) and writes the detected class indices (sorted,
    /// duplicate-free) into `detected`.
    fn detect_pattern(&mut self, values: &[bool], detected: &mut Vec<u32>) {
        let compiled = self.compiled;
        let circuit = compiled.circuit();
        self.arena.reset();
        for &id in compiled.order() {
            let gate_index = id.index();
            let kind = circuit.gate(id).kind();
            let mut own = if kind == GateKind::Input {
                ListRef::EMPTY
            } else {
                self.propagate_gate(id, values)
            };
            // The gate's own output stuck fault complements the output when
            // its stuck value opposes the good value.  An output fault of the
            // agreeing polarity masks every upstream effect, but it is a
            // different single fault from those in the list, so under the
            // single-fault assumption nothing needs to be removed.
            if let Some(class) =
                self.sites.output_positions(gate_index)[opposing_slot(values[gate_index])]
            {
                if self.active[class as usize] {
                    own = self.arena.insert(own, class);
                }
            }
            self.refs[gate_index] = own;
        }
        let mut union = ListRef::EMPTY;
        for &out in circuit.primary_outputs() {
            union = self.arena.union(union, self.refs[out.index()]);
        }
        detected.clear();
        detected.extend_from_slice(self.arena.slice(union));
    }

    /// Applies the deductive propagation rule of one non-input gate.
    fn propagate_gate(&mut self, id: GateId, values: &[bool]) -> ListRef {
        let circuit = self.compiled.circuit();
        let gate = circuit.gate(id);
        let gate_index = id.index();
        // Effective fault list seen at each pin: the driver's list plus the
        // pin's own stuck fault when it opposes the value.  Without an active
        // pin fault the handle aliases the driver's list — no copy.
        self.pin_refs.clear();
        for (pin, &driver) in gate.fanin().iter().enumerate() {
            let mut seen = self.refs[driver.index()];
            if let Some(class) =
                self.sites.pin_positions(gate_index, pin)[opposing_slot(values[driver.index()])]
            {
                if self.active[class as usize] {
                    seen = self.arena.insert(seen, class);
                }
            }
            self.pin_refs.push(seen);
        }
        match gate.kind() {
            GateKind::Buf | GateKind::Not => self.pin_refs[0],
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let control =
                    controlling_value(gate.kind()).expect("AND/OR family has a controlling value");
                let any_controlling = gate
                    .fanin()
                    .iter()
                    .any(|&driver| values[driver.index()] == control);
                if !any_controlling {
                    // No input at the controlling value: any single flip
                    // flips the output.
                    let mut acc = ListRef::EMPTY;
                    for &pin_list in &self.pin_refs {
                        acc = self.arena.union(acc, pin_list);
                    }
                    acc
                } else {
                    // The output flips only if every controlling input flips
                    // and no non-controlling input flips.
                    let mut acc: Option<ListRef> = None;
                    for (pin, &driver) in gate.fanin().iter().enumerate() {
                        if values[driver.index()] == control {
                            let pin_list = self.pin_refs[pin];
                            acc = Some(match acc {
                                None => pin_list,
                                Some(so_far) => self.arena.intersect(so_far, pin_list),
                            });
                        }
                    }
                    let mut acc = acc.expect("at least one controlling pin");
                    for (pin, &driver) in gate.fanin().iter().enumerate() {
                        if acc.is_empty() {
                            break;
                        }
                        if values[driver.index()] != control {
                            acc = self.arena.subtract(acc, self.pin_refs[pin]);
                        }
                    }
                    acc
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // The output flips when an odd number of inputs flip.
                let mut acc = ListRef::EMPTY;
                for &pin_list in &self.pin_refs {
                    acc = self.arena.symmetric_difference(acc, pin_list);
                }
                acc
            }
            // A DFF output is held state within one time frame: no fault
            // propagates through it combinationally (sequential circuits are
            // fault-simulated on their scan-expanded views, where flip-flops
            // have already been replaced by pseudo-primary inputs).
            GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => ListRef::EMPTY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::PpsfpSimulator;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;
    use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

    fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
            .collect()
    }

    fn assert_identical(a: &FaultList, b: &FaultList, circuit: &Circuit, universe: &FaultUniverse) {
        for index in 0..universe.len() {
            assert_eq!(
                a.state(index).first_pattern(),
                b.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(circuit)
            );
        }
    }

    #[test]
    fn matches_serial_simulator_on_c17_exhaustive() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        assert_identical(&serial, &deductive, &circuit, &universe);
    }

    #[test]
    fn matches_serial_simulator_on_xor_heavy_logic() {
        // The full adder exercises the XOR parity rule.
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 3)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        assert_identical(&serial, &deductive, &circuit, &universe);
    }

    #[test]
    fn matches_ppsfp_on_random_logic() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 10,
            gates: 80,
            seed: 17,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(10, 40, 3);
        let ppsfp = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        assert_identical(&ppsfp, &deductive, &circuit, &universe);
    }

    #[test]
    fn collapsing_does_not_change_results() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 9,
            gates: 70,
            seed: 41,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(9, 50, 13);
        let collapsed = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        let uncollapsed = DeductiveSimulator::new(&circuit)
            .with_collapsing(false)
            .run(&universe, &patterns);
        assert_eq!(collapsed, uncollapsed);
    }

    #[test]
    fn collapsing_handles_the_checkpoint_universe() {
        // The checkpoint universe is a strict subset of the full universe;
        // its classes must still simulate and expand correctly.
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 8,
            gates: 60,
            seed: 5,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::checkpoint(&circuit);
        let patterns = random_patterns(8, 48, 23);
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        assert_identical(&serial, &deductive, &circuit, &universe);
    }

    #[test]
    fn detects_nothing_without_patterns() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let list = DeductiveSimulator::new(&circuit).run(&universe, &PatternSet::new());
        assert_eq!(list.detected_count(), 0);
    }
}
