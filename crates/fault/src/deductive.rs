//! Deductive fault simulation.
//!
//! For every applied pattern the simulator computes, in one topological pass,
//! the *fault list* of each signal: the set of single stuck-at faults whose
//! presence would complement that signal's value under this pattern.  Faults
//! appearing in the list of any primary output are detected by the pattern.
//! The algorithm simulates all faults of a pattern simultaneously and is the
//! third, independent implementation used to cross-check the serial and
//! PPSFP simulators.

use crate::list::FaultList;
use crate::model::{Fault, StuckValue};
use crate::simulator::FaultSimulator;
use crate::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::GateKind;
use lsiq_sim::eval::controlling_value;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::pattern::{Pattern, PatternSet};
use std::collections::{HashMap, HashSet};

/// A deductive fault simulator.
#[derive(Debug)]
pub struct DeductiveSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
}

impl<'c> DeductiveSimulator<'c> {
    /// Prepares a deductive fault simulator for `circuit` with fault dropping
    /// enabled.
    pub fn new(circuit: &'c Circuit) -> Self {
        DeductiveSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
        }
    }

    /// Controls fault dropping (see
    /// [`SerialSimulator::with_fault_dropping`](crate::serial::SerialSimulator::with_fault_dropping)).
    ///
    /// The deductive algorithm computes every pattern's full detection set in
    /// one pass regardless, so the flag only controls whether faults already
    /// detected are excluded from later passes; the reported first detections
    /// are identical either way.
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Computes the set of universe fault indices detected by one pattern.
    fn detected_by_pattern(
        &self,
        pattern: &Pattern,
        index_of: &HashMap<Fault, usize>,
    ) -> HashSet<usize> {
        let circuit = self.compiled.circuit();
        let values = self.compiled.node_values(pattern);
        let mut lists: Vec<HashSet<usize>> = vec![HashSet::new(); circuit.gate_count()];

        for &id in self.compiled.order() {
            let gate = circuit.gate(id);
            let mut own = HashSet::new();
            if gate.kind() != GateKind::Input {
                // Effective fault list seen at each pin: the driver's list
                // plus the pin's own stuck fault when it opposes the value.
                let pin_lists: Vec<HashSet<usize>> = gate
                    .fanin()
                    .iter()
                    .enumerate()
                    .map(|(pin, &driver)| {
                        let mut pin_list = lists[driver.index()].clone();
                        let pin_value = values[driver.index()];
                        let opposing = if pin_value {
                            StuckValue::Zero
                        } else {
                            StuckValue::One
                        };
                        if let Some(&index) = index_of.get(&Fault::input_pin(id, pin, opposing)) {
                            pin_list.insert(index);
                        }
                        pin_list
                    })
                    .collect();
                own = propagate_through_gate(gate.kind(), gate.fanin(), &values, &pin_lists);
            }
            // The gate's own output stuck fault complements the output when
            // its stuck value opposes the good value.
            let good = values[id.index()];
            let opposing = if good {
                StuckValue::Zero
            } else {
                StuckValue::One
            };
            if let Some(&index) = index_of.get(&Fault::output(id, opposing)) {
                own.insert(index);
            }
            // An output fault of the agreeing polarity masks every upstream
            // effect (the line is held at its good value), but such a fault is
            // a different single fault from those in the list, so under the
            // single-fault assumption nothing needs to be removed.
            lists[id.index()] = own;
        }

        let mut detected = HashSet::new();
        for &out in circuit.primary_outputs() {
            detected.extend(lists[out.index()].iter().copied());
        }
        detected
    }
}

impl FaultSimulator for DeductiveSimulator<'_> {
    fn name(&self) -> &'static str {
        "deductive"
    }

    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        let mut list = FaultList::new(universe);
        let mut index_of: HashMap<Fault, usize> =
            universe.iter().enumerate().map(|(i, f)| (*f, i)).collect();
        for (pattern_index, pattern) in patterns.iter().enumerate() {
            let detected = self.detected_by_pattern(pattern, &index_of);
            for fault_index in detected {
                list.mark_detected(fault_index, pattern_index);
            }
            if self.drop_detected {
                index_of.retain(|_, index| !list.state(*index).is_detected());
            }
        }
        list
    }
}

/// Applies the deductive propagation rule of a single gate.
fn propagate_through_gate(
    kind: GateKind,
    fanin: &[lsiq_netlist::circuit::GateId],
    values: &[bool],
    pin_lists: &[HashSet<usize>],
) -> HashSet<usize> {
    match kind {
        GateKind::Buf | GateKind::Not => pin_lists[0].clone(),
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            let control = controlling_value(kind).expect("AND/OR family has a controlling value");
            let controlling_pins: Vec<usize> = fanin
                .iter()
                .enumerate()
                .filter(|(_, &driver)| values[driver.index()] == control)
                .map(|(pin, _)| pin)
                .collect();
            if controlling_pins.is_empty() {
                // No input at the controlling value: any single flip flips the
                // output.
                let mut union = HashSet::new();
                for pin_list in pin_lists {
                    union.extend(pin_list.iter().copied());
                }
                union
            } else {
                // The output flips only if every controlling input flips and
                // no non-controlling input flips.
                let mut intersection: HashSet<usize> = pin_lists[controlling_pins[0]].clone();
                for &pin in &controlling_pins[1..] {
                    intersection = intersection
                        .intersection(&pin_lists[pin])
                        .copied()
                        .collect();
                }
                for (pin, pin_list) in pin_lists.iter().enumerate() {
                    if !controlling_pins.contains(&pin) {
                        for fault in pin_list {
                            intersection.remove(fault);
                        }
                    }
                }
                intersection
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // The output flips when an odd number of inputs flip.
            let mut parity: HashMap<usize, usize> = HashMap::new();
            for pin_list in pin_lists {
                for &fault in pin_list {
                    *parity.entry(fault).or_insert(0) += 1;
                }
            }
            parity
                .into_iter()
                .filter(|(_, count)| count % 2 == 1)
                .map(|(fault, _)| fault)
                .collect()
        }
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => HashSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::PpsfpSimulator;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    use lsiq_netlist::library;
    use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

    fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
            .collect()
    }

    #[test]
    fn matches_serial_simulator_on_c17_exhaustive() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                deductive.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(&circuit)
            );
        }
    }

    #[test]
    fn matches_serial_simulator_on_xor_heavy_logic() {
        // The full adder exercises the XOR parity rule.
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 3)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                deductive.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(&circuit)
            );
        }
    }

    #[test]
    fn matches_ppsfp_on_random_logic() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 10,
            gates: 80,
            seed: 17,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(10, 40, 3);
        let ppsfp = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                ppsfp.state(index).first_pattern(),
                deductive.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(&circuit)
            );
        }
    }

    #[test]
    fn detects_nothing_without_patterns() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let list = DeductiveSimulator::new(&circuit).run(&universe, &PatternSet::new());
        assert_eq!(list.detected_count(), 0);
    }
}
