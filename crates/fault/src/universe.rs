//! Enumeration of the single stuck-at fault universe.

use crate::model::{Fault, StuckValue};
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::GateKind;

/// The complete set of candidate faults of a circuit.
///
/// The paper's coverage fraction `f = m / N` is defined against a fixed fault
/// universe of size `N`; this type is that universe.  Two standard choices
/// are offered:
///
/// * [`FaultUniverse::full`] — both stuck values on every gate output stem
///   and on every gate input pin (the "uncollapsed" universe), and
/// * [`FaultUniverse::checkpoint`] — both stuck values on every checkpoint
///   (primary inputs and fanout branches only), the classical reduced set
///   that still guarantees complete coverage of the full universe for
///   fanout-free reconvergence-free regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
}

impl FaultUniverse {
    /// Builds the uncollapsed fault universe: stuck-at-0 and stuck-at-1 on
    /// every stem (gate or primary-input output) and on every gate input pin.
    pub fn full(circuit: &Circuit) -> FaultUniverse {
        let mut faults = Vec::new();
        for (id, gate) in circuit.iter() {
            if gate.kind() != GateKind::Const0 && gate.kind() != GateKind::Const1 {
                for stuck in StuckValue::BOTH {
                    faults.push(Fault::output(id, stuck));
                }
            }
            for pin in 0..gate.fanin_count() {
                for stuck in StuckValue::BOTH {
                    faults.push(Fault::input_pin(id, pin, stuck));
                }
            }
        }
        FaultUniverse { faults }
    }

    /// Builds the checkpoint fault universe: stuck faults on primary inputs
    /// and on fanout branches (input pins whose driver fans out to more than
    /// one place).
    pub fn checkpoint(circuit: &Circuit) -> FaultUniverse {
        let mut faults = Vec::new();
        for &input in circuit.primary_inputs() {
            for stuck in StuckValue::BOTH {
                faults.push(Fault::output(input, stuck));
            }
        }
        for (id, gate) in circuit.iter() {
            for (pin, &driver) in gate.fanin().iter().enumerate() {
                if circuit.is_fanout_stem(driver) {
                    for stuck in StuckValue::BOTH {
                        faults.push(Fault::input_pin(id, pin, stuck));
                    }
                }
            }
        }
        FaultUniverse { faults }
    }

    /// Builds a universe from an explicit fault list (used by the collapsing
    /// pass and by tests).
    pub fn from_faults(faults: Vec<Fault>) -> FaultUniverse {
        FaultUniverse { faults }
    }

    /// Number of faults `N` in the universe.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in enumeration order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The fault at position `index`.
    pub fn get(&self, index: usize) -> Option<&Fault> {
        self.faults.get(index)
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }

    /// The position of `fault` in this universe, if present.
    ///
    /// This is a linear scan; for repeated lookups build a [`SiteTable`].
    pub fn position(&self, fault: &Fault) -> Option<usize> {
        self.faults.iter().position(|f| f == fault)
    }

    /// Builds an O(1) fault → position lookup table over this universe.
    pub fn site_table(&self, circuit: &Circuit) -> SiteTable {
        SiteTable::new(circuit, self)
    }
}

/// An O(1) fault → universe-position lookup table, indexed by fault site.
///
/// The collapsing pass and the deductive simulator resolve every fault of a
/// circuit once per run; a hash map over [`Fault`] keys is measurably slower
/// than this flat per-site layout (one slot pair per gate output stem and one
/// per input pin, addressed through a prefix-sum offset table).
#[derive(Debug, Clone)]
pub struct SiteTable {
    /// Position of each gate's output-stem faults, `[gate][stuck]`.
    output: Vec<[Option<u32>; 2]>,
    /// Start of each gate's pin slots in `pin` (prefix sums of fanin counts).
    pin_offset: Vec<u32>,
    /// Position of each input-pin fault, flattened, `[pin][stuck]`.
    pin: Vec<[Option<u32>; 2]>,
}

impl SiteTable {
    /// Indexes `universe` (which must refer to gates of `circuit`) by site.
    ///
    /// Faults of the universe that point outside the circuit are skipped;
    /// [`position`](SiteTable::position) reports `None` for them.
    pub fn new(circuit: &Circuit, universe: &FaultUniverse) -> SiteTable {
        assert!(
            universe.len() <= u32::MAX as usize,
            "fault universe exceeds u32 index space"
        );
        let mut pin_offset = Vec::with_capacity(circuit.gate_count() + 1);
        let mut total = 0u32;
        pin_offset.push(0);
        for (_, gate) in circuit.iter() {
            total += gate.fanin_count() as u32;
            pin_offset.push(total);
        }
        let mut table = SiteTable {
            output: vec![[None; 2]; circuit.gate_count()],
            pin_offset,
            pin: vec![[None; 2]; total as usize],
        };
        for (index, fault) in universe.iter().enumerate() {
            if let Some(slot) = table.slot_mut(fault) {
                *slot = Some(index as u32);
            }
        }
        table
    }

    fn slot_mut(&mut self, fault: &Fault) -> Option<&mut Option<u32>> {
        let slot = fault.stuck.index();
        match fault.site {
            crate::model::FaultSite::Output(gate) => self
                .output
                .get_mut(gate.index())
                .map(|pair| &mut pair[slot]),
            crate::model::FaultSite::InputPin { gate, pin } => {
                let start = *self.pin_offset.get(gate.index())? as usize;
                let end = *self.pin_offset.get(gate.index() + 1)? as usize;
                if pin >= end - start {
                    return None;
                }
                Some(&mut self.pin[start + pin][slot])
            }
        }
    }

    /// The universe position of `fault`, if present.
    pub fn position(&self, fault: &Fault) -> Option<u32> {
        let slot = fault.stuck.index();
        match fault.site {
            crate::model::FaultSite::Output(gate) => self.output.get(gate.index())?[slot],
            crate::model::FaultSite::InputPin { gate, pin } => {
                let start = *self.pin_offset.get(gate.index())? as usize;
                let end = *self.pin_offset.get(gate.index() + 1)? as usize;
                if pin >= end - start {
                    return None;
                }
                self.pin[start + pin][slot]
            }
        }
    }

    /// The positions of both stuck faults (indexed by
    /// [`StuckValue::index`]) on the output stem of the gate with index
    /// `gate` — a hot-path accessor that skips [`Fault`] construction.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range for the indexed circuit.
    pub fn output_positions(&self, gate: usize) -> [Option<u32>; 2] {
        self.output[gate]
    }

    /// The positions of both stuck faults on input pin `pin` of the gate
    /// with index `gate`.
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range; `pin` must be a valid pin of that
    /// gate (checked in debug builds).
    pub fn pin_positions(&self, gate: usize, pin: usize) -> [Option<u32>; 2] {
        let start = self.pin_offset[gate] as usize;
        debug_assert!(pin < (self.pin_offset[gate + 1] as usize - start));
        self.pin[start + pin]
    }
}

impl<'a> IntoIterator for &'a FaultUniverse {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;
    use lsiq_netlist::stats::CircuitStats;

    #[test]
    fn full_universe_matches_structural_count() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let stats = CircuitStats::of(&circuit);
        assert_eq!(universe.len(), stats.uncollapsed_fault_sites());
        assert_eq!(universe.len(), 46);
    }

    #[test]
    fn full_universe_has_no_duplicates() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let mut unique: Vec<Fault> = universe.faults().to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), universe.len());
    }

    #[test]
    fn checkpoint_universe_is_smaller() {
        let circuit = library::c17();
        let full = FaultUniverse::full(&circuit);
        let checkpoint = FaultUniverse::checkpoint(&circuit);
        assert!(checkpoint.len() < full.len());
        // c17 checkpoints: 5 primary inputs + fanout branches of G3, G11, G16
        // (each fans out to 2 loads) = 5*2 + 6*2 = 22 faults.
        assert_eq!(checkpoint.len(), 22);
    }

    #[test]
    fn constants_contribute_no_output_faults() {
        let circuit = lsiq_netlist::generator::ripple_carry_adder(2);
        // The generated adder instantiates a constant-zero carry-in only when
        // built as a block without carry; the standalone adder has `cin`, so
        // build one with a constant through the multiplier instead.
        let mul = lsiq_netlist::generator::array_multiplier(2);
        let universe = FaultUniverse::full(&mul);
        for fault in &universe {
            if let crate::model::FaultSite::Output(gate) = fault.site {
                let kind = mul.gate(gate).kind();
                assert_ne!(kind, lsiq_netlist::GateKind::Const0);
                assert_ne!(kind, lsiq_netlist::GateKind::Const1);
            }
        }
        // And the plain adder's universe is simply non-empty and consistent.
        assert!(!FaultUniverse::full(&circuit).is_empty());
    }

    #[test]
    fn site_table_matches_linear_position() {
        let circuit = library::alu4();
        for universe in [
            FaultUniverse::full(&circuit),
            FaultUniverse::checkpoint(&circuit),
        ] {
            let table = universe.site_table(&circuit);
            for (index, fault) in universe.iter().enumerate() {
                assert_eq!(table.position(fault), Some(index as u32));
            }
        }
        // A fault absent from the (checkpoint) universe resolves to None.
        let checkpoint = FaultUniverse::checkpoint(&circuit);
        let table = checkpoint.site_table(&circuit);
        let full = FaultUniverse::full(&circuit);
        for fault in &full {
            assert_eq!(
                table.position(fault).map(|i| i as usize),
                checkpoint.position(fault)
            );
        }
    }

    #[test]
    fn accessors_and_lookup() {
        let circuit = library::half_adder();
        let universe = FaultUniverse::full(&circuit);
        let first = universe.get(0).copied().expect("non-empty");
        assert_eq!(universe.position(&first), Some(0));
        assert_eq!(universe.iter().count(), universe.len());
        let rebuilt = FaultUniverse::from_faults(universe.faults().to_vec());
        assert_eq!(rebuilt, universe);
    }
}
