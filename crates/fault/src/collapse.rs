//! Structural fault collapsing.
//!
//! Equivalence collapsing merges faults that no test can distinguish (for
//! example, any input of an AND gate stuck at 0 is indistinguishable from the
//! output stuck at 0).  Dominance reduction additionally removes gate-output
//! faults that are detected by every test of some input fault.  Collapsing
//! changes the size of the fault universe `N` and therefore the numerical
//! value of "fault coverage"; the paper's model is agnostic to the choice as
//! long as it is applied consistently, and the bench harness reports both.

use crate::model::{Fault, StuckValue};
use crate::universe::{FaultUniverse, SiteTable};
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::GateKind;

/// The outcome of a collapsing pass.
#[derive(Debug, Clone)]
pub struct CollapseResult {
    /// The collapsed universe (one representative per equivalence class,
    /// minus any dominance-removed faults).
    pub collapsed: FaultUniverse,
    /// For every fault of the original universe, the index of its
    /// representative in `collapsed`, or `None` if the whole class was
    /// removed by dominance reduction.
    pub representative_of: Vec<Option<usize>>,
    /// Size of the original universe.
    pub original_len: usize,
}

impl CollapseResult {
    /// The collapse ratio `collapsed / original` (1.0 when nothing collapsed).
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.collapsed.len() as f64 / self.original_len as f64
        }
    }

    /// Expands a fault list simulated over the *collapsed* universe back to
    /// the original universe: every original fault inherits its
    /// representative's first detecting pattern.
    ///
    /// For equivalence collapsing this is exact — structurally equivalent
    /// faults are detected by exactly the same patterns (pinned by this
    /// module's tests), so the expanded list is byte-identical to a
    /// full-universe simulation while the simulation itself carried ~40–60
    /// percent fewer faults.  This is how the suite builder applies
    /// collapsing on the hot path without changing any reported coverage.
    ///
    /// # Panics
    ///
    /// Panics if `collapsed_list` does not match this result's collapsed
    /// universe, if `original` does not match the original universe's size,
    /// or if this result came from [`collapse_dominance`]: a
    /// dominance-removed fault's detection is *implied* but its first
    /// detecting pattern is unknown, so expansion would silently
    /// under-report it — only equivalence-only results can be expanded.
    pub fn expand_fault_list(
        &self,
        collapsed_list: &crate::list::FaultList,
        original: &FaultUniverse,
    ) -> crate::list::FaultList {
        assert_eq!(
            collapsed_list.len(),
            self.collapsed.len(),
            "collapsed list does not match the collapsed universe"
        );
        assert_eq!(
            original.len(),
            self.original_len,
            "original universe does not match the collapsing pass"
        );
        assert!(
            self.representative_of.iter().all(|r| r.is_some()),
            "cannot expand a dominance-collapse result: removed classes have no first-pattern data"
        );
        let mut expanded = crate::list::FaultList::new(original);
        for (index, representative) in self.representative_of.iter().enumerate() {
            if let Some(representative) = representative {
                if let Some(pattern) = collapsed_list.state(*representative).first_pattern() {
                    expanded.mark_detected(index, pattern);
                }
            }
        }
        expanded
    }
}

/// Simple union-find over fault indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Keep the smaller index as the class root for determinism.
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[drop] = keep;
        }
    }
}

/// Performs structural equivalence collapsing over the *full* fault universe
/// of `circuit`.
///
/// The rules applied are the classical gate-local equivalences:
///
/// * AND: every input SA0 ≡ output SA0 (NAND: ≡ output SA1),
/// * OR: every input SA1 ≡ output SA1 (NOR: ≡ output SA0),
/// * BUF: input SAx ≡ output SAx; NOT: input SAx ≡ output SA(1−x),
/// * a fanout-free connection makes a load's input-pin fault equivalent to
///   the driver's output fault of the same polarity.
pub fn collapse_equivalence(circuit: &Circuit) -> CollapseResult {
    let universe = FaultUniverse::full(circuit);
    let index_of = SiteTable::new(circuit, &universe);
    let mut union_find = UnionFind::new(universe.len());
    let merge = |a: Fault, b: Fault, uf: &mut UnionFind| {
        if let (Some(ia), Some(ib)) = (index_of.position(&a), index_of.position(&b)) {
            uf.union(ia as usize, ib as usize);
        }
    };

    for (id, gate) in circuit.iter() {
        // Wire equivalence across fanout-free connections.
        for (pin, &driver) in gate.fanin().iter().enumerate() {
            if !circuit.is_fanout_stem(driver) {
                for stuck in StuckValue::BOTH {
                    merge(
                        Fault::input_pin(id, pin, stuck),
                        Fault::output(driver, stuck),
                        &mut union_find,
                    );
                }
            }
        }
        // Gate-local equivalences.
        let (input_stuck, output_stuck) = match gate.kind() {
            GateKind::And => (StuckValue::Zero, StuckValue::Zero),
            GateKind::Nand => (StuckValue::Zero, StuckValue::One),
            GateKind::Or => (StuckValue::One, StuckValue::One),
            GateKind::Nor => (StuckValue::One, StuckValue::Zero),
            GateKind::Buf => {
                for stuck in StuckValue::BOTH {
                    merge(
                        Fault::input_pin(id, 0, stuck),
                        Fault::output(id, stuck),
                        &mut union_find,
                    );
                }
                continue;
            }
            GateKind::Not => {
                for stuck in StuckValue::BOTH {
                    merge(
                        Fault::input_pin(id, 0, stuck),
                        Fault::output(id, stuck.opposite()),
                        &mut union_find,
                    );
                }
                continue;
            }
            _ => continue,
        };
        for pin in 0..gate.fanin_count() {
            merge(
                Fault::input_pin(id, pin, input_stuck),
                Fault::output(id, output_stuck),
                &mut union_find,
            );
        }
    }

    // Gather representatives in original enumeration order.
    let mut representative_index: Vec<Option<usize>> = vec![None; universe.len()];
    let mut collapsed_faults = Vec::new();
    let mut representative_of = Vec::with_capacity(universe.len());
    for index in 0..universe.len() {
        let root = union_find.find(index);
        let entry = *representative_index[root].get_or_insert_with(|| {
            collapsed_faults.push(*universe.get(root).expect("root is in range"));
            collapsed_faults.len() - 1
        });
        representative_of.push(Some(entry));
    }
    CollapseResult {
        collapsed: FaultUniverse::from_faults(collapsed_faults),
        representative_of,
        original_len: universe.len(),
    }
}

/// Performs equivalence collapsing followed by dominance reduction.
///
/// Dominance reduction removes, for every multi-input AND/NAND/OR/NOR gate,
/// the output fault of the *non-equivalent* polarity (for example the output
/// SA1 of an AND gate), because any test for one of the gate's input SA1
/// faults also detects it.  The mapping for removed classes is `None`.
pub fn collapse_dominance(circuit: &Circuit) -> CollapseResult {
    let equivalence = collapse_equivalence(circuit);
    let universe = FaultUniverse::full(circuit);
    let index_of = SiteTable::new(circuit, &universe);
    let mut removable = vec![false; equivalence.collapsed.len()];
    for (id, gate) in circuit.iter() {
        if gate.fanin_count() < 2 {
            continue;
        }
        // Only meaningful when the gate output is not itself a checkpoint
        // the structure needs: if the gate drives a primary output directly
        // the fault is kept, because its input tests propagate through anyway.
        let removable_stuck = match gate.kind() {
            GateKind::And => StuckValue::One,
            GateKind::Nand => StuckValue::Zero,
            GateKind::Or => StuckValue::Zero,
            GateKind::Nor => StuckValue::One,
            _ => continue,
        };
        let fault = Fault::output(id, removable_stuck);
        if let Some(original_index) = index_of.position(&fault).map(|i| i as usize) {
            if let Some(Some(representative)) = equivalence.representative_of.get(original_index) {
                // Only remove the class if the output fault is its own class
                // (dominance does not licence removing merged input faults).
                if equivalence.collapsed.get(*representative) == Some(&fault) {
                    removable[*representative] = true;
                }
            }
        }
    }
    let mut new_index = vec![None; equivalence.collapsed.len()];
    let mut kept = Vec::new();
    for (index, fault) in equivalence.collapsed.iter().enumerate() {
        if !removable[index] {
            new_index[index] = Some(kept.len());
            kept.push(*fault);
        }
    }
    let representative_of = equivalence
        .representative_of
        .iter()
        .map(|maybe| maybe.and_then(|rep| new_index[rep]))
        .collect();
    CollapseResult {
        collapsed: FaultUniverse::from_faults(kept),
        representative_of,
        original_len: equivalence.original_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::PpsfpSimulator;
    use crate::simulator::FaultSimulator;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    #[test]
    fn equivalence_reduces_the_universe() {
        let circuit = library::c17();
        let result = collapse_equivalence(&circuit);
        assert!(result.collapsed.len() < result.original_len);
        assert!(result.ratio() < 1.0);
        // Every original fault maps to a representative.
        assert!(result.representative_of.iter().all(|r| r.is_some()));
        // Representatives are themselves members of the collapsed set.
        for rep in result.representative_of.iter().flatten() {
            assert!(*rep < result.collapsed.len());
        }
    }

    #[test]
    fn known_equivalence_class_in_c17() {
        // In c17, G10 = NAND(G1, G3): both input SA0 faults are equivalent to
        // the output SA1 fault.
        let circuit = library::c17();
        let result = collapse_equivalence(&circuit);
        let universe = FaultUniverse::full(&circuit);
        let g10 = circuit.find_signal("G10").expect("exists");
        let output_sa1 = universe
            .position(&Fault::output(g10, StuckValue::One))
            .expect("in universe");
        let pin0_sa0 = universe
            .position(&Fault::input_pin(g10, 0, StuckValue::Zero))
            .expect("in universe");
        let pin1_sa0 = universe
            .position(&Fault::input_pin(g10, 1, StuckValue::Zero))
            .expect("in universe");
        assert_eq!(
            result.representative_of[output_sa1],
            result.representative_of[pin0_sa0]
        );
        assert_eq!(
            result.representative_of[pin0_sa0],
            result.representative_of[pin1_sa0]
        );
    }

    #[test]
    fn expanding_a_collapsed_run_matches_the_full_run() {
        let circuit = library::c17();
        let patterns: PatternSet = (0..20)
            .map(|v| Pattern::from_integer(v * 3 % 32, 5))
            .collect();
        let full = FaultUniverse::full(&circuit);
        let equivalence = collapse_equivalence(&circuit);
        let sim = PpsfpSimulator::new(&circuit);
        let full_list = sim.run(&full, &patterns);
        let collapsed_list = sim.run(&equivalence.collapsed, &patterns);
        let expanded = equivalence.expand_fault_list(&collapsed_list, &full);
        assert_eq!(expanded, full_list);
    }

    #[test]
    #[should_panic(expected = "cannot expand a dominance-collapse result")]
    fn expanding_a_dominance_result_panics() {
        let circuit = library::c17();
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 5)).collect();
        let dominance = collapse_dominance(&circuit);
        let collapsed_list = PpsfpSimulator::new(&circuit).run(&dominance.collapsed, &patterns);
        let _ = dominance.expand_fault_list(&collapsed_list, &FaultUniverse::full(&circuit));
    }

    #[test]
    fn dominance_is_at_least_as_small_as_equivalence() {
        let circuit = library::c17();
        let equivalence = collapse_equivalence(&circuit);
        let dominance = collapse_dominance(&circuit);
        assert!(dominance.collapsed.len() <= equivalence.collapsed.len());
        assert_eq!(dominance.original_len, equivalence.original_len);
    }

    #[test]
    fn collapsing_preserves_detectability_on_c17() {
        // Exhaustive patterns detect every fault of the full universe; they
        // must also detect every representative, and coverage of the
        // collapsed universe must be complete.
        let circuit = library::c17();
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let result = collapse_equivalence(&circuit);
        let sim = PpsfpSimulator::new(&circuit);
        let collapsed_list = sim.run(&result.collapsed, &patterns);
        assert_eq!(collapsed_list.detected_count(), result.collapsed.len());
    }

    #[test]
    fn structured_generators_collapse_without_losing_detection() {
        // For the regular structures (ripple-carry adder, mux tree, decoder)
        // the equivalence classes are known-shaped and exhaustive patterns
        // detect every fault: coverage of the collapsed universe must equal
        // coverage of the full universe (both 100 percent), and each full
        // fault's first detecting pattern must equal its representative's.
        use lsiq_netlist::generator;
        let circuits = [
            ("adder", generator::ripple_carry_adder(3)),
            ("mux", generator::mux_tree(2)),
            ("decoder", generator::decoder(3)),
        ];
        for (name, circuit) in &circuits {
            let width = circuit.primary_inputs().len();
            assert!(width <= 10, "{name}: exhaustive sweep stays cheap");
            let patterns: PatternSet = (0..1u64 << width)
                .map(|value| Pattern::from_integer(value, width))
                .collect();
            let full = FaultUniverse::full(circuit);
            let equivalence = collapse_equivalence(circuit);
            assert!(equivalence.ratio() < 1.0, "{name}: nothing collapsed");
            let sim = PpsfpSimulator::new(circuit);
            let full_list = sim.run(&full, &patterns);
            let collapsed_list = sim.run(&equivalence.collapsed, &patterns);
            assert_eq!(
                full_list.coverage(),
                1.0,
                "{name}: exhaustive patterns must detect the full universe"
            );
            assert_eq!(
                collapsed_list.coverage(),
                full_list.coverage(),
                "{name}: collapsed-universe coverage differs from full-universe coverage"
            );
            for (index, representative) in equivalence.representative_of.iter().enumerate() {
                let representative = representative.expect("equivalence removes nothing");
                assert_eq!(
                    full_list.state(index).first_pattern(),
                    collapsed_list.state(representative).first_pattern(),
                    "{name}: fault {} detected at a different pattern than its representative",
                    full.get(index).expect("valid").describe(circuit)
                );
            }
        }
    }

    #[test]
    fn structured_generators_collapse_classes_survive_sparse_patterns() {
        // The first-detection agreement must hold for *any* pattern set, not
        // just exhaustive ones: equivalent faults are indistinguishable.
        use lsiq_netlist::generator;
        use lsiq_stats::rng::{Rng, Xoshiro256StarStar};
        let circuits = [
            ("adder", generator::ripple_carry_adder(4)),
            ("mux", generator::mux_tree(3)),
            ("decoder", generator::decoder(4)),
        ];
        for (name, circuit) in &circuits {
            let width = circuit.primary_inputs().len();
            let mut rng = Xoshiro256StarStar::seed_from_u64(7 + width as u64);
            let patterns: PatternSet = (0..12)
                .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
                .collect();
            let full = FaultUniverse::full(circuit);
            let equivalence = collapse_equivalence(circuit);
            let sim = PpsfpSimulator::new(circuit);
            let full_list = sim.run(&full, &patterns);
            let collapsed_list = sim.run(&equivalence.collapsed, &patterns);
            for (index, representative) in equivalence.representative_of.iter().enumerate() {
                let representative = representative.expect("equivalence removes nothing");
                assert_eq!(
                    full_list.state(index).first_pattern(),
                    collapsed_list.state(representative).first_pattern(),
                    "{name}: fault {} disagrees with its class under sparse patterns",
                    full.get(index).expect("valid").describe(circuit)
                );
            }
        }
    }

    #[test]
    fn structured_generators_dominance_keeps_full_detectability() {
        // Dominance reduction may only remove faults whose detection is
        // implied: when every kept fault is detected, every removed fault is
        // detected too, so 100 percent collapsed coverage must mean
        // 100 percent full-universe coverage.
        use lsiq_netlist::generator;
        let circuits = [
            ("adder", generator::ripple_carry_adder(3)),
            ("mux", generator::mux_tree(2)),
            ("decoder", generator::decoder(3)),
        ];
        for (name, circuit) in &circuits {
            let width = circuit.primary_inputs().len();
            let patterns: PatternSet = (0..1u64 << width)
                .map(|value| Pattern::from_integer(value, width))
                .collect();
            let dominance = collapse_dominance(circuit);
            let equivalence = collapse_equivalence(circuit);
            assert!(
                dominance.collapsed.len() < equivalence.collapsed.len(),
                "{name}: dominance removed nothing"
            );
            let sim = PpsfpSimulator::new(circuit);
            let dominance_list = sim.run(&dominance.collapsed, &patterns);
            let full_list = sim.run(&FaultUniverse::full(circuit), &patterns);
            assert_eq!(dominance_list.coverage(), 1.0, "{name}");
            assert_eq!(full_list.coverage(), 1.0, "{name}");
            // Every kept class still detects at its equivalence-class time.
            for (index, representative) in dominance.representative_of.iter().enumerate() {
                if let Some(representative) = representative {
                    assert_eq!(
                        full_list.state(index).first_pattern(),
                        dominance_list.state(*representative).first_pattern(),
                        "{name}: kept fault {} shifted its first detection",
                        FaultUniverse::full(circuit)
                            .get(index)
                            .expect("valid")
                            .describe(circuit)
                    );
                }
            }
        }
    }

    #[test]
    fn equivalent_faults_have_identical_detecting_patterns() {
        // For every equivalence class of c17, all members must be detected by
        // exactly the same exhaustive patterns.
        let circuit = library::c17();
        let compiled = lsiq_sim::levelized::CompiledCircuit::new(&circuit);
        let universe = FaultUniverse::full(&circuit);
        let result = collapse_equivalence(&circuit);
        // Detecting-pattern signature per fault.
        let mut signatures: Vec<u32> = Vec::with_capacity(universe.len());
        for fault in &universe {
            let mut signature = 0u32;
            for value in 0u64..32 {
                let pattern = Pattern::from_integer(value, 5);
                let good = compiled.outputs(&pattern);
                let faulty = crate::inject::outputs_with_fault(&compiled, pattern.bits(), fault);
                if good != faulty {
                    signature |= 1 << value;
                }
            }
            signatures.push(signature);
        }
        for class in 0..result.collapsed.len() {
            let members: Vec<usize> = result
                .representative_of
                .iter()
                .enumerate()
                .filter(|(_, r)| **r == Some(class))
                .map(|(i, _)| i)
                .collect();
            let first = signatures[members[0]];
            for &member in &members[1..] {
                assert_eq!(
                    signatures[member],
                    first,
                    "fault {} differs from its class representative",
                    universe.get(member).expect("valid").describe(&circuit)
                );
            }
        }
    }
}
