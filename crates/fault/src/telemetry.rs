//! Shared engine telemetry counters.
//!
//! All five engines record the same four totals, placed at
//! worker-count-invariant points — per run, per representative fault, per
//! good-machine evaluation, per drop — so the merged registry totals are
//! identical at any worker count, lane width or shard layout (the
//! determinism suite pins this).  Per-engine *timing* lives in the
//! `engine.<name>.good_machine` / `engine.<name>.propagate` spans declared
//! in each engine module.

use lsiq_obs::Counter;

/// Fault-simulation passes: one per `FaultSimulator::run` that had work.
pub(crate) static RUNS: Counter = Counter::new("engine.runs");

/// Representative faults entering a run (post-collapse simulation classes
/// for the collapsing engines, raw universe faults for serial/PPSFP).
pub(crate) static FAULTS: Counter = Counter::new("engine.faults");

/// Faults excluded from further simulation after their first detection.
/// Zero when fault dropping is disabled.
pub(crate) static DROPS: Counter = Counter::new("engine.drops");

/// Good-machine evaluations an engine prepared: packed chunks for the
/// chunked engines, single patterns for serial.  Cache hits count too —
/// this is demand, not computation (the computation split is
/// `cache.good_machine.hits` / `.misses`).
pub(crate) static GOOD_EVALS: Counter = Counter::new("engine.good_evals");
