//! Parallel-pattern single-fault-propagation (PPSFP) fault simulation.
//!
//! Sixty-four patterns are packed into machine words and simulated at once;
//! each fault is then injected and re-simulated over the same block, and the
//! word-level output mismatch yields the detecting patterns.  This is the
//! workhorse simulator used by the production-line experiments.

use crate::inject::output_words_with_fault;
use crate::list::FaultList;
use crate::simulator::FaultSimulator;
use crate::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::{first_differing_slot, valid_mask};
use lsiq_sim::pattern::PatternSet;

/// A 64-pattern-parallel single-fault-propagation simulator.
#[derive(Debug)]
pub struct PpsfpSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
}

impl<'c> PpsfpSimulator<'c> {
    /// Prepares a PPSFP simulator for `circuit` with fault dropping enabled.
    pub fn new(circuit: &'c Circuit) -> Self {
        PpsfpSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
        }
    }

    /// Controls fault dropping (see
    /// [`SerialSimulator::with_fault_dropping`](crate::serial::SerialSimulator::with_fault_dropping)).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }
}

impl FaultSimulator for PpsfpSimulator<'_> {
    fn name(&self) -> &'static str {
        "ppsfp"
    }

    /// Runs the pattern set against every fault of `universe` and returns the
    /// per-fault detection states (first detecting pattern in application
    /// order, exactly as the serial simulator reports them).
    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        let mut list = FaultList::new(universe);
        let circuit = self.compiled.circuit();
        let input_count = circuit.primary_inputs().len();
        for block in 0..patterns.block_count() {
            let (input_words, pattern_count) = patterns.pack_block(input_count, block);
            if pattern_count == 0 {
                break;
            }
            let valid = valid_mask(pattern_count);
            let good = self.compiled.output_words(&input_words);
            for fault_index in 0..list.len() {
                if self.drop_detected && list.state(fault_index).is_detected() {
                    continue;
                }
                let fault = *list.fault(fault_index);
                let faulty = output_words_with_fault(&self.compiled, &input_words, &fault);
                let mut earliest: Option<usize> = None;
                for (good_word, faulty_word) in good.iter().zip(faulty.iter()) {
                    if let Some(slot) = first_differing_slot(*good_word, *faulty_word, valid) {
                        earliest = Some(match earliest {
                            Some(existing) => existing.min(slot),
                            None => slot,
                        });
                    }
                }
                if let Some(slot) = earliest {
                    list.mark_detected(fault_index, block * 64 + slot);
                }
            }
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;
    use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

    fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
            .collect()
    }

    #[test]
    fn matches_serial_simulator_on_c17() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let parallel = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                parallel.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(&circuit)
            );
        }
    }

    #[test]
    fn matches_serial_simulator_on_random_logic_across_blocks() {
        // More than 64 patterns so several blocks are exercised.
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 12,
            gates: 120,
            seed: 5,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(12, 150, 99);
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let parallel = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                parallel.state(index).first_pattern()
            );
        }
    }

    #[test]
    fn exhaustive_patterns_fully_cover_the_alu() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..1024).map(|v| Pattern::from_integer(v, 10)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        // The ALU contains a small amount of redundancy (its adder carry-in
        // is tied to constant 0), so a handful of faults are untestable;
        // everything else must be detected by the exhaustive set.
        assert!(list.coverage() > 0.95, "coverage {}", list.coverage());
    }

    #[test]
    fn coverage_grows_monotonically_with_more_patterns() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let few = random_patterns(10, 8, 1);
        let many = random_patterns(10, 64, 1);
        let coverage_few = PpsfpSimulator::new(&circuit)
            .run(&universe, &few)
            .coverage();
        let coverage_many = PpsfpSimulator::new(&circuit)
            .run(&universe, &many)
            .coverage();
        assert!(coverage_many >= coverage_few);
        assert!(coverage_few > 0.0);
    }

    #[test]
    fn fault_dropping_setting_is_respected() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let dropped = PpsfpSimulator::new(&circuit)
            .with_fault_dropping(true)
            .run(&universe, &patterns);
        let undropped = PpsfpSimulator::new(&circuit)
            .with_fault_dropping(false)
            .run(&universe, &patterns);
        assert_eq!(dropped.detected_count(), undropped.detected_count());
    }
}
