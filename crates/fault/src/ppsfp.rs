//! Parallel-pattern single-fault-propagation (PPSFP) fault simulation.
//!
//! Up to `64 × lanes` patterns are packed into lane-wide chunks
//! ([`PackedBlock`]) and simulated at once; each fault is then injected and
//! re-simulated over the same chunk, and the chunk-level output mismatch
//! yields the detecting patterns.  This is the workhorse simulator used by
//! the production-line experiments.  Detection results are byte-identical
//! at every lane width — lanes only change throughput.

use crate::inject::output_chunks_with_fault;
use crate::list::FaultList;
use crate::simulator::FaultSimulator;
use crate::telemetry;
use crate::universe::FaultUniverse;
use lsiq_exec::LaneWidth;
use lsiq_netlist::circuit::Circuit;
use lsiq_obs::Span;
use lsiq_sim::cache::{circuit_fingerprint, GoodMachineCache};
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::PackedBlock;
use lsiq_sim::pattern::PatternSet;

static GOOD_MACHINE: Span = Span::new("engine.ppsfp.good_machine");
static PROPAGATE: Span = Span::new("engine.ppsfp.propagate");

/// A pattern-parallel single-fault-propagation simulator.
#[derive(Debug)]
pub struct PpsfpSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
    lanes: LaneWidth,
    cache: Option<&'c GoodMachineCache>,
}

impl<'c> PpsfpSimulator<'c> {
    /// Prepares a PPSFP simulator for `circuit` with fault dropping enabled
    /// and the automatic lane width.
    pub fn new(circuit: &'c Circuit) -> Self {
        PpsfpSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
            lanes: LaneWidth::Auto,
            cache: None,
        }
    }

    /// Controls fault dropping (see
    /// [`SerialSimulator::with_fault_dropping`](crate::serial::SerialSimulator::with_fault_dropping)).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Selects the packed lane width ([`LaneWidth::Auto`] by default).
    /// Results are identical at every width.
    pub fn with_lanes(mut self, lanes: LaneWidth) -> Self {
        self.lanes = lanes;
        self
    }

    /// Shares a [`GoodMachineCache`]: good-machine chunk images are looked
    /// up (and on a miss deposited) there instead of being recomputed, so
    /// repeated runs over the same patterns — a coverage loop, a signature
    /// sweep — pay for the fault-free simulation once.
    pub fn with_cache(mut self, cache: &'c GoodMachineCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// One lane-monomorphized run (see [`FaultSimulator::run`]).
    fn run_lanes<const L: usize>(
        &self,
        universe: &FaultUniverse,
        patterns: &PatternSet,
    ) -> FaultList {
        let mut list = FaultList::new(universe);
        telemetry::RUNS.incr();
        telemetry::FAULTS.add(list.len() as u64);
        let circuit = self.compiled.circuit();
        let input_count = circuit.primary_inputs().len();
        let fingerprint = self.cache.map(|_| circuit_fingerprint(circuit));
        let mut drops = 0u64;
        for chunk in 0..patterns.chunk_count(L) {
            let (input_chunks, pattern_count) = patterns.pack_chunk::<L>(input_count, chunk);
            if pattern_count == 0 {
                break;
            }
            let valid = PackedBlock::<L>::valid_mask(pattern_count);
            telemetry::GOOD_EVALS.incr();
            let good = {
                let _timer = GOOD_MACHINE.start();
                self.good_outputs(fingerprint, &input_chunks, pattern_count)
            };
            let _timer = PROPAGATE.start();
            for fault_index in 0..list.len() {
                if self.drop_detected && list.state(fault_index).is_detected() {
                    continue;
                }
                let fault = *list.fault(fault_index);
                let faulty = output_chunks_with_fault(&self.compiled, &input_chunks, &fault);
                let mut detect = PackedBlock::<L>::ZERO;
                for (good_chunk, faulty_chunk) in good.iter().zip(faulty.iter()) {
                    detect |= (*good_chunk ^ *faulty_chunk) & valid;
                }
                if let Some(slot) = detect.first_set_slot() {
                    list.mark_detected(fault_index, chunk * PackedBlock::<L>::PATTERNS + slot);
                    if self.drop_detected {
                        drops += 1;
                    }
                }
            }
        }
        telemetry::DROPS.add(drops);
        list
    }

    /// The good-machine primary-output chunks: through the shared cache when
    /// one is bound, directly otherwise.
    fn good_outputs<const L: usize>(
        &self,
        fingerprint: Option<u64>,
        input_chunks: &[PackedBlock<L>],
        pattern_count: usize,
    ) -> Vec<PackedBlock<L>> {
        match (self.cache, fingerprint) {
            (Some(cache), Some(fingerprint)) => {
                let nodes = cache.node_chunks_keyed(
                    fingerprint,
                    &self.compiled,
                    input_chunks,
                    pattern_count,
                );
                self.compiled
                    .circuit()
                    .primary_outputs()
                    .iter()
                    .map(|&out| nodes[out.index()])
                    .collect()
            }
            _ => self.compiled.output_chunks(input_chunks),
        }
    }
}

impl FaultSimulator for PpsfpSimulator<'_> {
    fn name(&self) -> &'static str {
        "ppsfp"
    }

    /// Runs the pattern set against every fault of `universe` and returns the
    /// per-fault detection states (first detecting pattern in application
    /// order, exactly as the serial simulator reports them).
    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        match self.lanes.resolve(patterns.len()) {
            1 => self.run_lanes::<1>(universe, patterns),
            4 => self.run_lanes::<4>(universe, patterns),
            _ => self.run_lanes::<8>(universe, patterns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;
    use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

    fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
            .collect()
    }

    #[test]
    fn matches_serial_simulator_on_c17() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let parallel = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                parallel.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(&circuit)
            );
        }
    }

    #[test]
    fn matches_serial_simulator_on_random_logic_across_blocks() {
        // More than 64 patterns so several blocks are exercised.
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 12,
            gates: 120,
            seed: 5,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(12, 150, 99);
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let parallel = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                parallel.state(index).first_pattern()
            );
        }
    }

    #[test]
    fn exhaustive_patterns_fully_cover_the_alu() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..1024).map(|v| Pattern::from_integer(v, 10)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        // The ALU contains a small amount of redundancy (its adder carry-in
        // is tied to constant 0), so a handful of faults are untestable;
        // everything else must be detected by the exhaustive set.
        assert!(list.coverage() > 0.95, "coverage {}", list.coverage());
    }

    #[test]
    fn coverage_grows_monotonically_with_more_patterns() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let few = random_patterns(10, 8, 1);
        let many = random_patterns(10, 64, 1);
        let coverage_few = PpsfpSimulator::new(&circuit)
            .run(&universe, &few)
            .coverage();
        let coverage_many = PpsfpSimulator::new(&circuit)
            .run(&universe, &many)
            .coverage();
        assert!(coverage_many >= coverage_few);
        assert!(coverage_few > 0.0);
    }

    #[test]
    fn explicit_lane_widths_and_cache_agree_with_the_default() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(10, 300, 7);
        let reference = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        for lanes in LaneWidth::EXPLICIT {
            let list = PpsfpSimulator::new(&circuit)
                .with_lanes(lanes)
                .run(&universe, &patterns);
            assert_eq!(reference, list, "lanes = {lanes}");
        }
        // A shared cache changes nothing about the result; the second run
        // replays the good machine from the cache.
        let cache = GoodMachineCache::new();
        let cached = PpsfpSimulator::new(&circuit)
            .with_cache(&cache)
            .run(&universe, &patterns);
        assert_eq!(reference, cached);
        assert!(cache.misses() > 0 && cache.hits() == 0);
        let again = PpsfpSimulator::new(&circuit)
            .with_cache(&cache)
            .run(&universe, &patterns);
        assert_eq!(reference, again);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn fault_dropping_setting_is_respected() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let dropped = PpsfpSimulator::new(&circuit)
            .with_fault_dropping(true)
            .run(&universe, &patterns);
        let undropped = PpsfpSimulator::new(&circuit)
            .with_fault_dropping(false)
            .run(&universe, &patterns);
        assert_eq!(dropped.detected_count(), undropped.detected_count());
    }
}
