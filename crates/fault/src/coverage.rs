//! Cumulative fault-coverage curves.
//!
//! The paper's estimation procedure needs "cumulative fault coverage as a
//! function of the number of test patterns", obtained from a fault simulator
//! evaluating the patterns *in the order they will be applied to the chip*.
//! [`CoverageCurve`] is exactly that object.

use crate::list::FaultList;

/// Fault coverage as a function of the number of applied patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageCurve {
    /// `cumulative[k]` is the coverage after applying patterns `0..=k`.
    cumulative: Vec<f64>,
    /// Total number of faults in the universe (`N`).
    universe_size: usize,
}

impl CoverageCurve {
    /// Builds the curve from a simulated fault list and the number of
    /// patterns that were applied.
    pub fn from_fault_list(list: &FaultList, pattern_count: usize) -> CoverageCurve {
        let mut detections_at = vec![0usize; pattern_count];
        for (_, state) in list.iter() {
            if let Some(pattern) = state.first_pattern() {
                if pattern < pattern_count {
                    detections_at[pattern] += 1;
                }
            }
        }
        let universe_size = list.len();
        let mut cumulative = Vec::with_capacity(pattern_count);
        let mut running = 0usize;
        for detected in detections_at {
            running += detected;
            let coverage = if universe_size == 0 {
                0.0
            } else {
                running as f64 / universe_size as f64
            };
            cumulative.push(coverage);
        }
        CoverageCurve {
            cumulative,
            universe_size,
        }
    }

    /// Reassembles a curve from its cumulative points — the inverse of
    /// [`cumulative`](Self::cumulative), used by artifact stores that
    /// persist suites across processes.
    pub fn from_cumulative(cumulative: Vec<f64>, universe_size: usize) -> CoverageCurve {
        CoverageCurve {
            cumulative,
            universe_size,
        }
    }

    /// The raw cumulative points: `cumulative()[k]` is the coverage after
    /// applying patterns `0..=k`.  Together with
    /// [`from_cumulative`](Self::from_cumulative) this round-trips the
    /// curve exactly.
    pub fn cumulative(&self) -> &[f64] {
        &self.cumulative
    }

    /// Number of patterns the curve covers.
    pub fn pattern_count(&self) -> usize {
        self.cumulative.len()
    }

    /// Size of the fault universe `N`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Coverage after applying the first `count` patterns (zero for
    /// `count == 0`, clamped to the final value beyond the end).
    pub fn coverage_after(&self, count: usize) -> f64 {
        if count == 0 || self.cumulative.is_empty() {
            0.0
        } else {
            let index = (count - 1).min(self.cumulative.len() - 1);
            self.cumulative[index]
        }
    }

    /// The final coverage after all patterns.
    pub fn final_coverage(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// `(patterns applied, coverage)` pairs for every pattern count 1..=n.
    pub fn points(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.cumulative
            .iter()
            .enumerate()
            .map(|(index, &coverage)| (index + 1, coverage))
    }

    /// The smallest number of patterns whose cumulative coverage reaches
    /// `target`, or `None` if the curve never reaches it.
    pub fn patterns_to_reach(&self, target: f64) -> Option<usize> {
        self.cumulative
            .iter()
            .position(|&coverage| coverage >= target)
            .map(|index| index + 1)
    }

    /// Down-samples the curve to the given pattern checkpoints, returning
    /// `(patterns, coverage)` pairs.  Checkpoints beyond the end use the
    /// final coverage.
    pub fn at_checkpoints(&self, checkpoints: &[usize]) -> Vec<(usize, f64)> {
        checkpoints
            .iter()
            .map(|&count| (count, self.coverage_after(count)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::PpsfpSimulator;
    use crate::simulator::FaultSimulator;
    use crate::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn c17_curve() -> CoverageCurve {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        CoverageCurve::from_fault_list(&list, patterns.len())
    }

    #[test]
    fn curve_is_monotone_and_ends_at_final_coverage() {
        let curve = c17_curve();
        let mut previous = 0.0;
        for (_, coverage) in curve.points() {
            assert!(coverage + 1e-15 >= previous);
            previous = coverage;
        }
        assert!((curve.final_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(curve.pattern_count(), 32);
        assert_eq!(curve.universe_size(), 46);
    }

    #[test]
    fn coverage_after_clamps_and_handles_zero() {
        let curve = c17_curve();
        assert_eq!(curve.coverage_after(0), 0.0);
        assert_eq!(curve.coverage_after(32), curve.final_coverage());
        assert_eq!(curve.coverage_after(1_000), curve.final_coverage());
        assert!(curve.coverage_after(1) > 0.0);
    }

    #[test]
    fn patterns_to_reach_finds_thresholds() {
        let curve = c17_curve();
        assert_eq!(curve.patterns_to_reach(0.0), Some(1));
        let needed = curve.patterns_to_reach(0.9).expect("reaches 90 percent");
        assert!(needed <= 32);
        assert!(curve.coverage_after(needed) >= 0.9);
        assert!(curve.coverage_after(needed - 1) < 0.9);
        assert_eq!(curve.patterns_to_reach(1.1), None);
    }

    #[test]
    fn checkpoints_extract_requested_points() {
        let curve = c17_curve();
        let points = curve.at_checkpoints(&[1, 4, 16, 64]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].0, 1);
        assert!((points[3].1 - curve.final_coverage()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_produce_empty_curve() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let list = crate::list::FaultList::new(&universe);
        let curve = CoverageCurve::from_fault_list(&list, 0);
        assert_eq!(curve.pattern_count(), 0);
        assert_eq!(curve.final_coverage(), 0.0);
        assert_eq!(curve.coverage_after(5), 0.0);
    }
}
