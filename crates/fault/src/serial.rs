//! Serial fault simulation.
//!
//! The slowest but simplest algorithm: every (pattern, fault) pair is
//! simulated independently.  It serves as the reference implementation the
//! faster simulators are checked against.

use crate::inject::outputs_with_fault;
use crate::list::FaultList;
use crate::simulator::FaultSimulator;
use crate::telemetry;
use crate::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_obs::Span;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::pattern::PatternSet;

static GOOD_MACHINE: Span = Span::new("engine.serial.good_machine");
static PROPAGATE: Span = Span::new("engine.serial.propagate");

/// A serial (one fault at a time, one pattern at a time) fault simulator.
#[derive(Debug)]
pub struct SerialSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
}

impl<'c> SerialSimulator<'c> {
    /// Prepares a serial fault simulator for `circuit` with fault dropping
    /// enabled.
    pub fn new(circuit: &'c Circuit) -> Self {
        SerialSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
        }
    }

    /// Controls fault dropping: when enabled (the default) a fault is no
    /// longer simulated after its first detection, which is what the paper's
    /// "chip is rejected at the first pattern it fails" procedure needs.
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }
}

impl FaultSimulator for SerialSimulator<'_> {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        let mut list = FaultList::new(universe);
        telemetry::RUNS.incr();
        telemetry::FAULTS.add(list.len() as u64);
        telemetry::GOOD_EVALS.add(patterns.len() as u64);
        let mut drops = 0u64;
        for (pattern_index, pattern) in patterns.iter().enumerate() {
            let good = {
                let _timer = GOOD_MACHINE.start();
                self.compiled.outputs(pattern)
            };
            let _timer = PROPAGATE.start();
            for fault_index in 0..list.len() {
                if self.drop_detected && list.state(fault_index).is_detected() {
                    continue;
                }
                let fault = *list.fault(fault_index);
                let faulty = outputs_with_fault(&self.compiled, pattern.bits(), &fault);
                if faulty != good {
                    list.mark_detected(fault_index, pattern_index);
                    if self.drop_detected {
                        drops += 1;
                    }
                }
            }
        }
        telemetry::DROPS.add(drops);
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Fault, StuckValue};
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    #[test]
    fn exhaustive_patterns_detect_every_c17_fault() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = SerialSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(list.detected_count(), universe.len());
        assert!((list.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_patterns_detect_nothing() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let list = SerialSimulator::new(&circuit).run(&universe, &PatternSet::new());
        assert_eq!(list.detected_count(), 0);
    }

    #[test]
    fn single_pattern_detects_a_known_fault() {
        // For the half adder with a=1, b=1: carry SA0 flips carry from 1 to 0.
        let circuit = library::half_adder();
        let carry = circuit.find_signal("carry").expect("exists");
        let universe = FaultUniverse::from_faults(vec![Fault::output(carry, StuckValue::Zero)]);
        let patterns: PatternSet = [Pattern::from_bits([true, true])].into_iter().collect();
        let list = SerialSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(list.detected_count(), 1);
        assert_eq!(list.state(0).first_pattern(), Some(0));
    }

    #[test]
    fn first_detection_pattern_is_recorded_in_order() {
        let circuit = library::half_adder();
        let carry = circuit.find_signal("carry").expect("exists");
        let universe = FaultUniverse::from_faults(vec![Fault::output(carry, StuckValue::Zero)]);
        // First pattern cannot detect carry SA0 (carry is 0 anyway); second can.
        let patterns: PatternSet = [
            Pattern::from_bits([true, false]),
            Pattern::from_bits([true, true]),
        ]
        .into_iter()
        .collect();
        let list = SerialSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(list.state(0).first_pattern(), Some(1));
    }

    #[test]
    fn fault_dropping_does_not_change_first_detections() {
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 3)).collect();
        let with_drop = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let without_drop = SerialSimulator::new(&circuit)
            .with_fault_dropping(false)
            .run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                with_drop.state(index).first_pattern(),
                without_drop.state(index).first_pattern()
            );
        }
    }
}
