//! First-failing-pattern dictionaries.
//!
//! The paper's Table 1 experiment records, for every tested chip, the first
//! pattern at which it fails.  The per-fault analogue of that record is the
//! fault dictionary built here: for each fault, the earliest pattern that
//! detects it.  The production-line tester consults this dictionary to decide
//! when a simulated defective chip (a set of faults) first fails.

use crate::list::FaultList;

/// First-failing-pattern records for a fault universe under an ordered
/// pattern set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDictionary {
    first_pattern: Vec<Option<usize>>,
}

impl FaultDictionary {
    /// Builds the dictionary from a simulated fault list.
    pub fn from_fault_list(list: &FaultList) -> FaultDictionary {
        FaultDictionary {
            first_pattern: (0..list.len())
                .map(|index| list.state(index).first_pattern())
                .collect(),
        }
    }

    /// Reassembles a dictionary from its per-fault first-failing-pattern
    /// records — the inverse of [`first_patterns`](Self::first_patterns),
    /// used by artifact stores that persist dictionaries across processes.
    pub fn from_first_patterns(first_pattern: Vec<Option<usize>>) -> FaultDictionary {
        FaultDictionary { first_pattern }
    }

    /// The raw per-fault records, in fault-universe order: the first
    /// pattern detecting each fault, or `None` when no applied pattern
    /// does.  Together with [`from_first_patterns`](Self::from_first_patterns)
    /// this round-trips the dictionary exactly.
    pub fn first_patterns(&self) -> &[Option<usize>] {
        &self.first_pattern
    }

    /// Number of faults covered by the dictionary.
    pub fn len(&self) -> usize {
        self.first_pattern.len()
    }

    /// Returns `true` if the dictionary covers no faults.
    pub fn is_empty(&self) -> bool {
        self.first_pattern.is_empty()
    }

    /// The first pattern detecting fault `index`, or `None` if no applied
    /// pattern detects it.
    pub fn first_failing_pattern(&self, index: usize) -> Option<usize> {
        self.first_pattern.get(index).copied().flatten()
    }

    /// The first pattern at which a chip carrying exactly the faults in
    /// `fault_indices` fails, or `None` if it passes every pattern.
    ///
    /// Under the single-fault detectability assumption of the paper's model
    /// (the chip's faults are equivalent to a set of detectable stuck-at
    /// faults), a chip fails at the earliest first-failing pattern over its
    /// faults.
    pub fn first_failure_of_chip(&self, fault_indices: &[usize]) -> Option<usize> {
        fault_indices
            .iter()
            .filter_map(|&index| self.first_failing_pattern(index))
            .min()
    }

    /// The first test *session* in which fault `index` produces any
    /// response difference, for a test applied as sessions of `session_len`
    /// patterns — the aliasing-free ideal a BIST signature dictionary is
    /// compared against.
    ///
    /// A signature read out after each session can flag the fault no
    /// earlier than this (the responses match until then) and may flag it
    /// later — or never — when aliasing cancels the difference inside every
    /// session.
    ///
    /// # Panics
    ///
    /// Panics if `session_len` is 0.
    pub fn first_failing_session(&self, index: usize, session_len: usize) -> Option<usize> {
        assert!(session_len >= 1, "a session must apply at least 1 pattern");
        self.first_failing_pattern(index)
            .map(|pattern| pattern / session_len)
    }

    /// Number of faults whose first detection is exactly `pattern`.
    pub fn detections_at(&self, pattern: usize) -> usize {
        self.first_pattern
            .iter()
            .filter(|p| **p == Some(pattern))
            .count()
    }

    /// Indices of faults never detected by the applied pattern set.
    pub fn undetected(&self) -> Vec<usize> {
        self.first_pattern
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::PpsfpSimulator;
    use crate::simulator::FaultSimulator;
    use crate::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn c17_dictionary() -> (FaultDictionary, usize) {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        (FaultDictionary::from_fault_list(&list), universe.len())
    }

    #[test]
    fn dictionary_covers_every_fault() {
        let (dictionary, universe_len) = c17_dictionary();
        assert_eq!(dictionary.len(), universe_len);
        assert!(!dictionary.is_empty());
        // Exhaustive patterns leave nothing undetected.
        assert!(dictionary.undetected().is_empty());
    }

    #[test]
    fn detections_per_pattern_sum_to_universe() {
        let (dictionary, universe_len) = c17_dictionary();
        let total: usize = (0..32).map(|p| dictionary.detections_at(p)).sum();
        assert_eq!(total, universe_len);
    }

    #[test]
    fn chip_fails_at_its_earliest_fault() {
        let (dictionary, _) = c17_dictionary();
        let first_a = dictionary.first_failing_pattern(0).expect("detected");
        let first_b = dictionary.first_failing_pattern(5).expect("detected");
        let chip_failure = dictionary
            .first_failure_of_chip(&[0, 5])
            .expect("chip fails");
        assert_eq!(chip_failure, first_a.min(first_b));
        // A fault-free chip never fails.
        assert_eq!(dictionary.first_failure_of_chip(&[]), None);
    }

    #[test]
    fn out_of_range_fault_index_reports_none() {
        let (dictionary, universe_len) = c17_dictionary();
        assert_eq!(dictionary.first_failing_pattern(universe_len + 10), None);
    }

    #[test]
    fn sessions_quantise_first_failing_patterns() {
        let (dictionary, universe_len) = c17_dictionary();
        for index in 0..universe_len {
            let pattern = dictionary.first_failing_pattern(index);
            assert_eq!(
                dictionary.first_failing_session(index, 8),
                pattern.map(|p| p / 8)
            );
            // One-pattern sessions are the stored-pattern observable.
            assert_eq!(dictionary.first_failing_session(index, 1), pattern);
        }
        assert_eq!(dictionary.first_failing_session(universe_len + 1, 8), None);
    }

    #[test]
    #[should_panic(expected = "at least 1 pattern")]
    fn zero_length_sessions_panic() {
        let (dictionary, _) = c17_dictionary();
        let _ = dictionary.first_failing_session(0, 0);
    }
}
