//! Multi-threaded, 64-pattern-parallel fault simulation.
//!
//! The production engine of the workspace: the (collapsed or full) fault
//! universe is sharded into contiguous index ranges, one per worker thread,
//! and every shard simulates its faults against 64-packed pattern words with
//! fault dropping, exactly like the single-threaded
//! [`PpsfpSimulator`](crate::ppsfp::PpsfpSimulator).  The good-machine
//! responses of every pattern block are computed once up front and shared
//! read-only across shards, so the per-shard work is pure fault injection.
//! Per-shard results are merged into one [`FaultList`] at the end.
//!
//! Because shards partition the *faults* (not the patterns), fault dropping
//! stays exact: each fault's patterns are always evaluated in application
//! order by a single thread, so the recorded first detection is identical to
//! the serial reference — the equivalence is enforced by
//! `tests/fault_sim_equivalence.rs`.
//!
//! Shards execute on a persistent [`ExecutionContext`] worker pool — the one
//! passed via [`ParallelSimulator::with_context`], or the process-wide
//! default pool ([`ExecutionContext::global`]) — so repeated runs (a test
//! suite builder's coverage loop, a lot sweep) reuse parked workers instead
//! of spawning threads per call.

use crate::inject::output_chunks_with_fault;
use crate::list::FaultList;
use crate::model::Fault;
use crate::simulator::FaultSimulator;
use crate::telemetry;
use crate::universe::FaultUniverse;
use lsiq_exec::{ExecutionContext, LaneWidth};
use lsiq_netlist::circuit::Circuit;
use lsiq_obs::Span;
use lsiq_sim::cache::{circuit_fingerprint, GoodMachineCache};
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::PackedBlock;
use lsiq_sim::pattern::PatternSet;

static GOOD_MACHINE: Span = Span::new("engine.parallel.good_machine");
static PROPAGATE: Span = Span::new("engine.parallel.propagate");

/// One precomputed lane-wide chunk: the packed primary-input chunks, the
/// good-machine output chunks, and the valid-slot mask.
struct Block<const L: usize> {
    inputs: Vec<PackedBlock<L>>,
    good_outputs: Vec<PackedBlock<L>>,
    valid: PackedBlock<L>,
}

/// A multi-threaded fault simulator sharding the fault universe across
/// worker threads, each simulating lane-wide packed pattern chunks.
#[derive(Debug)]
pub struct ParallelSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
    threads: usize,
    context: Option<&'c ExecutionContext>,
    lanes: LaneWidth,
    cache: Option<&'c GoodMachineCache>,
}

impl<'c> ParallelSimulator<'c> {
    /// Minimum number of faults per shard; below this, extra threads cost
    /// more in spawn overhead than they recover in parallelism.
    const MIN_FAULTS_PER_SHARD: usize = 64;

    /// Prepares a parallel fault simulator for `circuit` with fault dropping
    /// enabled and one worker per available hardware thread.
    pub fn new(circuit: &'c Circuit) -> Self {
        ParallelSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
            threads: 0,
            context: None,
            lanes: LaneWidth::Auto,
            cache: None,
        }
    }

    /// Selects the packed lane width ([`LaneWidth::Auto`] by default).
    /// Results are identical at every width.
    pub fn with_lanes(mut self, lanes: LaneWidth) -> Self {
        self.lanes = lanes;
        self
    }

    /// Shares a [`GoodMachineCache`] for the up-front good-machine pass (see
    /// [`PpsfpSimulator::with_cache`](crate::ppsfp::PpsfpSimulator::with_cache)).
    pub fn with_cache(mut self, cache: &'c GoodMachineCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Binds the simulator to a persistent worker pool; without this, runs
    /// use the process-wide default pool ([`ExecutionContext::global`]).
    /// Unless overridden by [`with_threads`](Self::with_threads), the shard
    /// count follows the context's worker count.
    pub fn with_context(mut self, context: &'c ExecutionContext) -> Self {
        self.context = Some(context);
        self
    }

    /// Controls fault dropping (see
    /// [`SerialSimulator::with_fault_dropping`](crate::serial::SerialSimulator::with_fault_dropping)).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Overrides the worker-thread count; `0` (the default) uses the
    /// available hardware parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker pool runs execute on: the bound context, or the
    /// process-wide default pool.
    fn execution_context(&self) -> &ExecutionContext {
        self.context.unwrap_or_else(|| ExecutionContext::global())
    }

    /// The worker-thread count a run would use for `fault_count` faults.
    /// Deliberately avoids touching [`ExecutionContext::global`] so that
    /// runs which fold back to a single inline shard never spawn the
    /// process-wide pool.
    fn shard_count(&self, fault_count: usize) -> usize {
        let requested = if self.threads > 0 {
            self.threads
        } else if let Some(context) = self.context {
            context.workers()
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let useful = fault_count.div_ceil(Self::MIN_FAULTS_PER_SHARD);
        requested.min(useful).max(1)
    }

    /// Packs every lane-wide chunk and computes its good-machine response —
    /// through the shared cache when one is bound.
    fn precompute_blocks<const L: usize>(&self, patterns: &PatternSet) -> Vec<Block<L>> {
        let circuit = self.compiled.circuit();
        let input_count = circuit.primary_inputs().len();
        let fingerprint = self.cache.map(|_| circuit_fingerprint(circuit));
        let mut blocks = Vec::with_capacity(patterns.chunk_count(L));
        for chunk in 0..patterns.chunk_count(L) {
            let (inputs, pattern_count) = patterns.pack_chunk::<L>(input_count, chunk);
            if pattern_count == 0 {
                break;
            }
            let good_outputs = match (self.cache, fingerprint) {
                (Some(cache), Some(fingerprint)) => {
                    let nodes = cache.node_chunks_keyed(
                        fingerprint,
                        &self.compiled,
                        &inputs,
                        pattern_count,
                    );
                    circuit
                        .primary_outputs()
                        .iter()
                        .map(|&out| nodes[out.index()])
                        .collect()
                }
                _ => self.compiled.output_chunks(&inputs),
            };
            blocks.push(Block {
                inputs,
                good_outputs,
                valid: PackedBlock::valid_mask(pattern_count),
            });
        }
        blocks
    }

    /// Simulates one contiguous shard of faults over all chunks, returning
    /// the first detecting pattern per fault (shard-local order).
    fn simulate_shard<const L: usize>(
        &self,
        faults: &[Fault],
        blocks: &[Block<L>],
    ) -> Vec<Option<usize>> {
        let _timer = PROPAGATE.start();
        let mut first_detection = vec![None; faults.len()];
        for (local, fault) in faults.iter().enumerate() {
            for (block_index, block) in blocks.iter().enumerate() {
                if first_detection[local].is_some() && self.drop_detected {
                    break;
                }
                let faulty = output_chunks_with_fault(&self.compiled, &block.inputs, fault);
                let mut detect = PackedBlock::<L>::ZERO;
                for (&good, &bad) in block.good_outputs.iter().zip(faulty.iter()) {
                    detect |= (good ^ bad) & block.valid;
                }
                if let Some(slot) = detect.first_set_slot() {
                    let pattern = block_index * PackedBlock::<L>::PATTERNS + slot;
                    // Chunks are scanned in application order, so the first
                    // hit is the earliest pattern; later chunks cannot
                    // improve it even when dropping is disabled.
                    if first_detection[local].is_none() {
                        first_detection[local] = Some(pattern);
                    }
                }
            }
        }
        first_detection
    }

    /// One lane-monomorphized run (see [`FaultSimulator::run`]).
    fn run_lanes<const L: usize>(
        &self,
        universe: &FaultUniverse,
        patterns: &PatternSet,
    ) -> FaultList {
        let mut list = FaultList::new(universe);
        if universe.is_empty() || patterns.is_empty() {
            return list;
        }
        telemetry::RUNS.incr();
        telemetry::FAULTS.add(universe.len() as u64);
        let blocks = {
            let _timer = GOOD_MACHINE.start();
            self.precompute_blocks::<L>(patterns)
        };
        telemetry::GOOD_EVALS.add(blocks.len() as u64);
        let faults = universe.faults();
        let shards = self.shard_count(faults.len());
        let chunk = faults.len().div_ceil(shards);

        let detections: Vec<Vec<Option<usize>>> = if shards == 1 {
            vec![self.simulate_shard(faults, &blocks)]
        } else {
            let shard_faults: Vec<&[Fault]> = faults.chunks(chunk).collect();
            self.execution_context()
                .scope_map(shard_faults, |shard| self.simulate_shard(shard, &blocks))
        };

        let mut drops = 0u64;
        for (shard, shard_detections) in detections.into_iter().enumerate() {
            let base = shard * chunk;
            for (local, detection) in shard_detections.into_iter().enumerate() {
                if let Some(pattern) = detection {
                    list.mark_detected(base + local, pattern);
                    if self.drop_detected {
                        drops += 1;
                    }
                }
            }
        }
        telemetry::DROPS.add(drops);
        list
    }
}

impl FaultSimulator for ParallelSimulator<'_> {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        match self.lanes.resolve(patterns.len()) {
            1 => self.run_lanes::<1>(universe, patterns),
            4 => self.run_lanes::<4>(universe, patterns),
            _ => self.run_lanes::<8>(universe, patterns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    fn exhaustive_patterns(width: usize) -> PatternSet {
        (0..1u64 << width)
            .map(|v| Pattern::from_integer(v, width))
            .collect()
    }

    #[test]
    fn matches_serial_simulator_on_c17() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns = exhaustive_patterns(5);
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let parallel = ParallelSimulator::new(&circuit).run(&universe, &patterns);
        for index in 0..universe.len() {
            assert_eq!(
                serial.state(index).first_pattern(),
                parallel.state(index).first_pattern(),
                "fault {}",
                universe.get(index).expect("valid").describe(&circuit)
            );
        }
    }

    #[test]
    fn explicit_thread_counts_agree_with_each_other() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 12,
            gates: 150,
            seed: 11,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = exhaustive_patterns(7);
        let single = ParallelSimulator::new(&circuit)
            .with_threads(1)
            .run(&universe, &patterns);
        for threads in [2, 3, 8] {
            let multi = ParallelSimulator::new(&circuit)
                .with_threads(threads)
                .run(&universe, &patterns);
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn explicit_context_matches_the_global_pool() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 10,
            gates: 120,
            seed: 23,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = exhaustive_patterns(6);
        let reference = ParallelSimulator::new(&circuit).run(&universe, &patterns);
        for workers in [1, 2, 6] {
            let context = ExecutionContext::new(workers);
            // Two runs on one context: the pool is reused, not respawned.
            for _ in 0..2 {
                let bound = ParallelSimulator::new(&circuit)
                    .with_context(&context)
                    .run(&universe, &patterns);
                assert_eq!(reference, bound, "workers = {workers}");
            }
        }
    }

    #[test]
    fn lane_widths_and_cache_commute_with_sharding() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 11,
            gates: 130,
            seed: 37,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = exhaustive_patterns(9);
        let reference = ParallelSimulator::new(&circuit)
            .with_threads(1)
            .run(&universe, &patterns);
        let cache = GoodMachineCache::new();
        for lanes in LaneWidth::EXPLICIT {
            for threads in [1, 3] {
                let list = ParallelSimulator::new(&circuit)
                    .with_lanes(lanes)
                    .with_threads(threads)
                    .with_cache(&cache)
                    .run(&universe, &patterns);
                assert_eq!(reference, list, "lanes = {lanes}, threads = {threads}");
            }
        }
        // Each lane width misses once per chunk, then the re-run at the same
        // width hits.
        assert!(cache.hits() > 0 && cache.misses() > 0);
    }

    #[test]
    fn fault_dropping_does_not_change_results() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns = exhaustive_patterns(10);
        let dropped = ParallelSimulator::new(&circuit).run(&universe, &patterns);
        let undropped = ParallelSimulator::new(&circuit)
            .with_fault_dropping(false)
            .run(&universe, &patterns);
        assert_eq!(dropped, undropped);
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let no_patterns = ParallelSimulator::new(&circuit).run(&universe, &PatternSet::new());
        assert_eq!(no_patterns.detected_count(), 0);
        let empty_universe = FaultUniverse::from_faults(Vec::new());
        let patterns = exhaustive_patterns(5);
        let list = ParallelSimulator::new(&circuit).run(&empty_universe, &patterns);
        assert!(list.is_empty());
    }

    #[test]
    fn shard_count_scales_down_for_tiny_universes() {
        let circuit = library::c17();
        let simulator = ParallelSimulator::new(&circuit).with_threads(16);
        // 46 faults fit in a single minimum-size shard.
        assert_eq!(simulator.shard_count(46), 1);
        assert_eq!(simulator.shard_count(0), 1);
        assert_eq!(simulator.shard_count(64 * 16), 16);
        assert_eq!(simulator.shard_count(65), 2);
    }
}
