//! Simulation-class machinery shared by the deductive and incremental
//! engines.
//!
//! Both engines optionally partition the requested fault universe into
//! structural equivalence classes ([`collapse_equivalence`]) and simulate
//! one representative per class, crediting its detections to every member.
//! Equivalent faults are detected by exactly the same patterns, so the
//! reported results are identical to a full-universe run — the collapsed
//! pass just carries fewer faults.  The grouping logic (and the
//! circuit-only state it caches) lives here so the two engines cannot
//! drift apart.

use crate::collapse::{collapse_equivalence, CollapseResult};
use crate::universe::{FaultUniverse, SiteTable};
use lsiq_netlist::circuit::Circuit;
use std::cell::OnceCell;

/// The circuit-only collapsing state a simulator reuses across `run` calls
/// (suite builders re-simulate a growing pattern set many times; the
/// equivalence classes never change).
#[derive(Debug)]
pub(crate) struct CollapseContext {
    equivalence: CollapseResult,
    full: FaultUniverse,
    table: SiteTable,
}

impl CollapseContext {
    pub(crate) fn new(circuit: &Circuit) -> CollapseContext {
        let full = FaultUniverse::full(circuit);
        CollapseContext {
            equivalence: collapse_equivalence(circuit),
            table: SiteTable::new(circuit, &full),
            full,
        }
    }
}

/// Partitions the universe's fault indices into groups that provably share
/// their set of detecting patterns; each group is simulated through its
/// first member.
///
/// With `collapse` disabled every fault is its own singleton class.  The
/// `cache` cell is lazily filled with the circuit's [`CollapseContext`] on
/// the first collapsing call and reused afterwards, so disabling collapsing
/// never pays for it and engines that `run` repeatedly pay for it once.
pub(crate) fn simulation_classes(
    circuit: &Circuit,
    cache: &OnceCell<CollapseContext>,
    collapse: bool,
    universe: &FaultUniverse,
) -> SimulationClasses {
    assert!(
        universe.len() <= u32::MAX as usize,
        "fault universe exceeds u32 index space"
    );
    if !collapse {
        return SimulationClasses::identity(universe.len());
    }
    let context = cache.get_or_init(|| CollapseContext::new(circuit));
    // The common case is simulating exactly the full universe, where the
    // fault → full-position mapping is the identity; otherwise resolve
    // positions through the precomputed O(1) site table.
    let identical = universe.faults() == context.full.faults();
    let mut class_of: Vec<u32> = Vec::with_capacity(universe.len());
    let mut class_of_representative: Vec<Option<u32>> =
        vec![None; context.equivalence.collapsed.len()];
    let mut class_count = 0u32;
    for (index, fault) in universe.iter().enumerate() {
        let full_position = if identical {
            Some(index)
        } else {
            context.table.position(fault).map(|p| p as usize)
        };
        let class = match full_position.and_then(|p| context.equivalence.representative_of[p]) {
            Some(representative) => {
                *class_of_representative[representative].get_or_insert_with(|| {
                    let fresh = class_count;
                    class_count += 1;
                    fresh
                })
            }
            // A fault outside the full structural universe cannot be
            // collapsed against it; simulate it individually.
            None => {
                let fresh = class_count;
                class_count += 1;
                fresh
            }
        };
        class_of.push(class);
    }
    SimulationClasses::from_class_of(&class_of, class_count as usize)
}

/// The universe fault indices of a run grouped into simulation classes, in a
/// flat CSR layout (no per-class allocation).  Members of one class are in
/// ascending universe order; the first member is the propagated
/// representative.
pub(crate) struct SimulationClasses {
    members: Vec<u32>,
    offsets: Vec<u32>,
}

impl SimulationClasses {
    /// One singleton class per universe index (collapsing disabled).
    pub(crate) fn identity(len: usize) -> SimulationClasses {
        SimulationClasses {
            members: (0..len as u32).collect(),
            offsets: (0..=len as u32).collect(),
        }
    }

    /// Builds the CSR layout from a per-index class assignment.
    fn from_class_of(class_of: &[u32], class_count: usize) -> SimulationClasses {
        let mut offsets = vec![0u32; class_count + 1];
        for &class in class_of {
            offsets[class as usize + 1] += 1;
        }
        for class in 0..class_count {
            offsets[class + 1] += offsets[class];
        }
        let mut cursor: Vec<u32> = offsets[..class_count].to_vec();
        let mut members = vec![0u32; class_of.len()];
        for (index, &class) in class_of.iter().enumerate() {
            members[cursor[class as usize] as usize] = index as u32;
            cursor[class as usize] += 1;
        }
        SimulationClasses { members, offsets }
    }

    /// Number of classes.
    pub(crate) fn count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The universe indices belonging to `class`.
    pub(crate) fn members_of(&self, class: u32) -> &[u32] {
        &self.members
            [self.offsets[class as usize] as usize..self.offsets[class as usize + 1] as usize]
    }

    /// The universe index whose fault is propagated for `class`.
    pub(crate) fn representative(&self, class: u32) -> u32 {
        self.members[self.offsets[class as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    #[test]
    fn identity_classes_are_singletons() {
        let classes = SimulationClasses::identity(4);
        assert_eq!(classes.count(), 4);
        for class in 0..4u32 {
            assert_eq!(classes.members_of(class), &[class]);
            assert_eq!(classes.representative(class), class);
        }
    }

    #[test]
    fn full_universe_classes_cover_every_fault_once() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let cache = OnceCell::new();
        let classes = simulation_classes(&circuit, &cache, true, &universe);
        assert!(classes.count() < universe.len(), "c17 must collapse");
        let mut seen = vec![false; universe.len()];
        for class in 0..classes.count() as u32 {
            let members = classes.members_of(class);
            assert!(!members.is_empty());
            assert_eq!(classes.representative(class), members[0]);
            for &member in members {
                assert!(!seen[member as usize], "fault {member} in two classes");
                seen[member as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|covered| covered));
        // The cache is populated exactly once.
        assert!(cache.get().is_some());
    }
}
