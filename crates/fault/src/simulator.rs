//! The common interface of every fault-simulation engine.
//!
//! Five engines implement [`FaultSimulator`]:
//!
//! * [`SerialSimulator`] — one fault, one
//!   pattern at a time; the reference implementation,
//! * [`PpsfpSimulator`] — 64 patterns packed
//!   into machine words, one fault at a time,
//! * [`DeductiveSimulator`] — all
//!   faults of a pattern at once via signal fault lists,
//! * [`ParallelSimulator`] — the default
//!   production engine: the fault universe sharded across threads, each shard
//!   simulating 64-packed pattern words with fault dropping,
//! * [`IncrementalSimulator`] — event-driven cone propagation: the good
//!   machine once per 64-pattern block, then per fault only the disturbed
//!   fanout cone; the large-circuit engine.
//!
//! All engines report *identical* detection results (the first detecting
//! pattern of every fault, in application order); they differ only in speed.
//! The cross-checks live in `tests/fault_sim_equivalence.rs` and the seeded
//! differential property test `tests/engine_differential.rs`.
//!
//! # Choosing an engine
//!
//! Pick by workload shape; [`EngineKind`] names the five choices for
//! configuration knobs (`TestSuiteBuilder::engine`, the `LSIQ_ENGINE`
//! environment variable of the bench binaries).  The full guide with data
//! structures, complexity and a decision table is `docs/ENGINES.md`; in
//! brief:
//!
//! * **Serial** re-simulates the whole circuit for every `(pattern, fault)`
//!   pair — `O(patterns × faults × gates)`.  It exists to be obviously
//!   correct; use it only as a cross-check oracle on small circuits.
//! * **PPSFP** cuts the pattern dimension by 64 with packed words.  Strong
//!   when patterns are plentiful and the fault count is moderate, and the
//!   per-run setup is the cheapest of the fast engines, so it also wins on
//!   very small circuits.
//! * **Deductive** removes the fault dimension entirely: one topological
//!   pass per pattern computes every signal's *fault list* (the set of
//!   faults that would complement it).  Lists are sorted interned `u32`
//!   slices in a bump [`ListArena`](crate::list::ListArena) — merges are
//!   linear scans, handles are shared instead of copied, and all buffers
//!   are reused across patterns — and by default only one representative
//!   per structural equivalence class is propagated.  This makes it the
//!   fastest single-threaded engine by roughly an order of magnitude on
//!   LSI-scale circuits and the natural *oracle* for differential tests:
//!   its cost is independent of the fault-universe size regime that slows
//!   the fault-injection engines down.
//! * **Parallel** shards the fault universe across hardware threads on top
//!   of the PPSFP core.  Best wall-clock on large universes with many
//!   patterns (the production-line Monte-Carlo); pointless for tiny runs
//!   where thread spawn dominates.
//! * **Incremental** keeps the good machine per 64-pattern block and
//!   re-evaluates only each fault's disturbed fanout cone, level by level,
//!   until the event frontier dies.  Per-fault cost scales with the cone,
//!   not the circuit, so it pulls ahead of deductive as circuits grow past
//!   tens of thousands of gates (ISCAS scale and beyond).
//!
//! When in doubt: `Parallel` for throughput, `Deductive` for verification
//! work and single-core latency on small-to-medium circuits, `Incremental`
//! for very large circuits, `Serial` for debugging a disagreement.

use crate::coverage::CoverageCurve;
use crate::deductive::DeductiveSimulator;
use crate::incremental::IncrementalSimulator;
use crate::list::FaultList;
use crate::parallel::ParallelSimulator;
use crate::ppsfp::PpsfpSimulator;
use crate::serial::SerialSimulator;
use crate::universe::FaultUniverse;
use lsiq_exec::{ExecutionContext, LaneWidth};
use lsiq_netlist::circuit::Circuit;
use lsiq_sim::cache::GoodMachineCache;
use lsiq_sim::pattern::PatternSet;

/// The engine-selection knob, re-exported from the configuration crate so a
/// typed `lsiq_exec::RunConfig` can carry it without depending on the
/// engines themselves.  Instantiating a kind is the [`BuildEngine`]
/// extension trait below.
pub use lsiq_exec::EngineKind;

/// A fault-simulation engine: evaluates an ordered pattern set against a
/// fault universe and reports, per fault, the first detecting pattern.
pub trait FaultSimulator {
    /// Short engine name for benchmarks and reports.
    fn name(&self) -> &'static str;

    /// Runs the pattern set against every fault of `universe` and returns the
    /// per-fault detection states.
    ///
    /// Patterns are evaluated in application order, so
    /// [`DetectionState::first_pattern`](crate::list::DetectionState::first_pattern)
    /// is the index of the earliest detecting pattern — the quantity the
    /// paper's "chip fails at its first failing pattern" procedure needs.
    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList;

    /// Runs the simulation and folds the result into a cumulative
    /// fault-coverage curve (the paper's `f` as a function of the number of
    /// applied patterns).
    fn coverage_curve(&self, universe: &FaultUniverse, patterns: &PatternSet) -> CoverageCurve {
        let list = self.run(universe, patterns);
        CoverageCurve::from_fault_list(&list, patterns.len())
    }
}

/// Instantiation of fault-simulation engines from [`EngineKind`] values.
///
/// `EngineKind` itself lives in `lsiq_exec` (pure configuration data, so a
/// `RunConfig` can carry it without a dependency cycle); this extension
/// trait supplies the constructors and is implemented for `EngineKind`
/// alone.  Import it alongside the kind:
///
/// ```
/// use lsiq_fault::simulator::{BuildEngine, EngineKind};
/// use lsiq_netlist::library;
///
/// let circuit = library::c17();
/// let engine = EngineKind::Deductive.build(&circuit);
/// assert_eq!(engine.name(), "deductive");
/// ```
/// Everything an engine build can be configured with, in one bundle.
///
/// Each engine applies the options it understands and ignores the rest:
/// the serial and deductive engines are word-oriented and single-threaded,
/// so only `fault_dropping` reaches them; PPSFP adds `lanes` and `cache`;
/// the parallel and incremental engines honour all four fields.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions<'c> {
    /// Persistent worker pool for the sharding engines (`None` uses the
    /// process-wide default pool).
    pub context: Option<&'c ExecutionContext>,
    /// Packed lane width for the chunked engines.
    pub lanes: LaneWidth,
    /// Shared good-machine cache for the chunked engines.
    pub cache: Option<&'c GoodMachineCache>,
    /// Whether detected faults are dropped from further simulation.
    pub fault_dropping: bool,
}

impl Default for EngineOptions<'_> {
    fn default() -> Self {
        EngineOptions {
            context: None,
            lanes: LaneWidth::Auto,
            cache: None,
            fault_dropping: true,
        }
    }
}

pub trait BuildEngine {
    /// Instantiates the engine for `circuit` with its default settings
    /// (fault dropping on; collapsing on for the deductive engine).
    fn build<'c>(self, circuit: &'c Circuit) -> Box<dyn FaultSimulator + 'c>;

    /// Instantiates the engine with an explicit fault-dropping mode.
    fn build_with_fault_dropping<'c>(
        self,
        circuit: &'c Circuit,
        fault_dropping: bool,
    ) -> Box<dyn FaultSimulator + 'c>;

    /// Instantiates the engine bound to a persistent [`ExecutionContext`]:
    /// the parallel engine shards its fault universe (and the incremental
    /// engine its simulation classes) across the context's pooled workers
    /// instead of the process-wide default pool, and the single-threaded
    /// engines simply run on the calling thread (which may itself be one of
    /// the context's workers).
    fn build_in<'c>(
        self,
        context: &'c ExecutionContext,
        circuit: &'c Circuit,
    ) -> Box<dyn FaultSimulator + 'c>;

    /// Instantiates the engine with a full [`EngineOptions`] bundle.  The
    /// other constructors are shorthands for this one; engines apply the
    /// options they understand and ignore the rest.
    fn build_configured<'c>(
        self,
        circuit: &'c Circuit,
        options: &EngineOptions<'c>,
    ) -> Box<dyn FaultSimulator + 'c>;
}

impl BuildEngine for EngineKind {
    fn build<'c>(self, circuit: &'c Circuit) -> Box<dyn FaultSimulator + 'c> {
        self.build_configured(circuit, &EngineOptions::default())
    }

    fn build_with_fault_dropping<'c>(
        self,
        circuit: &'c Circuit,
        fault_dropping: bool,
    ) -> Box<dyn FaultSimulator + 'c> {
        self.build_configured(
            circuit,
            &EngineOptions {
                fault_dropping,
                ..EngineOptions::default()
            },
        )
    }

    fn build_in<'c>(
        self,
        context: &'c ExecutionContext,
        circuit: &'c Circuit,
    ) -> Box<dyn FaultSimulator + 'c> {
        self.build_configured(
            circuit,
            &EngineOptions {
                context: Some(context),
                ..EngineOptions::default()
            },
        )
    }

    fn build_configured<'c>(
        self,
        circuit: &'c Circuit,
        options: &EngineOptions<'c>,
    ) -> Box<dyn FaultSimulator + 'c> {
        match self {
            EngineKind::Serial => {
                Box::new(SerialSimulator::new(circuit).with_fault_dropping(options.fault_dropping))
            }
            EngineKind::Ppsfp => {
                let mut engine = PpsfpSimulator::new(circuit)
                    .with_fault_dropping(options.fault_dropping)
                    .with_lanes(options.lanes);
                if let Some(cache) = options.cache {
                    engine = engine.with_cache(cache);
                }
                Box::new(engine)
            }
            EngineKind::Deductive => Box::new(
                DeductiveSimulator::new(circuit).with_fault_dropping(options.fault_dropping),
            ),
            EngineKind::Parallel => {
                let mut engine = ParallelSimulator::new(circuit)
                    .with_fault_dropping(options.fault_dropping)
                    .with_lanes(options.lanes);
                if let Some(context) = options.context {
                    engine = engine.with_context(context);
                }
                if let Some(cache) = options.cache {
                    engine = engine.with_cache(cache);
                }
                Box::new(engine)
            }
            EngineKind::Incremental => {
                let mut engine = IncrementalSimulator::new(circuit)
                    .with_fault_dropping(options.fault_dropping)
                    .with_lanes(options.lanes);
                if let Some(context) = options.context {
                    engine = engine.with_context(context);
                }
                if let Some(cache) = options.cache {
                    engine = engine.with_cache(cache);
                }
                Box::new(engine)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelSimulator;
    use crate::ppsfp::PpsfpSimulator;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    #[test]
    fn engines_are_usable_through_the_trait_object() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit);
        let ppsfp = PpsfpSimulator::new(&circuit);
        let parallel = ParallelSimulator::new(&circuit);
        let engines: Vec<&dyn FaultSimulator> = vec![&serial, &ppsfp, &parallel];
        for engine in engines {
            let list = engine.run(&universe, &patterns);
            assert_eq!(list.detected_count(), universe.len(), "{}", engine.name());
        }
    }

    #[test]
    fn default_coverage_curve_matches_manual_construction() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 5)).collect();
        let engine = PpsfpSimulator::new(&circuit);
        let curve = engine.coverage_curve(&universe, &patterns);
        let manual =
            CoverageCurve::from_fault_list(&engine.run(&universe, &patterns), patterns.len());
        assert_eq!(curve, manual);
        assert_eq!(curve.pattern_count(), 8);
    }

    #[test]
    fn build_in_runs_every_engine_on_an_explicit_context() {
        let context = lsiq_exec::ExecutionContext::new(2);
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let reference = EngineKind::Serial.build(&circuit).run(&universe, &patterns);
        for kind in EngineKind::ALL {
            let engine = kind.build_in(&context, &circuit);
            assert_eq!(engine.name(), kind.name());
            assert_eq!(engine.run(&universe, &patterns), reference, "{kind}");
        }
    }

    #[test]
    fn engine_kind_builds_every_engine() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        for kind in EngineKind::ALL {
            let engine = kind.build(&circuit);
            assert_eq!(engine.name(), kind.name());
            assert_eq!(
                engine.run(&universe, &patterns).detected_count(),
                universe.len()
            );
            let undropped = kind.build_with_fault_dropping(&circuit, false);
            assert_eq!(
                undropped.run(&universe, &patterns).detected_count(),
                universe.len()
            );
        }
    }

    #[test]
    fn configured_builds_match_the_defaults_for_every_engine() {
        let context = lsiq_exec::ExecutionContext::new(2);
        let cache = GoodMachineCache::new();
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..200).map(|v| Pattern::from_integer(v, 10)).collect();
        let reference = EngineKind::Serial.build(&circuit).run(&universe, &patterns);
        for kind in EngineKind::ALL {
            for lanes in [LaneWidth::Auto, LaneWidth::X1, LaneWidth::X8] {
                let engine = kind.build_configured(
                    &circuit,
                    &EngineOptions {
                        context: Some(&context),
                        lanes,
                        cache: Some(&cache),
                        fault_dropping: true,
                    },
                );
                assert_eq!(engine.name(), kind.name());
                assert_eq!(
                    engine.run(&universe, &patterns),
                    reference,
                    "{kind}/{lanes}"
                );
            }
        }
        // The chunked engines routed their good machines through the cache.
        assert!(cache.misses() > 0);
        assert!(cache.hits() > 0);
    }

    #[test]
    fn engine_kind_parses_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().to_uppercase().parse::<EngineKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            EngineKind::from_name("  Deductive "),
            Some(EngineKind::Deductive)
        );
        assert!(EngineKind::from_name("concurrent").is_none());
        assert!("concurrent".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Parallel);
    }
}
