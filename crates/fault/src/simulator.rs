//! The common interface of every fault-simulation engine.
//!
//! Four engines implement [`FaultSimulator`]:
//!
//! * [`SerialSimulator`](crate::serial::SerialSimulator) — one fault, one
//!   pattern at a time; the reference implementation,
//! * [`PpsfpSimulator`](crate::ppsfp::PpsfpSimulator) — 64 patterns packed
//!   into machine words, one fault at a time,
//! * [`DeductiveSimulator`](crate::deductive::DeductiveSimulator) — all
//!   faults of a pattern at once via signal fault lists,
//! * [`ParallelSimulator`](crate::parallel::ParallelSimulator) — the default
//!   production engine: the fault universe sharded across threads, each shard
//!   simulating 64-packed pattern words with fault dropping.
//!
//! All engines report *identical* detection results (the first detecting
//! pattern of every fault, in application order); they differ only in speed.
//! The cross-checks live in `tests/fault_sim_equivalence.rs`.

use crate::coverage::CoverageCurve;
use crate::list::FaultList;
use crate::universe::FaultUniverse;
use lsiq_sim::pattern::PatternSet;

/// A fault-simulation engine: evaluates an ordered pattern set against a
/// fault universe and reports, per fault, the first detecting pattern.
pub trait FaultSimulator {
    /// Short engine name for benchmarks and reports.
    fn name(&self) -> &'static str;

    /// Runs the pattern set against every fault of `universe` and returns the
    /// per-fault detection states.
    ///
    /// Patterns are evaluated in application order, so
    /// [`DetectionState::first_pattern`](crate::list::DetectionState::first_pattern)
    /// is the index of the earliest detecting pattern — the quantity the
    /// paper's "chip fails at its first failing pattern" procedure needs.
    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList;

    /// Runs the simulation and folds the result into a cumulative
    /// fault-coverage curve (the paper's `f` as a function of the number of
    /// applied patterns).
    fn coverage_curve(&self, universe: &FaultUniverse, patterns: &PatternSet) -> CoverageCurve {
        let list = self.run(universe, patterns);
        CoverageCurve::from_fault_list(&list, patterns.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelSimulator;
    use crate::ppsfp::PpsfpSimulator;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    #[test]
    fn engines_are_usable_through_the_trait_object() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit);
        let ppsfp = PpsfpSimulator::new(&circuit);
        let parallel = ParallelSimulator::new(&circuit);
        let engines: Vec<&dyn FaultSimulator> = vec![&serial, &ppsfp, &parallel];
        for engine in engines {
            let list = engine.run(&universe, &patterns);
            assert_eq!(list.detected_count(), universe.len(), "{}", engine.name());
        }
    }

    #[test]
    fn default_coverage_curve_matches_manual_construction() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 5)).collect();
        let engine = PpsfpSimulator::new(&circuit);
        let curve = engine.coverage_curve(&universe, &patterns);
        let manual =
            CoverageCurve::from_fault_list(&engine.run(&universe, &patterns), patterns.len());
        assert_eq!(curve, manual);
        assert_eq!(curve.pattern_count(), 8);
    }
}
