//! The common interface of every fault-simulation engine.
//!
//! Four engines implement [`FaultSimulator`]:
//!
//! * [`SerialSimulator`] — one fault, one
//!   pattern at a time; the reference implementation,
//! * [`PpsfpSimulator`] — 64 patterns packed
//!   into machine words, one fault at a time,
//! * [`DeductiveSimulator`] — all
//!   faults of a pattern at once via signal fault lists,
//! * [`ParallelSimulator`] — the default
//!   production engine: the fault universe sharded across threads, each shard
//!   simulating 64-packed pattern words with fault dropping.
//!
//! All engines report *identical* detection results (the first detecting
//! pattern of every fault, in application order); they differ only in speed.
//! The cross-checks live in `tests/fault_sim_equivalence.rs` and the seeded
//! differential property test `tests/engine_differential.rs`.
//!
//! # Choosing an engine
//!
//! Pick by workload shape; [`EngineKind`] names the four choices for
//! configuration knobs (`TestSuiteBuilder::engine`, the `LSIQ_ENGINE`
//! environment variable of the bench binaries):
//!
//! * **Serial** re-simulates the whole circuit for every `(pattern, fault)`
//!   pair — `O(patterns × faults × gates)`.  It exists to be obviously
//!   correct; use it only as a cross-check oracle on small circuits.
//! * **PPSFP** cuts the pattern dimension by 64 with packed words.  Strong
//!   when patterns are plentiful and the fault count is moderate, and the
//!   per-run setup is the cheapest of the fast engines, so it also wins on
//!   very small circuits.
//! * **Deductive** removes the fault dimension entirely: one topological
//!   pass per pattern computes every signal's *fault list* (the set of
//!   faults that would complement it).  Lists are sorted interned `u32`
//!   slices in a bump [`ListArena`](crate::list::ListArena) — merges are
//!   linear scans, handles are shared instead of copied, and all buffers
//!   are reused across patterns — and by default only one representative
//!   per structural equivalence class is propagated.  This makes it the
//!   fastest single-threaded engine by roughly an order of magnitude on
//!   LSI-scale circuits and the natural *oracle* for differential tests:
//!   its cost is independent of the fault-universe size regime that slows
//!   the fault-injection engines down.
//! * **Parallel** shards the fault universe across hardware threads on top
//!   of the PPSFP core.  Best wall-clock on large universes with many
//!   patterns (the production-line Monte-Carlo); pointless for tiny runs
//!   where thread spawn dominates.
//!
//! When in doubt: `Parallel` for throughput, `Deductive` for verification
//! work and single-core latency, `Serial` for debugging a disagreement.

use crate::coverage::CoverageCurve;
use crate::deductive::DeductiveSimulator;
use crate::list::FaultList;
use crate::parallel::ParallelSimulator;
use crate::ppsfp::PpsfpSimulator;
use crate::serial::SerialSimulator;
use crate::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_sim::pattern::PatternSet;
use std::fmt;
use std::str::FromStr;

/// A fault-simulation engine: evaluates an ordered pattern set against a
/// fault universe and reports, per fault, the first detecting pattern.
pub trait FaultSimulator {
    /// Short engine name for benchmarks and reports.
    fn name(&self) -> &'static str;

    /// Runs the pattern set against every fault of `universe` and returns the
    /// per-fault detection states.
    ///
    /// Patterns are evaluated in application order, so
    /// [`DetectionState::first_pattern`](crate::list::DetectionState::first_pattern)
    /// is the index of the earliest detecting pattern — the quantity the
    /// paper's "chip fails at its first failing pattern" procedure needs.
    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList;

    /// Runs the simulation and folds the result into a cumulative
    /// fault-coverage curve (the paper's `f` as a function of the number of
    /// applied patterns).
    fn coverage_curve(&self, universe: &FaultUniverse, patterns: &PatternSet) -> CoverageCurve {
        let list = self.run(universe, patterns);
        CoverageCurve::from_fault_list(&list, patterns.len())
    }
}

/// Names one of the four fault-simulation engines, for configuration
/// surfaces that select an engine at run time (test-suite builders, bench
/// binaries, differential harnesses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// One `(pattern, fault)` pair at a time — the reference implementation.
    Serial,
    /// 64 packed patterns, one fault at a time.
    Ppsfp,
    /// All faults of one pattern at a time via arena-backed fault lists.
    Deductive,
    /// Fault-sharded multi-threaded PPSFP — the production default.
    #[default]
    Parallel,
}

impl EngineKind {
    /// Every engine, in cross-check order (reference first).
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Serial,
        EngineKind::Ppsfp,
        EngineKind::Deductive,
        EngineKind::Parallel,
    ];

    /// The engine's short name (matches [`FaultSimulator::name`]).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Serial => "serial",
            EngineKind::Ppsfp => "ppsfp",
            EngineKind::Deductive => "deductive",
            EngineKind::Parallel => "parallel",
        }
    }

    /// Parses an engine name (case-insensitive).
    pub fn from_name(name: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|kind| kind.name().eq_ignore_ascii_case(name.trim()))
    }

    /// Instantiates the engine for `circuit` with its default settings
    /// (fault dropping on; collapsing on for the deductive engine).
    pub fn build<'c>(self, circuit: &'c Circuit) -> Box<dyn FaultSimulator + 'c> {
        self.build_with_fault_dropping(circuit, true)
    }

    /// Instantiates the engine with an explicit fault-dropping mode.
    pub fn build_with_fault_dropping<'c>(
        self,
        circuit: &'c Circuit,
        fault_dropping: bool,
    ) -> Box<dyn FaultSimulator + 'c> {
        match self {
            EngineKind::Serial => {
                Box::new(SerialSimulator::new(circuit).with_fault_dropping(fault_dropping))
            }
            EngineKind::Ppsfp => {
                Box::new(PpsfpSimulator::new(circuit).with_fault_dropping(fault_dropping))
            }
            EngineKind::Deductive => {
                Box::new(DeductiveSimulator::new(circuit).with_fault_dropping(fault_dropping))
            }
            EngineKind::Parallel => {
                Box::new(ParallelSimulator::new(circuit).with_fault_dropping(fault_dropping))
            }
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::from_name(s).ok_or_else(|| {
            format!("unknown fault-simulation engine {s:?} (expected serial, ppsfp, deductive or parallel)")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelSimulator;
    use crate::ppsfp::PpsfpSimulator;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    #[test]
    fn engines_are_usable_through_the_trait_object() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit);
        let ppsfp = PpsfpSimulator::new(&circuit);
        let parallel = ParallelSimulator::new(&circuit);
        let engines: Vec<&dyn FaultSimulator> = vec![&serial, &ppsfp, &parallel];
        for engine in engines {
            let list = engine.run(&universe, &patterns);
            assert_eq!(list.detected_count(), universe.len(), "{}", engine.name());
        }
    }

    #[test]
    fn default_coverage_curve_matches_manual_construction() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 5)).collect();
        let engine = PpsfpSimulator::new(&circuit);
        let curve = engine.coverage_curve(&universe, &patterns);
        let manual =
            CoverageCurve::from_fault_list(&engine.run(&universe, &patterns), patterns.len());
        assert_eq!(curve, manual);
        assert_eq!(curve.pattern_count(), 8);
    }

    #[test]
    fn engine_kind_builds_every_engine() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        for kind in EngineKind::ALL {
            let engine = kind.build(&circuit);
            assert_eq!(engine.name(), kind.name());
            assert_eq!(
                engine.run(&universe, &patterns).detected_count(),
                universe.len()
            );
            let undropped = kind.build_with_fault_dropping(&circuit, false);
            assert_eq!(
                undropped.run(&universe, &patterns).detected_count(),
                universe.len()
            );
        }
    }

    #[test]
    fn engine_kind_parses_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().to_uppercase().parse::<EngineKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            EngineKind::from_name("  Deductive "),
            Some(EngineKind::Deductive)
        );
        assert!(EngineKind::from_name("concurrent").is_none());
        assert!("concurrent".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Parallel);
    }
}
