//! Fault-injected circuit evaluation.
//!
//! These functions mirror the good-machine passes of
//! [`CompiledCircuit`] but force the
//! faulty line to its stuck value during evaluation.  They are shared by the
//! serial and parallel-pattern fault simulators.

use crate::model::{Fault, FaultSite};
use lsiq_netlist::GateKind;
use lsiq_sim::eval::{eval_bool, eval_chunk, eval_packed};
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::PackedBlock;

/// Scalar simulation of one pattern with `fault` injected; returns the value
/// of every gate indexed by gate id.
///
/// `good_inputs` must be the primary-input values in declaration order (as
/// produced by applying the pattern positionally).
pub fn node_values_with_fault(
    compiled: &CompiledCircuit<'_>,
    good_inputs: &[bool],
    fault: &Fault,
) -> Vec<bool> {
    let circuit = compiled.circuit();
    let mut values = vec![false; circuit.gate_count()];
    for (position, &input) in circuit.primary_inputs().iter().enumerate() {
        values[input.index()] = good_inputs.get(position).copied().unwrap_or(false);
    }
    // An output fault on a primary input overrides its applied value.
    if let FaultSite::Output(gate) = fault.site {
        if circuit.gate(gate).kind() == GateKind::Input {
            values[gate.index()] = fault.stuck.as_bool();
        }
    }
    let mut fanin_values = Vec::new();
    for &id in compiled.order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        fanin_values.clear();
        for (pin, &driver) in gate.fanin().iter().enumerate() {
            let mut value = values[driver.index()];
            if fault.site == (FaultSite::InputPin { gate: id, pin }) {
                value = fault.stuck.as_bool();
            }
            fanin_values.push(value);
        }
        let mut output = eval_bool(gate.kind(), &fanin_values);
        if fault.site == FaultSite::Output(id) {
            output = fault.stuck.as_bool();
        }
        values[id.index()] = output;
    }
    values
}

/// Scalar primary-output response with `fault` injected.
pub fn outputs_with_fault(
    compiled: &CompiledCircuit<'_>,
    good_inputs: &[bool],
    fault: &Fault,
) -> Vec<bool> {
    let values = node_values_with_fault(compiled, good_inputs, fault);
    compiled
        .circuit()
        .primary_outputs()
        .iter()
        .map(|&out| values[out.index()])
        .collect()
}

/// 64-pattern bit-parallel simulation with `fault` injected; returns one word
/// per gate indexed by gate id.
pub fn node_words_with_fault(
    compiled: &CompiledCircuit<'_>,
    input_words: &[u64],
    fault: &Fault,
) -> Vec<u64> {
    let circuit = compiled.circuit();
    let mut words = vec![0u64; circuit.gate_count()];
    for (position, &input) in circuit.primary_inputs().iter().enumerate() {
        words[input.index()] = input_words.get(position).copied().unwrap_or(0);
    }
    if let FaultSite::Output(gate) = fault.site {
        if circuit.gate(gate).kind() == GateKind::Input {
            words[gate.index()] = fault.stuck.as_word();
        }
    }
    let mut fanin_words = Vec::new();
    for &id in compiled.order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        fanin_words.clear();
        for (pin, &driver) in gate.fanin().iter().enumerate() {
            let mut word = words[driver.index()];
            if fault.site == (FaultSite::InputPin { gate: id, pin }) {
                word = fault.stuck.as_word();
            }
            fanin_words.push(word);
        }
        let mut output = eval_packed(gate.kind(), &fanin_words);
        if fault.site == FaultSite::Output(id) {
            output = fault.stuck.as_word();
        }
        words[id.index()] = output;
    }
    words
}

/// Lane-wide (`64 × L`-pattern) bit-parallel simulation with `fault`
/// injected; returns one [`PackedBlock`] per gate indexed by gate id.
/// The `L = 1` case is exactly [`node_words_with_fault`].
pub fn node_chunks_with_fault<const L: usize>(
    compiled: &CompiledCircuit<'_>,
    input_chunks: &[PackedBlock<L>],
    fault: &Fault,
) -> Vec<PackedBlock<L>> {
    let circuit = compiled.circuit();
    let mut chunks = vec![PackedBlock::<L>::ZERO; circuit.gate_count()];
    for (position, &input) in circuit.primary_inputs().iter().enumerate() {
        chunks[input.index()] = input_chunks
            .get(position)
            .copied()
            .unwrap_or(PackedBlock::ZERO);
    }
    let stuck = PackedBlock::<L>::splat(fault.stuck.as_bool());
    if let FaultSite::Output(gate) = fault.site {
        if circuit.gate(gate).kind() == GateKind::Input {
            chunks[gate.index()] = stuck;
        }
    }
    let mut fanin_chunks = Vec::new();
    for &id in compiled.order() {
        let gate = circuit.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        fanin_chunks.clear();
        for (pin, &driver) in gate.fanin().iter().enumerate() {
            let mut chunk = chunks[driver.index()];
            if fault.site == (FaultSite::InputPin { gate: id, pin }) {
                chunk = stuck;
            }
            fanin_chunks.push(chunk);
        }
        let mut output = eval_chunk(gate.kind(), &fanin_chunks);
        if fault.site == FaultSite::Output(id) {
            output = stuck;
        }
        chunks[id.index()] = output;
    }
    chunks
}

/// Lane-wide bit-parallel primary-output response with `fault` injected.
pub fn output_chunks_with_fault<const L: usize>(
    compiled: &CompiledCircuit<'_>,
    input_chunks: &[PackedBlock<L>],
    fault: &Fault,
) -> Vec<PackedBlock<L>> {
    let chunks = node_chunks_with_fault(compiled, input_chunks, fault);
    compiled
        .circuit()
        .primary_outputs()
        .iter()
        .map(|&out| chunks[out.index()])
        .collect()
}

/// 64-pattern bit-parallel primary-output response with `fault` injected.
pub fn output_words_with_fault(
    compiled: &CompiledCircuit<'_>,
    input_words: &[u64],
    fault: &Fault,
) -> Vec<u64> {
    let words = node_words_with_fault(compiled, input_words, fault);
    compiled
        .circuit()
        .primary_outputs()
        .iter()
        .map(|&out| words[out.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StuckValue;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;

    #[test]
    fn injected_output_fault_forces_line() {
        let circuit = library::c17();
        let compiled = CompiledCircuit::new(&circuit);
        let g10 = circuit.find_signal("G10").expect("exists");
        let fault = Fault::output(g10, StuckValue::One);
        // Pattern where G10 would be 0 in the good circuit: G1 = G3 = 1.
        let pattern = Pattern::from_bits([true, false, true, false, false]);
        let good = compiled.node_values(&pattern);
        assert!(!good[g10.index()]);
        let faulty = node_values_with_fault(&compiled, pattern.bits(), &fault);
        assert!(faulty[g10.index()]);
    }

    #[test]
    fn input_pin_fault_does_not_affect_other_branches() {
        let circuit = library::c17();
        let compiled = CompiledCircuit::new(&circuit);
        // G11 fans out to G16 and G19.  A fault on G16's pin reading G11 must
        // leave G19's view of G11 untouched.
        let g11 = circuit.find_signal("G11").expect("exists");
        let g16 = circuit.find_signal("G16").expect("exists");
        let g19 = circuit.find_signal("G19").expect("exists");
        let pin = circuit
            .gate(g16)
            .fanin()
            .iter()
            .position(|&d| d == g11)
            .expect("G16 reads G11");
        let fault = Fault::input_pin(g16, pin, StuckValue::Zero);
        // Choose a pattern where G11 = 1 (G3 and G6 not both 1): all zeros.
        let pattern = Pattern::zeros(5);
        let good = compiled.node_values(&pattern);
        assert!(good[g11.index()]);
        let faulty = node_values_with_fault(&compiled, pattern.bits(), &fault);
        // The stem itself and the other branch keep the good value.
        assert_eq!(faulty[g11.index()], good[g11.index()]);
        assert_eq!(faulty[g19.index()], good[g19.index()]);
        // The faulted branch sees 0, so G16 = NAND(G2, 0) = 1.
        assert!(faulty[g16.index()]);
    }

    #[test]
    fn primary_input_fault_overrides_applied_value() {
        let circuit = library::half_adder();
        let compiled = CompiledCircuit::new(&circuit);
        let a = circuit.find_signal("a").expect("exists");
        let fault = Fault::output(a, StuckValue::Zero);
        let pattern = Pattern::from_bits([true, true]);
        let outputs = outputs_with_fault(&compiled, pattern.bits(), &fault);
        // With a stuck at 0: sum = 1, carry = 0.
        assert_eq!(outputs, vec![true, false]);
    }

    #[test]
    fn packed_injection_matches_scalar_injection() {
        let circuit = library::full_adder();
        let compiled = CompiledCircuit::new(&circuit);
        let universe = crate::universe::FaultUniverse::full(&circuit);
        // All 8 exhaustive patterns in one block.
        let mut input_words = vec![0u64; 3];
        for value in 0u64..8 {
            for (input, word) in input_words.iter_mut().enumerate() {
                if (value >> input) & 1 == 1 {
                    *word |= 1 << value;
                }
            }
        }
        for fault in &universe {
            let packed = output_words_with_fault(&compiled, &input_words, fault);
            for value in 0u64..8 {
                let pattern = Pattern::from_integer(value, 3);
                let scalar = outputs_with_fault(&compiled, pattern.bits(), fault);
                for (out, &word) in packed.iter().enumerate() {
                    assert_eq!(
                        (word >> value) & 1 == 1,
                        scalar[out],
                        "fault {fault} pattern {value} output {out}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_injection_matches_word_injection_lane_by_lane() {
        let circuit = library::alu4();
        let compiled = CompiledCircuit::new(&circuit);
        let universe = crate::universe::FaultUniverse::checkpoint(&circuit);
        let patterns: lsiq_sim::pattern::PatternSet =
            (0..300u64).map(|v| Pattern::from_integer(v, 10)).collect();
        let width = circuit.primary_inputs().len();
        for fault in universe.faults().iter().take(12) {
            for chunk in 0..patterns.chunk_count(4) {
                let (input_chunks, _) = patterns.pack_chunk::<4>(width, chunk);
                let chunks = node_chunks_with_fault(&compiled, &input_chunks, fault);
                let output_chunks = output_chunks_with_fault(&compiled, &input_chunks, fault);
                for lane in 0..4 {
                    let (input_words, _) = patterns.pack_block(width, chunk * 4 + lane);
                    let words = node_words_with_fault(&compiled, &input_words, fault);
                    for (gate, &word) in words.iter().enumerate() {
                        assert_eq!(chunks[gate].0[lane], word, "{fault} lane {lane}");
                    }
                    let output_words = output_words_with_fault(&compiled, &input_words, fault);
                    for (out, &word) in output_words.iter().enumerate() {
                        assert_eq!(output_chunks[out].0[lane], word);
                    }
                }
            }
        }
    }

    #[test]
    fn fault_free_injection_matches_good_machine_when_value_agrees() {
        let circuit = library::c17();
        let compiled = CompiledCircuit::new(&circuit);
        let g10 = circuit.find_signal("G10").expect("exists");
        // With G1=0, G10 is 1 in the good circuit; injecting SA1 changes nothing.
        let pattern = Pattern::zeros(5);
        let fault = Fault::output(g10, StuckValue::One);
        assert_eq!(
            node_values_with_fault(&compiled, pattern.bits(), &fault),
            compiled.node_values(&pattern)
        );
    }
}
