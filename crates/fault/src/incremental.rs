//! Event-driven incremental fault simulation.
//!
//! The four other engines re-evaluate the full circuit per fault
//! ([serial](crate::serial), [PPSFP](crate::ppsfp),
//! [parallel](crate::parallel)) or per pattern
//! ([deductive](crate::deductive)).  This engine exploits the observation
//! that a single stuck-at fault disturbs only its *fanout cone*: the good
//! machine is evaluated **once** per 64-pattern block, and each fault then
//! only seeds its fault site with the faulty word and propagates the
//! difference event-by-event, level-by-level, through the cone.  The
//! propagation stops as soon as the event frontier dies (every disturbed
//! word re-converged with the good machine) or runs out of circuit, so the
//! per-fault cost is proportional to the size of the *disturbed* cone —
//! usually a tiny fraction of the netlist — instead of the whole circuit.
//! On large circuits (tens of thousands of gates and beyond) this is the
//! fastest engine in the workspace; see `docs/ENGINES.md` for the full
//! comparison.
//!
//! # Event propagation
//!
//! Gates are processed in level order through per-level dirty buckets, so
//! every gate in the cone is evaluated at most once per (fault, block):
//! when a level-`L` gate is popped, all of its disturbed drivers (levels
//! `< L`) are final.  The faulty-value and scheduled-gate arrays are
//! epoch-stamped — bumping one counter invalidates all per-fault state, so
//! nothing is cleared between faults and, in the spirit of the deductive
//! engine's `ListArena`, nothing is allocated after warm-up.
//!
//! # Detection semantics
//!
//! Whenever a disturbed gate is a primary output, the XOR of its faulty and
//! good words (masked to the block's valid patterns) is accumulated; the
//! first set bit of the accumulated word is the fault's earliest detecting
//! pattern within the block.  This reproduces the PPSFP rule exactly, so
//! the reported [`FaultList`] is byte-identical to every other engine
//! (enforced by `tests/engine_differential.rs`).
//!
//! # Collapsing and sharding
//!
//! Like the deductive engine, the incremental engine simulates one
//! representative per structural equivalence class by default (see
//! [`with_collapsing`](IncrementalSimulator::with_collapsing)).  Runs are
//! single-threaded by default; binding an
//! [`ExecutionContext`] via
//! [`with_context`](IncrementalSimulator::with_context) (which
//! `EngineKind::build_in` does automatically) shards the simulation classes
//! across the pool's workers, each with its own scratch state, with results
//! identical at any worker count.

use crate::classes::{simulation_classes, CollapseContext, SimulationClasses};
use crate::list::FaultList;
use crate::model::{Fault, FaultSite};
use crate::simulator::FaultSimulator;
use crate::telemetry;
use crate::universe::FaultUniverse;
use lsiq_exec::{ExecutionContext, LaneWidth};
use lsiq_netlist::circuit::{Circuit, GateId};
use lsiq_netlist::levelize::Levelization;
use lsiq_obs::Span;
use lsiq_sim::cache::{circuit_fingerprint, GoodMachineCache};
use lsiq_sim::eval::eval_chunk;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::PackedBlock;
use lsiq_sim::pattern::PatternSet;
use std::cell::OnceCell;
use std::sync::Arc;

static GOOD_MACHINE: Span = Span::new("engine.incremental.good_machine");
static PROPAGATE: Span = Span::new("engine.incremental.propagate");

/// One precomputed lane-wide chunk: the good-machine chunk of every gate
/// (indexed by gate id) and the valid-slot mask.  The per-gate image is
/// behind an [`Arc`] so a shared [`GoodMachineCache`] entry can be used
/// in place without a copy.
struct Block<const L: usize> {
    words: Arc<Vec<PackedBlock<L>>>,
    valid: PackedBlock<L>,
}

/// One simulation class's seed: the representative fault and the level of
/// the gate whose evaluation it directly affects.
#[derive(Clone, Copy)]
struct Seed {
    fault: Fault,
    level: u32,
}

/// An event-driven incremental fault simulator.
///
/// Good-machine words are computed once per 64-pattern block; each fault
/// re-evaluates only its disturbed fanout cone.  See the [module
/// docs](self) for the algorithm and `docs/ENGINES.md` for when to pick
/// this engine.
///
/// ```
/// use lsiq_fault::incremental::IncrementalSimulator;
/// use lsiq_fault::deductive::DeductiveSimulator;
/// use lsiq_fault::simulator::FaultSimulator;
/// use lsiq_fault::universe::FaultUniverse;
/// use lsiq_netlist::library;
/// use lsiq_sim::pattern::{Pattern, PatternSet};
///
/// let circuit = library::c17();
/// let universe = FaultUniverse::full(&circuit);
/// let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
/// let incremental = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
/// // Byte-identical to every other engine; c17 is fully testable.
/// let deductive = DeductiveSimulator::new(&circuit).run(&universe, &patterns);
/// assert_eq!(incremental, deductive);
/// assert_eq!(incremental.detected_count(), universe.len());
/// ```
#[derive(Debug)]
pub struct IncrementalSimulator<'c> {
    compiled: CompiledCircuit<'c>,
    drop_detected: bool,
    collapse: bool,
    threads: usize,
    context: Option<&'c ExecutionContext>,
    lanes: LaneWidth,
    cache: Option<&'c GoodMachineCache>,
    /// Lazily built on the first collapsing run and reused afterwards (see
    /// [`DeductiveSimulator`](crate::deductive::DeductiveSimulator)).
    collapse_cache: OnceCell<CollapseContext>,
}

impl<'c> IncrementalSimulator<'c> {
    /// Minimum number of simulation classes per shard; below this, handing
    /// a shard to a worker costs more than it recovers.
    const MIN_CLASSES_PER_SHARD: usize = 64;

    /// Prepares an incremental fault simulator for `circuit` with fault
    /// dropping and equivalence collapsing enabled, running single-threaded.
    pub fn new(circuit: &'c Circuit) -> Self {
        IncrementalSimulator {
            compiled: CompiledCircuit::new(circuit),
            drop_detected: true,
            collapse: true,
            threads: 0,
            context: None,
            lanes: LaneWidth::Auto,
            cache: None,
            collapse_cache: OnceCell::new(),
        }
    }

    /// Selects the packed lane width ([`LaneWidth::Auto`] by default).
    /// Results are identical at every width.
    pub fn with_lanes(mut self, lanes: LaneWidth) -> Self {
        self.lanes = lanes;
        self
    }

    /// Shares a [`GoodMachineCache`] for the per-chunk good-machine images
    /// (see
    /// [`PpsfpSimulator::with_cache`](crate::ppsfp::PpsfpSimulator::with_cache)).
    /// The incremental engine benefits the most: it keeps the *full*
    /// per-gate image per chunk, exactly what the cache stores.
    pub fn with_cache(mut self, cache: &'c GoodMachineCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Binds the simulator to a persistent worker pool and shards the
    /// simulation classes across its workers.  Without this (and without
    /// [`with_threads`](Self::with_threads)) runs are single-threaded.
    pub fn with_context(mut self, context: &'c ExecutionContext) -> Self {
        self.context = Some(context);
        self
    }

    /// Controls fault dropping (see
    /// [`SerialSimulator::with_fault_dropping`](crate::serial::SerialSimulator::with_fault_dropping)).
    pub fn with_fault_dropping(mut self, enabled: bool) -> Self {
        self.drop_detected = enabled;
        self
    }

    /// Controls equivalence collapsing (enabled by default; see
    /// [`DeductiveSimulator::with_collapsing`](crate::deductive::DeductiveSimulator::with_collapsing)).
    /// The results are identical either way.
    pub fn with_collapsing(mut self, enabled: bool) -> Self {
        self.collapse = enabled;
        self
    }

    /// Overrides the worker-thread count; `0` (the default) means one
    /// thread, or the bound context's worker count if one is bound.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker pool multi-shard runs execute on: the bound context, or
    /// the process-wide default pool.
    fn execution_context(&self) -> &ExecutionContext {
        self.context.unwrap_or_else(|| ExecutionContext::global())
    }

    /// The shard count a run would use for `class_count` simulation classes.
    fn shard_count(&self, class_count: usize) -> usize {
        let requested = if self.threads > 0 {
            self.threads
        } else if let Some(context) = self.context {
            context.workers()
        } else {
            1
        };
        let useful = class_count.div_ceil(Self::MIN_CLASSES_PER_SHARD);
        requested.min(useful).max(1)
    }

    /// Packs every lane-wide chunk and evaluates its good machine once —
    /// through the shared cache when one is bound.
    ///
    /// The full per-gate chunk image of every chunk is kept (O(gates ×
    /// chunks × lanes) words) so class shards can replay chunks
    /// independently without re-simulating the good machine.
    fn precompute_blocks<const L: usize>(&self, patterns: &PatternSet) -> Vec<Block<L>> {
        let circuit = self.compiled.circuit();
        let input_count = circuit.primary_inputs().len();
        let fingerprint = self.cache.map(|_| circuit_fingerprint(circuit));
        let mut blocks = Vec::with_capacity(patterns.chunk_count(L));
        for chunk in 0..patterns.chunk_count(L) {
            let (inputs, pattern_count) = patterns.pack_chunk::<L>(input_count, chunk);
            if pattern_count == 0 {
                break;
            }
            let words = match (self.cache, fingerprint) {
                (Some(cache), Some(fingerprint)) => {
                    cache.node_chunks_keyed(fingerprint, &self.compiled, &inputs, pattern_count)
                }
                _ => Arc::new(self.compiled.node_chunks(&inputs)),
            };
            blocks.push(Block {
                words,
                valid: PackedBlock::valid_mask(pattern_count),
            });
        }
        blocks
    }

    /// Partitions the universe's fault indices into groups that provably
    /// share their set of detecting patterns (see
    /// [`classes::simulation_classes`](simulation_classes)).
    fn simulation_classes(&self, universe: &FaultUniverse) -> SimulationClasses {
        simulation_classes(
            self.compiled.circuit(),
            &self.collapse_cache,
            self.collapse,
            universe,
        )
    }
}

impl<'c> IncrementalSimulator<'c> {
    /// One lane-monomorphized run (see [`FaultSimulator::run`]).
    fn run_lanes<const L: usize>(
        &self,
        universe: &FaultUniverse,
        patterns: &PatternSet,
    ) -> FaultList {
        let mut list = FaultList::new(universe);
        if universe.is_empty() || patterns.is_empty() {
            return list;
        }
        let classes = self.simulation_classes(universe);
        let circuit = self.compiled.circuit();
        let levelization = self.compiled.levelization();
        let blocks = {
            let _timer = GOOD_MACHINE.start();
            self.precompute_blocks::<L>(patterns)
        };
        if blocks.is_empty() {
            return list;
        }
        telemetry::RUNS.incr();
        telemetry::FAULTS.add(classes.count() as u64);
        telemetry::GOOD_EVALS.add(blocks.len() as u64);
        let seeds: Vec<Seed> = (0..classes.count() as u32)
            .map(|class| {
                let fault = *universe
                    .get(classes.representative(class) as usize)
                    .expect("class member in range");
                Seed {
                    fault,
                    level: levelization.level(fault.site.affected_gate()) as u32,
                }
            })
            .collect();
        let mut is_output = vec![false; circuit.gate_count()];
        for &out in circuit.primary_outputs() {
            is_output[out.index()] = true;
        }

        let shards = self.shard_count(seeds.len());
        let chunk = seeds.len().div_ceil(shards);
        let drop_detected = self.drop_detected;
        let detections: Vec<Vec<Option<usize>>> = if shards == 1 {
            vec![simulate_shard(
                circuit,
                levelization,
                &is_output,
                &blocks,
                &seeds,
                drop_detected,
            )]
        } else {
            let shard_seeds: Vec<&[Seed]> = seeds.chunks(chunk).collect();
            self.execution_context().scope_map(shard_seeds, |shard| {
                simulate_shard(
                    circuit,
                    levelization,
                    &is_output,
                    &blocks,
                    shard,
                    drop_detected,
                )
            })
        };

        let mut drops = 0u64;
        for (shard, shard_detections) in detections.into_iter().enumerate() {
            let base = shard * chunk;
            for (local, detection) in shard_detections.into_iter().enumerate() {
                if let Some(pattern) = detection {
                    if drop_detected {
                        drops += 1;
                    }
                    for &member in classes.members_of((base + local) as u32) {
                        list.mark_detected(member as usize, pattern);
                    }
                }
            }
        }
        telemetry::DROPS.add(drops);
        list
    }
}

impl FaultSimulator for IncrementalSimulator<'_> {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn run(&self, universe: &FaultUniverse, patterns: &PatternSet) -> FaultList {
        match self.lanes.resolve(patterns.len()) {
            1 => self.run_lanes::<1>(universe, patterns),
            4 => self.run_lanes::<4>(universe, patterns),
            _ => self.run_lanes::<8>(universe, patterns),
        }
    }
}

/// Simulates one contiguous shard of simulation classes over all chunks,
/// returning the first detecting pattern per class (shard-local order).
///
/// All scratch state — faulty chunks, epoch stamps, per-level dirty buckets,
/// the fanin gather buffer — is allocated once per shard and reused for
/// every (class, chunk) pair.
fn simulate_shard<const L: usize>(
    circuit: &Circuit,
    levelization: &Levelization,
    is_output: &[bool],
    blocks: &[Block<L>],
    seeds: &[Seed],
    drop_detected: bool,
) -> Vec<Option<usize>> {
    let _timer = PROPAGATE.start();
    let gate_count = circuit.gate_count();
    // Faulty chunks and their validity stamp: `faulty[g]` is live iff
    // `value_stamp[g] == epoch`, so advancing the epoch resets everything.
    let mut faulty = vec![PackedBlock::<L>::ZERO; gate_count];
    let mut value_stamp = vec![0u64; gate_count];
    let mut sched_stamp = vec![0u64; gate_count];
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); levelization.depth() + 1];
    let mut fanin_words: Vec<PackedBlock<L>> = Vec::new();
    let mut epoch = 0u64;
    let mut first_detection: Vec<Option<usize>> = vec![None; seeds.len()];

    for (local, seed) in seeds.iter().enumerate() {
        let site_id = seed.fault.site.affected_gate();
        let site = site_id.index();
        let stuck = PackedBlock::<L>::splat(seed.fault.stuck.as_bool());
        for (block_index, block) in blocks.iter().enumerate() {
            if first_detection[local].is_some() && drop_detected {
                break;
            }
            epoch += 1;
            let good: &[PackedBlock<L>] = &block.words;
            // Seed the fault site: an output fault pins the gate's chunk to
            // the stuck value; a pin fault re-evaluates the loading gate
            // with that one pin's chunk replaced.
            let seeded = match seed.fault.site {
                FaultSite::Output(_) => stuck,
                FaultSite::InputPin { gate, pin } => {
                    let load = circuit.gate(gate);
                    fanin_words.clear();
                    for (position, &driver) in load.fanin().iter().enumerate() {
                        fanin_words.push(if position == pin {
                            stuck
                        } else {
                            good[driver.index()]
                        });
                    }
                    eval_chunk(load.kind(), &fanin_words)
                }
            };
            // Restricting the seeded difference to valid slots keeps every
            // downstream chunk bitwise equal to the good machine outside the
            // chunk, killing events earlier and masking nothing (packed
            // evaluation is slot-independent).
            let diff = (seeded ^ good[site]) & block.valid;
            if diff.is_zero() {
                continue; // fault not excited by any pattern of this chunk
            }
            faulty[site] = good[site] ^ diff;
            value_stamp[site] = epoch;
            let mut detect = if is_output[site] {
                diff
            } else {
                PackedBlock::ZERO
            };
            let mut pending = 0usize;
            for &load in circuit.fanout(site_id) {
                let index = load.index();
                if sched_stamp[index] != epoch {
                    sched_stamp[index] = epoch;
                    buckets[levelization.level(load)].push(index as u32);
                    pending += 1;
                }
            }
            // Drain dirty buckets in level order; a drained gate only ever
            // schedules strictly higher levels, so each cone gate is
            // evaluated at most once and its drivers are final when popped.
            let mut level = seed.level as usize + 1;
            while pending > 0 {
                while buckets[level].is_empty() {
                    level += 1;
                }
                let mut bucket = std::mem::take(&mut buckets[level]);
                for &dirty in &bucket {
                    pending -= 1;
                    let dirty_index = dirty as usize;
                    let id = GateId(dirty_index);
                    let gate = circuit.gate(id);
                    fanin_words.clear();
                    for &driver in gate.fanin() {
                        let driver_index = driver.index();
                        fanin_words.push(if value_stamp[driver_index] == epoch {
                            faulty[driver_index]
                        } else {
                            good[driver_index]
                        });
                    }
                    let word = eval_chunk(gate.kind(), &fanin_words);
                    let delta = word ^ good[dirty_index];
                    if delta.is_zero() {
                        continue; // event died: cone re-converged here
                    }
                    faulty[dirty_index] = word;
                    value_stamp[dirty_index] = epoch;
                    if is_output[dirty_index] {
                        detect |= delta;
                    }
                    for &load in circuit.fanout(id) {
                        let index = load.index();
                        if sched_stamp[index] != epoch {
                            sched_stamp[index] = epoch;
                            buckets[levelization.level(load)].push(index as u32);
                            pending += 1;
                        }
                    }
                }
                bucket.clear();
                buckets[level] = bucket;
            }
            if first_detection[local].is_none() {
                if let Some(slot) = detect.first_set_slot() {
                    first_detection[local] = Some(block_index * PackedBlock::<L>::PATTERNS + slot);
                }
            }
        }
    }
    first_detection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::PpsfpSimulator;
    use crate::serial::SerialSimulator;
    use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
    use lsiq_netlist::library;
    use lsiq_sim::pattern::Pattern;
    use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

    fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..count)
            .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
            .collect()
    }

    #[test]
    fn matches_serial_simulator_on_c17_exhaustive() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let incremental = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(serial, incremental);
    }

    #[test]
    fn matches_ppsfp_on_random_logic_across_blocks() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 11,
            gates: 140,
            seed: 29,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        // More than 64 patterns so detection indices cross block boundaries.
        let patterns = random_patterns(11, 150, 5);
        let ppsfp = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let incremental = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(ppsfp, incremental);
    }

    #[test]
    fn matches_serial_on_xor_heavy_logic() {
        // The full adder exercises XOR cones, where events re-converge and
        // die mid-circuit.
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..8).map(|v| Pattern::from_integer(v, 3)).collect();
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let incremental = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(serial, incremental);
    }

    #[test]
    fn collapsing_does_not_change_results() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 9,
            gates: 90,
            seed: 43,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(9, 70, 13);
        let collapsed = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        let uncollapsed = IncrementalSimulator::new(&circuit)
            .with_collapsing(false)
            .run(&universe, &patterns);
        assert_eq!(collapsed, uncollapsed);
    }

    #[test]
    fn fault_dropping_does_not_change_results() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 10,
            gates: 110,
            seed: 61,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(10, 130, 17);
        let dropped = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        let undropped = IncrementalSimulator::new(&circuit)
            .with_fault_dropping(false)
            .run(&universe, &patterns);
        assert_eq!(dropped, undropped);
    }

    #[test]
    fn checkpoint_universe_exercises_pin_fault_seeding() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 8,
            gates: 75,
            seed: 7,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::checkpoint(&circuit);
        let patterns = random_patterns(8, 48, 23);
        let serial = SerialSimulator::new(&circuit).run(&universe, &patterns);
        let incremental = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        assert_eq!(serial, incremental);
    }

    #[test]
    fn lane_widths_and_cache_do_not_change_results() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 10,
            gates: 120,
            seed: 101,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(10, 300, 41);
        let reference = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        let cache = GoodMachineCache::new();
        for lanes in LaneWidth::EXPLICIT {
            let plain = IncrementalSimulator::new(&circuit)
                .with_lanes(lanes)
                .run(&universe, &patterns);
            assert_eq!(reference, plain, "lanes = {lanes}");
            let cached = IncrementalSimulator::new(&circuit)
                .with_lanes(lanes)
                .with_cache(&cache)
                .run(&universe, &patterns);
            assert_eq!(reference, cached, "lanes = {lanes} (cached)");
        }
        assert!(cache.misses() > 0);
        // Replaying a width already in the cache is a pure hit.
        let before = cache.hits();
        let replay = IncrementalSimulator::new(&circuit)
            .with_lanes(LaneWidth::X4)
            .with_cache(&cache)
            .run(&universe, &patterns);
        assert_eq!(reference, replay);
        assert!(cache.hits() > before);
    }

    #[test]
    fn sharded_runs_match_at_every_worker_count() {
        let circuit = random_circuit(&RandomCircuitConfig {
            inputs: 12,
            gates: 160,
            seed: 83,
            ..RandomCircuitConfig::default()
        });
        let universe = FaultUniverse::full(&circuit);
        let patterns = random_patterns(12, 100, 31);
        let reference = IncrementalSimulator::new(&circuit).run(&universe, &patterns);
        for threads in [2, 3, 8] {
            let sharded = IncrementalSimulator::new(&circuit)
                .with_threads(threads)
                .run(&universe, &patterns);
            assert_eq!(reference, sharded, "threads = {threads}");
        }
        for workers in [1, 2, 6] {
            let context = ExecutionContext::new(workers);
            // Two runs on one context: the pool is reused, not respawned.
            for _ in 0..2 {
                let bound = IncrementalSimulator::new(&circuit)
                    .with_context(&context)
                    .run(&universe, &patterns);
                assert_eq!(reference, bound, "workers = {workers}");
            }
        }
    }

    #[test]
    fn shard_count_scales_down_for_tiny_universes() {
        let circuit = library::c17();
        let simulator = IncrementalSimulator::new(&circuit).with_threads(16);
        assert_eq!(simulator.shard_count(46), 1);
        assert_eq!(simulator.shard_count(0), 1);
        assert_eq!(simulator.shard_count(64 * 16), 16);
        assert_eq!(simulator.shard_count(65), 2);
        // Default is single-threaded.
        assert_eq!(IncrementalSimulator::new(&circuit).shard_count(10_000), 1);
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let no_patterns = IncrementalSimulator::new(&circuit).run(&universe, &PatternSet::new());
        assert_eq!(no_patterns.detected_count(), 0);
        let patterns: PatternSet = (0..4).map(|v| Pattern::from_integer(v, 5)).collect();
        let empty_universe = FaultUniverse::from_faults(Vec::new());
        let list = IncrementalSimulator::new(&circuit).run(&empty_universe, &patterns);
        assert!(list.is_empty());
    }
}
