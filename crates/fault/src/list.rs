//! Fault lists with detection bookkeeping, and the arena-backed sorted-list
//! representation the deductive engine propagates through the circuit.

use crate::model::Fault;
use crate::universe::FaultUniverse;

/// A handle to one sorted, duplicate-free fault-index list stored in a
/// [`ListArena`].
///
/// Handles are plain `(offset, length)` pairs into the arena's backing
/// storage, so copying one is free and two handles may alias the same
/// storage: a buffer gate's output list *is* its input list, and a pin whose
/// own stuck fault is absent (the common case on a collapsed universe)
/// shares its driver's list without copying a single element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListRef {
    start: u32,
    len: u32,
}

impl ListRef {
    /// The canonical empty list (valid in every arena).
    pub const EMPTY: ListRef = ListRef { start: 0, len: 0 };

    /// Number of fault indices in the list.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the list holds no fault indices.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// A bump arena of sorted `u32` fault-index lists.
///
/// This is the storage behind the deductive simulator's per-signal fault
/// lists.  All lists of one propagation pass live in a single `Vec<u32>`;
/// [`reset`](ListArena::reset) truncates it without releasing capacity, so
/// after the first pattern of a run the engine allocates nothing at all.
/// Every set operation (union, intersection, subtraction, symmetric
/// difference) is a linear merge over two sorted slices that appends its
/// result to the arena and returns a new handle — with handle-sharing fast
/// paths for the empty and identical-operand cases.
#[derive(Debug, Default, Clone)]
pub struct ListArena {
    storage: Vec<u32>,
}

impl ListArena {
    /// Creates an empty arena.
    pub fn new() -> ListArena {
        ListArena::default()
    }

    /// Drops every list but keeps the allocated capacity for the next pass.
    pub fn reset(&mut self) {
        self.storage.clear();
    }

    /// Total number of interned elements (diagnostics and tests).
    pub fn interned_len(&self) -> usize {
        self.storage.len()
    }

    /// The sorted fault indices behind `list`.
    pub fn slice(&self, list: ListRef) -> &[u32] {
        &self.storage[list.start as usize..(list.start + list.len) as usize]
    }

    /// Interns a one-element list.
    pub fn singleton(&mut self, value: u32) -> ListRef {
        let start = self.storage.len();
        self.storage.push(value);
        self.finish(start)
    }

    /// Interns a copy of a sorted, duplicate-free slice.
    pub fn intern(&mut self, values: &[u32]) -> ListRef {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        let start = self.storage.len();
        self.storage.extend_from_slice(values);
        self.finish(start)
    }

    fn finish(&mut self, start: usize) -> ListRef {
        // Handles are u32 offsets; a pass interning more than 2^32 elements
        // must fail loudly rather than silently alias earlier lists.
        assert!(
            self.storage.len() <= u32::MAX as usize,
            "fault-list arena exceeds u32 handle space"
        );
        ListRef {
            start: start as u32,
            len: (self.storage.len() - start) as u32,
        }
    }

    /// `a ∪ {value}` — returns `a` unchanged when it already contains
    /// `value`.
    pub fn insert(&mut self, a: ListRef, value: u32) -> ListRef {
        if a.is_empty() {
            return self.singleton(value);
        }
        let (lo, end) = (a.start as usize, (a.start + a.len) as usize);
        let split = match self.storage[lo..end].binary_search(&value) {
            Ok(_) => return a,
            Err(insertion_point) => lo + insertion_point,
        };
        let start = self.storage.len();
        self.storage.extend_from_within(lo..split);
        self.storage.push(value);
        self.storage.extend_from_within(split..end);
        self.finish(start)
    }

    /// `a ∪ b`.
    pub fn union(&mut self, a: ListRef, b: ListRef) -> ListRef {
        if a.is_empty() || a == b {
            return b;
        }
        if b.is_empty() {
            return a;
        }
        let start = self.storage.len();
        let (mut i, ae) = (a.start as usize, (a.start + a.len) as usize);
        let (mut j, be) = (b.start as usize, (b.start + b.len) as usize);
        while i < ae && j < be {
            let (x, y) = (self.storage[i], self.storage[j]);
            let v = x.min(y);
            if x <= v {
                i += 1;
            }
            if y <= v {
                j += 1;
            }
            self.storage.push(v);
        }
        self.storage.extend_from_within(i..ae);
        self.storage.extend_from_within(j..be);
        self.finish(start)
    }

    /// `a ∩ b`.
    pub fn intersect(&mut self, a: ListRef, b: ListRef) -> ListRef {
        if a == b {
            return a;
        }
        if a.is_empty() || b.is_empty() {
            return ListRef::EMPTY;
        }
        let start = self.storage.len();
        let (mut i, ae) = (a.start as usize, (a.start + a.len) as usize);
        let (mut j, be) = (b.start as usize, (b.start + b.len) as usize);
        while i < ae && j < be {
            let (x, y) = (self.storage[i], self.storage[j]);
            match x.cmp(&y) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.storage.push(x);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.finish(start)
    }

    /// `a ∖ b` — the elements of `a` not in `b`.
    pub fn subtract(&mut self, a: ListRef, b: ListRef) -> ListRef {
        if a.is_empty() || a == b {
            return ListRef::EMPTY;
        }
        if b.is_empty() {
            return a;
        }
        let start = self.storage.len();
        let (mut i, ae) = (a.start as usize, (a.start + a.len) as usize);
        let (mut j, be) = (b.start as usize, (b.start + b.len) as usize);
        while i < ae {
            let x = self.storage[i];
            while j < be && self.storage[j] < x {
                j += 1;
            }
            if j < be && self.storage[j] == x {
                i += 1;
                j += 1;
            } else {
                self.storage.push(x);
                i += 1;
            }
        }
        self.finish(start)
    }

    /// `a △ b` — the elements in exactly one of the two lists (the deductive
    /// XOR parity rule).
    pub fn symmetric_difference(&mut self, a: ListRef, b: ListRef) -> ListRef {
        if a == b {
            return ListRef::EMPTY;
        }
        if a.is_empty() {
            return b;
        }
        if b.is_empty() {
            return a;
        }
        let start = self.storage.len();
        let (mut i, ae) = (a.start as usize, (a.start + a.len) as usize);
        let (mut j, be) = (b.start as usize, (b.start + b.len) as usize);
        while i < ae && j < be {
            let (x, y) = (self.storage[i], self.storage[j]);
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    self.storage.push(x);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.storage.push(y);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        self.storage.extend_from_within(i..ae);
        self.storage.extend_from_within(j..be);
        self.finish(start)
    }
}

/// Detection status of one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionState {
    /// Not detected by any pattern applied so far.
    Undetected,
    /// First detected by the pattern with this zero-based index.
    Detected {
        /// Index of the first detecting pattern in application order.
        pattern: usize,
    },
}

impl DetectionState {
    /// Returns `true` if the fault has been detected.
    pub fn is_detected(self) -> bool {
        matches!(self, DetectionState::Detected { .. })
    }

    /// The first detecting pattern, if any.
    pub fn first_pattern(self) -> Option<usize> {
        match self {
            DetectionState::Detected { pattern } => Some(pattern),
            DetectionState::Undetected => None,
        }
    }
}

/// A fault universe together with per-fault detection status.
///
/// This is the bookkeeping structure every fault simulator fills in; its
/// [`coverage`](FaultList::coverage) is the paper's `f = m / N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
    states: Vec<DetectionState>,
}

impl FaultList {
    /// Creates a fault list with every fault of `universe` undetected.
    pub fn new(universe: &FaultUniverse) -> FaultList {
        FaultList {
            faults: universe.faults().to_vec(),
            states: vec![DetectionState::Undetected; universe.len()],
        }
    }

    /// Number of faults `N`.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the list holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault at `index`.
    pub fn fault(&self, index: usize) -> &Fault {
        &self.faults[index]
    }

    /// The detection state of the fault at `index`.
    pub fn state(&self, index: usize) -> DetectionState {
        self.states[index]
    }

    /// Iterates over `(fault, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Fault, DetectionState)> {
        self.faults.iter().zip(self.states.iter().copied())
    }

    /// Indices of faults that are still undetected.
    pub fn undetected_indices(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_detected())
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks the fault at `index` as detected by `pattern` unless it already
    /// has an earlier (or equal) first detection.  Returns `true` if the
    /// state changed.
    pub fn mark_detected(&mut self, index: usize, pattern: usize) -> bool {
        match self.states[index] {
            DetectionState::Undetected => {
                self.states[index] = DetectionState::Detected { pattern };
                true
            }
            DetectionState::Detected { pattern: existing } if pattern < existing => {
                self.states[index] = DetectionState::Detected { pattern };
                true
            }
            DetectionState::Detected { .. } => false,
        }
    }

    /// Number of detected faults `m`.
    pub fn detected_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_detected()).count()
    }

    /// Fault coverage `f = m / N` (zero for an empty list).
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            0.0
        } else {
            self.detected_count() as f64 / self.faults.len() as f64
        }
    }

    /// The first detecting pattern of every detected fault, unsorted.
    pub fn first_detection_patterns(&self) -> Vec<usize> {
        self.states
            .iter()
            .filter_map(|s| s.first_pattern())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    fn small_list() -> FaultList {
        FaultList::new(&FaultUniverse::full(&library::half_adder()))
    }

    #[test]
    fn new_list_is_fully_undetected() {
        let list = small_list();
        assert!(!list.is_empty());
        assert_eq!(list.detected_count(), 0);
        assert_eq!(list.coverage(), 0.0);
        assert_eq!(list.undetected_indices().len(), list.len());
        assert!(!list.state(0).is_detected());
    }

    #[test]
    fn marking_detection_updates_coverage() {
        let mut list = small_list();
        assert!(list.mark_detected(0, 3));
        assert!(list.mark_detected(1, 7));
        assert_eq!(list.detected_count(), 2);
        let expected = 2.0 / list.len() as f64;
        assert!((list.coverage() - expected).abs() < 1e-12);
        assert_eq!(list.state(0).first_pattern(), Some(3));
    }

    #[test]
    fn earlier_detection_wins() {
        let mut list = small_list();
        assert!(list.mark_detected(0, 10));
        // A later pattern cannot overwrite an earlier first detection.
        assert!(!list.mark_detected(0, 20));
        assert_eq!(list.state(0).first_pattern(), Some(10));
        // But an earlier one can.
        assert!(list.mark_detected(0, 5));
        assert_eq!(list.state(0).first_pattern(), Some(5));
    }

    #[test]
    fn iteration_and_first_detections() {
        let mut list = small_list();
        list.mark_detected(2, 0);
        list.mark_detected(4, 1);
        let detected: Vec<usize> = list.first_detection_patterns();
        assert_eq!(detected.len(), 2);
        assert!(detected.contains(&0) && detected.contains(&1));
        assert_eq!(list.iter().count(), list.len());
        assert_eq!(list.undetected_indices().len(), list.len() - 2);
    }

    #[test]
    fn empty_list_coverage_is_zero() {
        let list = FaultList::new(&FaultUniverse::from_faults(Vec::new()));
        assert!(list.is_empty());
        assert_eq!(list.coverage(), 0.0);
    }

    /// Reference implementation of the arena set operations on `Vec<u32>`.
    fn naive(op: &str, a: &[u32], b: &[u32]) -> Vec<u32> {
        use std::collections::BTreeSet;
        let a: BTreeSet<u32> = a.iter().copied().collect();
        let b: BTreeSet<u32> = b.iter().copied().collect();
        let set: BTreeSet<u32> = match op {
            "union" => a.union(&b).copied().collect(),
            "intersect" => a.intersection(&b).copied().collect(),
            "subtract" => a.difference(&b).copied().collect(),
            "symmetric" => a.symmetric_difference(&b).copied().collect(),
            _ => unreachable!(),
        };
        set.into_iter().collect()
    }

    #[test]
    fn arena_operations_match_set_semantics() {
        use lsiq_stats::rng::{Rng, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..200 {
            let mut a: Vec<u32> = (0..rng.next_bounded(12))
                .map(|_| rng.next_bounded(20) as u32)
                .collect();
            let mut b: Vec<u32> = (0..rng.next_bounded(12))
                .map(|_| rng.next_bounded(20) as u32)
                .collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut arena = ListArena::new();
            let ra = arena.intern(&a);
            let rb = arena.intern(&b);
            for op in ["union", "intersect", "subtract", "symmetric"] {
                let result = match op {
                    "union" => arena.union(ra, rb),
                    "intersect" => arena.intersect(ra, rb),
                    "subtract" => arena.subtract(ra, rb),
                    "symmetric" => arena.symmetric_difference(ra, rb),
                    _ => unreachable!(),
                };
                assert_eq!(
                    arena.slice(result),
                    naive(op, &a, &b),
                    "{op} of {a:?} and {b:?}"
                );
            }
        }
    }

    #[test]
    fn arena_insert_is_sorted_and_idempotent() {
        let mut arena = ListArena::new();
        let mut list = ListRef::EMPTY;
        for value in [5u32, 1, 9, 5, 3, 9] {
            list = arena.insert(list, value);
        }
        assert_eq!(arena.slice(list), &[1, 3, 5, 9]);
        // Inserting a present element returns the same handle (no copy).
        let same = arena.insert(list, 3);
        assert_eq!(same, list);
    }

    #[test]
    fn arena_shares_handles_on_trivial_operations() {
        let mut arena = ListArena::new();
        let a = arena.intern(&[2, 4, 6]);
        let before = arena.interned_len();
        // All of these must be handle-returning fast paths, not copies.
        assert_eq!(arena.union(a, ListRef::EMPTY), a);
        assert_eq!(arena.union(ListRef::EMPTY, a), a);
        assert_eq!(arena.union(a, a), a);
        assert_eq!(arena.intersect(a, a), a);
        assert_eq!(arena.subtract(a, ListRef::EMPTY), a);
        assert_eq!(arena.subtract(a, a), ListRef::EMPTY);
        assert_eq!(arena.symmetric_difference(a, ListRef::EMPTY), a);
        assert_eq!(arena.symmetric_difference(a, a), ListRef::EMPTY);
        assert_eq!(arena.interned_len(), before);
    }

    #[test]
    fn arena_reset_keeps_capacity() {
        let mut arena = ListArena::new();
        for i in 0..100 {
            arena.singleton(i);
        }
        assert_eq!(arena.interned_len(), 100);
        arena.reset();
        assert_eq!(arena.interned_len(), 0);
        let list = arena.singleton(7);
        assert_eq!(arena.slice(list), &[7]);
    }
}
