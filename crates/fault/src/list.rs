//! Fault lists with detection bookkeeping.

use crate::model::Fault;
use crate::universe::FaultUniverse;

/// Detection status of one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionState {
    /// Not detected by any pattern applied so far.
    Undetected,
    /// First detected by the pattern with this zero-based index.
    Detected {
        /// Index of the first detecting pattern in application order.
        pattern: usize,
    },
}

impl DetectionState {
    /// Returns `true` if the fault has been detected.
    pub fn is_detected(self) -> bool {
        matches!(self, DetectionState::Detected { .. })
    }

    /// The first detecting pattern, if any.
    pub fn first_pattern(self) -> Option<usize> {
        match self {
            DetectionState::Detected { pattern } => Some(pattern),
            DetectionState::Undetected => None,
        }
    }
}

/// A fault universe together with per-fault detection status.
///
/// This is the bookkeeping structure every fault simulator fills in; its
/// [`coverage`](FaultList::coverage) is the paper's `f = m / N`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
    states: Vec<DetectionState>,
}

impl FaultList {
    /// Creates a fault list with every fault of `universe` undetected.
    pub fn new(universe: &FaultUniverse) -> FaultList {
        FaultList {
            faults: universe.faults().to_vec(),
            states: vec![DetectionState::Undetected; universe.len()],
        }
    }

    /// Number of faults `N`.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the list holds no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault at `index`.
    pub fn fault(&self, index: usize) -> &Fault {
        &self.faults[index]
    }

    /// The detection state of the fault at `index`.
    pub fn state(&self, index: usize) -> DetectionState {
        self.states[index]
    }

    /// Iterates over `(fault, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Fault, DetectionState)> {
        self.faults.iter().zip(self.states.iter().copied())
    }

    /// Indices of faults that are still undetected.
    pub fn undetected_indices(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_detected())
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks the fault at `index` as detected by `pattern` unless it already
    /// has an earlier (or equal) first detection.  Returns `true` if the
    /// state changed.
    pub fn mark_detected(&mut self, index: usize, pattern: usize) -> bool {
        match self.states[index] {
            DetectionState::Undetected => {
                self.states[index] = DetectionState::Detected { pattern };
                true
            }
            DetectionState::Detected { pattern: existing } if pattern < existing => {
                self.states[index] = DetectionState::Detected { pattern };
                true
            }
            DetectionState::Detected { .. } => false,
        }
    }

    /// Number of detected faults `m`.
    pub fn detected_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_detected()).count()
    }

    /// Fault coverage `f = m / N` (zero for an empty list).
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            0.0
        } else {
            self.detected_count() as f64 / self.faults.len() as f64
        }
    }

    /// The first detecting pattern of every detected fault, unsorted.
    pub fn first_detection_patterns(&self) -> Vec<usize> {
        self.states
            .iter()
            .filter_map(|s| s.first_pattern())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    fn small_list() -> FaultList {
        FaultList::new(&FaultUniverse::full(&library::half_adder()))
    }

    #[test]
    fn new_list_is_fully_undetected() {
        let list = small_list();
        assert!(!list.is_empty());
        assert_eq!(list.detected_count(), 0);
        assert_eq!(list.coverage(), 0.0);
        assert_eq!(list.undetected_indices().len(), list.len());
        assert!(!list.state(0).is_detected());
    }

    #[test]
    fn marking_detection_updates_coverage() {
        let mut list = small_list();
        assert!(list.mark_detected(0, 3));
        assert!(list.mark_detected(1, 7));
        assert_eq!(list.detected_count(), 2);
        let expected = 2.0 / list.len() as f64;
        assert!((list.coverage() - expected).abs() < 1e-12);
        assert_eq!(list.state(0).first_pattern(), Some(3));
    }

    #[test]
    fn earlier_detection_wins() {
        let mut list = small_list();
        assert!(list.mark_detected(0, 10));
        // A later pattern cannot overwrite an earlier first detection.
        assert!(!list.mark_detected(0, 20));
        assert_eq!(list.state(0).first_pattern(), Some(10));
        // But an earlier one can.
        assert!(list.mark_detected(0, 5));
        assert_eq!(list.state(0).first_pattern(), Some(5));
    }

    #[test]
    fn iteration_and_first_detections() {
        let mut list = small_list();
        list.mark_detected(2, 0);
        list.mark_detected(4, 1);
        let detected: Vec<usize> = list.first_detection_patterns();
        assert_eq!(detected.len(), 2);
        assert!(detected.contains(&0) && detected.contains(&1));
        assert_eq!(list.iter().count(), list.len());
        assert_eq!(list.undetected_indices().len(), list.len() - 2);
    }

    #[test]
    fn empty_list_coverage_is_zero() {
        let list = FaultList::new(&FaultUniverse::from_faults(Vec::new()));
        assert!(list.is_empty());
        assert_eq!(list.coverage(), 0.0);
    }
}
