//! The multi-threaded production-line pipeline.
//!
//! Estimating the paper's quality/coverage relationship (eq. 8, Table 1)
//! means testing whole lots of chips — an embarrassingly parallel workload,
//! since every chip of a lot draws from its own RNG stream
//! ([`Xoshiro256StarStar::stream`](lsiq_stats::rng::Xoshiro256StarStar::stream))
//! and is tested independently.  This module
//! exploits that at two levels:
//!
//! * [`ParallelLotRunner`] shards the chips of *one* lot across pooled worker
//!   threads — generation ([`ChipLot::from_model`] / physical pipeline),
//!   wafer testing ([`WaferTester`]) and reject-table bookkeeping
//!   ([`RejectExperiment`]) — producing byte-identical results to the serial
//!   path at any thread count (enforced by `tests/lot_differential.rs`).
//! * [`LotSweep`] fans *whole experiments* — a grid of `(y, n0)` ground
//!   truths, one lot each — across threads and aggregates the per-lot
//!   reject-rate and field-quality estimates.
//!
//! Both levels execute on a persistent [`ExecutionContext`] worker pool —
//! the one bound via [`ParallelLotRunner::with_context`] /
//! [`LotSweep::with_context`] (a `Session`'s pool, typically), or the
//! process-wide default pool.  A sweep therefore reuses the same parked
//! workers across all its `(y, n0)` points instead of respawning threads per
//! lot, and reject tabulation streams each record exactly once into
//! per-shard counting-sort accumulators merged at join.
//!
//! Configuration flows through the typed `lsiq_exec::RunConfig`; the
//! `LSIQ_LOT_THREADS` environment variable survives as a compatibility layer
//! consumed by [`ParallelLotRunner::new`] via [`RunConfig::from_env`].

use crate::bist_test::{SessionRecord, SignatureTester};
use crate::chip::Chip;
use crate::experiment::{RejectExperiment, RejectRow};
use crate::field::FieldOutcome;
use crate::lot::{ChipLot, ModelLotConfig, PhysicalLotConfig};
use crate::tester::{TestRecord, WaferTester};
use lsiq_bist::signature::SignatureDictionary;
use lsiq_exec::{ExecutionContext, RunConfig};
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_stats::rng::{Rng, SplitMix64};

/// Runs the per-chip stages of a production lot — generation, wafer test,
/// reject bookkeeping — sharded across pooled worker threads.
///
/// Because chip `i` draws only from stream `i` of the lot seed, the sharding
/// is invisible in the output: any thread count produces byte-identical
/// lots, test records and experiment tables.
///
/// ```
/// use lsiq_exec::ExecutionContext;
/// use lsiq_manufacturing::lot::{ChipLot, ModelLotConfig};
/// use lsiq_manufacturing::pipeline::ParallelLotRunner;
///
/// let config = ModelLotConfig {
///     chips: 1_000,
///     yield_fraction: 0.07,
///     n0: 8.0,
///     fault_universe_size: 5_000,
///     seed: 42,
/// };
/// let serial = ChipLot::from_model(&config);
/// // On a session's persistent pool…
/// let context = ExecutionContext::new(4);
/// let pooled = ParallelLotRunner::with_context(&context).generate_model_lot(&config);
/// // …or on the process-wide default pool with an explicit shard count.
/// let parallel = ParallelLotRunner::new()
///     .with_threads(4)
///     .generate_model_lot(&config);
/// assert_eq!(serial, pooled); // byte-identical at any thread count
/// assert_eq!(serial, parallel);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelLotRunner<'ctx> {
    threads: usize,
    context: Option<&'ctx ExecutionContext>,
}

impl Default for ParallelLotRunner<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'ctx> ParallelLotRunner<'ctx> {
    /// Minimum number of work items per shard; below this the scheduling
    /// overhead costs more than the parallelism recovers.
    pub(crate) const MIN_ITEMS_PER_SHARD: usize = 128;

    /// Creates a runner honouring the `LSIQ_LOT_THREADS` environment
    /// variable; unset, it uses one worker per available hardware thread.
    /// Work executes on the process-wide default pool
    /// ([`ExecutionContext::global`]).
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`](lsiq_exec::ConfigError) message when
    /// an `LSIQ_*` variable is set to an invalid value, since silently
    /// falling back would invalidate an intended scaling measurement.  The
    /// typed constructor [`with_context`](Self::with_context) never touches
    /// the environment.
    pub fn new() -> Self {
        let threads = match RunConfig::from_env() {
            Ok(config) => config.workers().unwrap_or(0),
            Err(error) => panic!("{error}"),
        };
        ParallelLotRunner {
            threads,
            context: None,
        }
    }

    /// Creates a runner bound to a persistent worker pool; the shard count
    /// follows the context's worker count unless overridden with
    /// [`with_threads`](Self::with_threads).  The environment is not
    /// consulted.
    pub fn with_context(context: &'ctx ExecutionContext) -> Self {
        ParallelLotRunner {
            threads: 0,
            context: Some(context),
        }
    }

    /// Overrides the worker-thread count; `0` restores the default (the
    /// bound context's worker count, or the available hardware parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker pool this runner executes on.
    fn execution_context(&self) -> &ExecutionContext {
        self.context.unwrap_or_else(|| ExecutionContext::global())
    }

    /// The configured worker count before any per-run clamping: the explicit
    /// override, or the pool's worker count.  Deliberately avoids touching
    /// [`ExecutionContext::global`] so that runs which fold back to a single
    /// inline shard never spawn the process-wide pool.
    fn requested_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else if let Some(context) = self.context {
            context.workers()
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The worker-thread count a run over `items` work items would use.
    pub fn threads_for(&self, items: usize) -> usize {
        self.requested_threads()
            .min(items.div_ceil(Self::MIN_ITEMS_PER_SHARD))
            .max(1)
    }

    /// Splits `count` indices into per-shard ranges, maps every range
    /// through `work` on the pool, and returns one result per shard in index
    /// order.  The building block of both the concatenating
    /// [`sharded`](Self::sharded) map and the fold-style accumulator merges
    /// ([`experiment`](Self::experiment)).
    pub(crate) fn sharded_chunks<T, F>(&self, count: usize, min_per_shard: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> T + Sync,
    {
        let threads = self
            .requested_threads()
            .min(count.div_ceil(min_per_shard.max(1)))
            .max(1);
        if threads <= 1 || count == 0 {
            return vec![work(0..count)];
        }
        let shard_size = count.div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..count)
            .step_by(shard_size)
            .map(|start| start..(start + shard_size).min(count))
            .collect();
        self.execution_context().scope_map(ranges, work)
    }

    /// Maps `count` indices through `work` (one call per contiguous index
    /// range, results concatenated in index order), sharded across the pool.
    fn sharded<T, F>(&self, count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
    {
        self.sharded_min(count, Self::MIN_ITEMS_PER_SHARD, work)
    }

    /// [`sharded`](Self::sharded) with an explicit minimum number of items
    /// per shard — `1` for coarse work items (whole lots) whose cost dwarfs
    /// the scheduling overhead.
    fn sharded_min<T, F>(&self, count: usize, min_per_shard: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
    {
        let mut shards = self.sharded_chunks(count, min_per_shard, work);
        if shards.len() == 1 {
            return shards.pop().expect("one shard");
        }
        let mut merged = Vec::with_capacity(count);
        for shard in shards.iter_mut() {
            merged.append(shard);
        }
        merged
    }

    /// Generates a model lot ([`ChipLot::from_model`]) with the chips sharded
    /// across threads.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configurations as [`ChipLot::from_model`].
    pub fn generate_model_lot(&self, config: &ModelLotConfig) -> ChipLot {
        ChipLot::validate_model(config);
        let chips = self.sharded(config.chips, |range| {
            range.map(|id| ChipLot::model_chip(config, id)).collect()
        });
        ChipLot::from_chips(chips, config.fault_universe_size)
    }

    /// Generates a physical lot ([`ChipLot::from_physical`]) with the chips
    /// sharded across threads.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configurations as
    /// [`ChipLot::from_physical`].
    pub fn generate_physical_lot(&self, config: &PhysicalLotConfig) -> ChipLot {
        let mapper = ChipLot::physical_mapper(config);
        let chips = self.sharded(config.chips, |range| {
            range
                .map(|id| ChipLot::physical_chip(config, &mapper, id))
                .collect()
        });
        ChipLot::from_chips(chips, config.fault_universe_size)
    }

    /// Wafer-tests a lot ([`WaferTester::test_lot`]) with the chips sharded
    /// across threads; records come back in lot order.
    pub fn test_lot(&self, dictionary: &FaultDictionary, lot: &ChipLot) -> Vec<TestRecord> {
        let tester = WaferTester::new(dictionary);
        let chips: &[Chip] = lot.chips();
        self.sharded(chips.len(), |range| tester.test_chips(&chips[range]))
    }

    /// BIST-tests a lot ([`SignatureTester::test_lot`]) with the chips
    /// sharded across threads; session records come back in lot order and
    /// are byte-identical at any worker count, exactly like
    /// [`test_lot`](Self::test_lot).
    pub fn test_lot_bist(
        &self,
        dictionary: &SignatureDictionary,
        lot: &ChipLot,
    ) -> Vec<SessionRecord> {
        let tester = SignatureTester::new(dictionary);
        let chips: &[Chip] = lot.chips();
        self.sharded(chips.len(), |range| tester.test_chips(&chips[range]))
    }

    /// Tabulates a reject experiment ([`RejectExperiment::tabulate`]) by
    /// streaming the records once instead of re-scanning them per
    /// checkpoint.
    ///
    /// Each worker folds its record shard into a first-fail histogram (a
    /// counting sort over pattern indices); the per-shard accumulators are
    /// merged at join and a single prefix-sum pass yields every checkpoint
    /// row — `O(records + patterns + checkpoints)` total, against the
    /// `O(records × checkpoints)` of the post-hoc scan.  The rows are
    /// byte-identical to [`RejectExperiment::tabulate`] (enforced by
    /// `tests/lot_differential.rs`).
    pub fn experiment(
        &self,
        records: &[TestRecord],
        coverage: &CoverageCurve,
        checkpoints: &[usize],
    ) -> RejectExperiment {
        let shard_histograms =
            self.sharded_chunks(records.len(), Self::MIN_ITEMS_PER_SHARD, |range| {
                let mut counts: Vec<usize> = Vec::new();
                for record in &records[range] {
                    if let Some(first) = record.first_fail {
                        if first >= counts.len() {
                            counts.resize(first + 1, 0);
                        }
                        counts[first] += 1;
                    }
                }
                counts
            });
        let mut fail_counts: Vec<usize> = Vec::new();
        for shard in shard_histograms {
            if shard.len() > fail_counts.len() {
                fail_counts.resize(shard.len(), 0);
            }
            for (total, count) in fail_counts.iter_mut().zip(shard) {
                *total += count;
            }
        }
        // cumulative_failed[k]: chips whose first failure precedes pattern k.
        let mut cumulative_failed = Vec::with_capacity(fail_counts.len() + 1);
        cumulative_failed.push(0usize);
        let mut running = 0usize;
        for count in &fail_counts {
            running += count;
            cumulative_failed.push(running);
        }
        let rows = checkpoints
            .iter()
            .map(|&patterns_applied| {
                let chips_failed =
                    cumulative_failed[patterns_applied.min(cumulative_failed.len() - 1)];
                RejectRow {
                    patterns_applied,
                    fault_coverage: coverage.coverage_after(patterns_applied),
                    chips_failed,
                    fraction_failed: if records.is_empty() {
                        0.0
                    } else {
                        chips_failed as f64 / records.len() as f64
                    },
                }
            })
            .collect();
        RejectExperiment::from_rows(rows, records.len())
    }

    /// Runs the full per-lot pipeline — generate a model lot, wafer-test it,
    /// tabulate the reject experiment at full resolution — with every stage
    /// sharded across this runner's threads.
    pub fn run_model_line(
        &self,
        config: &ModelLotConfig,
        dictionary: &FaultDictionary,
        coverage: &CoverageCurve,
    ) -> LotOutcome {
        let lot = self.generate_model_lot(config);
        let records = self.test_lot(dictionary, &lot);
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let experiment = self.experiment(&records, coverage, &checkpoints);
        LotOutcome::new(&lot, records, experiment)
    }
}

/// Everything one tested lot yields: the lot's observed ground truth, the
/// per-chip test records, the field outcome of shipping the passers, and the
/// cumulative-reject table.
#[derive(Debug, Clone, PartialEq)]
pub struct LotOutcome {
    /// Observed yield of the generated lot.
    pub observed_yield: f64,
    /// Observed mean fault count over defective chips.
    pub observed_n0: f64,
    /// Per-chip wafer-test records, in lot order.
    pub records: Vec<TestRecord>,
    /// Field outcome of shipping every passing chip.
    pub outcome: FieldOutcome,
    /// The cumulative-reject experiment table.
    pub experiment: RejectExperiment,
}

impl LotOutcome {
    fn new(lot: &ChipLot, records: Vec<TestRecord>, experiment: RejectExperiment) -> LotOutcome {
        let outcome = FieldOutcome::from_records(&records);
        LotOutcome {
            observed_yield: lot.observed_yield(),
            observed_n0: lot.observed_n0(),
            records,
            outcome,
            experiment,
        }
    }
}

/// One ground-truth point of a sweep: the dialled-in yield and `n0` of a
/// model lot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Probability that a chip is fault-free (the paper's `y`).
    pub yield_fraction: f64,
    /// Mean fault count of a defective chip (the paper's `n0`).
    pub n0: f64,
}

/// The result of one sweep point: the point, the derived lot seed, and the
/// lot's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The ground-truth point this lot was generated from.
    pub point: SweepPoint,
    /// The per-lot seed derived from the sweep's base seed.
    pub seed: u64,
    /// The tested lot's outcome.
    pub outcome: LotOutcome,
}

/// Fans whole lot experiments — one per `(y, n0)` grid point — across
/// threads, the second level of parallelism above [`ParallelLotRunner`].
///
/// Lot `i` of a sweep is seeded from stream `i` of the base seed, so sweep
/// results are byte-identical at any thread count, exactly like single-lot
/// runs.  Bind the sweep to a session's persistent pool with
/// [`with_context`](Self::with_context) and every point of the grid reuses
/// the same parked workers.
#[derive(Debug, Clone, Copy)]
pub struct LotSweep<'ctx> {
    /// Chips per lot.
    pub chips: usize,
    /// Size of the fault universe the chips' fault indices refer to.
    pub fault_universe_size: usize,
    /// Base seed; lot `i` uses the `i`-th stream of it.
    pub base_seed: u64,
    /// Worker threads to fan lots across (`0` defers to the bound context's
    /// worker count — or, without a context, to `LSIQ_LOT_THREADS`, then the
    /// available hardware parallelism).
    pub threads: usize,
    /// The persistent worker pool to fan out on; `None` falls back to the
    /// compatibility path (`LSIQ_LOT_THREADS` + the process-wide pool).
    pub context: Option<&'ctx ExecutionContext>,
}

impl<'ctx> LotSweep<'ctx> {
    /// Binds the sweep to a persistent worker pool.
    pub fn with_context(mut self, context: &'ctx ExecutionContext) -> Self {
        self.context = Some(context);
        self
    }

    /// Builds the cartesian grid of sweep points, `n0` varying fastest.
    pub fn grid(yields: &[f64], n0s: &[f64]) -> Vec<SweepPoint> {
        yields
            .iter()
            .flat_map(|&yield_fraction| {
                n0s.iter().map(move |&n0| SweepPoint { yield_fraction, n0 })
            })
            .collect()
    }

    /// The deterministic lot seed of sweep point `index`.
    pub fn lot_seed(&self, index: usize) -> u64 {
        SplitMix64::stream(self.base_seed, index as u64).next_u64()
    }

    /// Runs every sweep point against the given test programme, fanning the
    /// lots across the pool; results come back in point order.
    ///
    /// Each lot runs its own pipeline serially (the parallelism is across
    /// lots here), so a sweep of many small lots and a
    /// [`ParallelLotRunner`] run of one large lot saturate the hardware the
    /// same way.  A `threads` of `0` defers to the bound context's worker
    /// count (or `LSIQ_LOT_THREADS`, then the available hardware
    /// parallelism), exactly like the runner.
    pub fn run(
        &self,
        dictionary: &FaultDictionary,
        coverage: &CoverageCurve,
        points: &[SweepPoint],
    ) -> Vec<SweepResult> {
        // Fan lots (not chips) across threads: each worker runs whole
        // pipelines with a single-threaded runner.
        let fan_out = match self.context {
            Some(context) => ParallelLotRunner::with_context(context),
            None => ParallelLotRunner::new(), // honours LSIQ_LOT_THREADS
        }
        .with_threads(self.threads);
        let per_lot = ParallelLotRunner {
            threads: 1,
            context: None,
        };
        let run_point = |index: usize| -> SweepResult {
            let point = points[index];
            let seed = self.lot_seed(index);
            let config = ModelLotConfig {
                chips: self.chips,
                yield_fraction: point.yield_fraction,
                n0: point.n0,
                fault_universe_size: self.fault_universe_size,
                seed,
            };
            let outcome = per_lot.run_model_line(&config, dictionary, coverage);
            SweepResult {
                point,
                seed,
                outcome,
            }
        };
        // A sweep has few, heavy work items; shard at item granularity
        // rather than ParallelLotRunner::MIN_ITEMS_PER_SHARD.
        fan_out.sharded_min(points.len(), 1, |range| {
            range.map(run_point).collect::<Vec<_>>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_fault::ppsfp::PpsfpSimulator;
    use lsiq_fault::simulator::FaultSimulator;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn fixture() -> (FaultDictionary, CoverageCurve, usize) {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        (
            FaultDictionary::from_fault_list(&list),
            CoverageCurve::from_fault_list(&list, patterns.len()),
            universe.len(),
        )
    }

    fn model_config(universe: usize) -> ModelLotConfig {
        ModelLotConfig {
            chips: 700,
            yield_fraction: 0.3,
            n0: 4.0,
            fault_universe_size: universe,
            seed: 11,
        }
    }

    #[test]
    fn parallel_generation_matches_serial_at_every_thread_count() {
        let config = model_config(2_000);
        let serial = ChipLot::from_model(&config);
        for threads in [1, 2, 3, 8, 64] {
            let parallel = ParallelLotRunner::new()
                .with_threads(threads)
                .generate_model_lot(&config);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // The same through an explicit pool instead of the global one.
        for workers in [1, 2, 5] {
            let context = ExecutionContext::new(workers);
            let pooled = ParallelLotRunner::with_context(&context).generate_model_lot(&config);
            assert_eq!(serial, pooled, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_testing_and_experiment_match_serial() {
        let (dictionary, coverage, universe) = fixture();
        let config = model_config(universe);
        let lot = ChipLot::from_model(&config);
        let serial_records = WaferTester::new(&dictionary).test_lot(&lot);
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let serial_experiment =
            RejectExperiment::tabulate(&serial_records, &coverage, &checkpoints);
        for threads in [2, 5] {
            let runner = ParallelLotRunner::new().with_threads(threads);
            assert_eq!(serial_records, runner.test_lot(&dictionary, &lot));
            assert_eq!(
                serial_experiment,
                runner.experiment(&serial_records, &coverage, &checkpoints)
            );
        }
    }

    #[test]
    fn parallel_bist_testing_matches_serial_at_every_thread_count() {
        use crate::bist_test::SignatureTester;
        use lsiq_bist::signature::{BistPlan, SignatureDictionary};
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let dictionary = SignatureDictionary::build(
            &circuit,
            &universe,
            &patterns,
            &BistPlan {
                session_len: 8,
                signature_width: 8,
            },
        );
        let lot = ChipLot::from_model(&model_config(universe.len()));
        let serial = SignatureTester::new(&dictionary).test_lot(&lot);
        for threads in [2, 5] {
            let runner = ParallelLotRunner::new().with_threads(threads);
            assert_eq!(
                serial,
                runner.test_lot_bist(&dictionary, &lot),
                "threads = {threads}"
            );
        }
        let context = ExecutionContext::new(3);
        assert_eq!(
            serial,
            ParallelLotRunner::with_context(&context).test_lot_bist(&dictionary, &lot)
        );
    }

    #[test]
    fn streamed_experiment_handles_sparse_and_clamped_checkpoints() {
        let (dictionary, coverage, universe) = fixture();
        let config = model_config(universe);
        let lot = ChipLot::from_model(&config);
        let records = WaferTester::new(&dictionary).test_lot(&lot);
        let runner = ParallelLotRunner::new().with_threads(3);
        // Sparse, unsorted-looking and beyond-the-curve checkpoints all
        // reduce to the serial reference.
        for checkpoints in [vec![], vec![1], vec![5, 1, 500], vec![1_000_000]] {
            assert_eq!(
                RejectExperiment::tabulate(&records, &coverage, &checkpoints),
                runner.experiment(&records, &coverage, &checkpoints),
                "checkpoints = {checkpoints:?}"
            );
        }
        // Empty record sets produce all-zero rows, not NaNs.
        let empty = runner.experiment(&[], &coverage, &[1, 2]);
        assert_eq!(empty.total_chips(), 0);
        assert!(empty.rows().iter().all(|row| row.fraction_failed == 0.0));
    }

    #[test]
    fn run_model_line_is_consistent() {
        let (dictionary, coverage, universe) = fixture();
        let config = model_config(universe);
        let outcome = ParallelLotRunner::new().with_threads(4).run_model_line(
            &config,
            &dictionary,
            &coverage,
        );
        assert_eq!(outcome.records.len(), config.chips);
        assert_eq!(outcome.outcome.total, config.chips);
        assert_eq!(outcome.experiment.rows().len(), coverage.pattern_count());
        assert!((outcome.observed_yield - 0.3).abs() < 0.1);
    }

    #[test]
    fn sweep_is_thread_count_invariant_and_ordered() {
        let (dictionary, coverage, universe) = fixture();
        let points = LotSweep::grid(&[0.1, 0.3], &[2.0, 4.0, 8.0]);
        assert_eq!(points.len(), 6);
        let serial = LotSweep {
            chips: 150,
            fault_universe_size: universe,
            base_seed: 99,
            threads: 1,
            context: None,
        };
        let parallel = LotSweep {
            threads: 4,
            ..serial
        };
        let serial_results = serial.run(&dictionary, &coverage, &points);
        let parallel_results = parallel.run(&dictionary, &coverage, &points);
        assert_eq!(serial_results, parallel_results);
        // A sweep bound to a persistent pool reuses it across all points —
        // and across repeated runs — with identical results.
        let context = ExecutionContext::new(3);
        let pooled = LotSweep {
            threads: 0,
            ..serial
        }
        .with_context(&context);
        for _ in 0..2 {
            assert_eq!(serial_results, pooled.run(&dictionary, &coverage, &points));
        }
        for (result, point) in serial_results.iter().zip(&points) {
            assert_eq!(result.point, *point);
            assert_eq!(result.outcome.records.len(), 150);
        }
        // Distinct points get distinct seeds.
        assert_ne!(serial.lot_seed(0), serial.lot_seed(1));
    }

    #[test]
    fn threads_for_respects_override_and_small_lots() {
        let runner = ParallelLotRunner::new().with_threads(8);
        assert_eq!(runner.threads_for(100_000), 8);
        assert_eq!(runner.threads_for(1), 1);
        assert_eq!(runner.threads_for(0), 1);
        // Tiny lots never fan out past the shard minimum.
        assert!(runner.threads_for(256) <= 2);
        // A context-bound runner defaults to the pool's worker count.
        let context = ExecutionContext::new(3);
        assert_eq!(
            ParallelLotRunner::with_context(&context).threads_for(100_000),
            3
        );
    }
}
