//! The multi-threaded production-line pipeline.
//!
//! Estimating the paper's quality/coverage relationship (eq. 8, Table 1)
//! means testing whole lots of chips — an embarrassingly parallel workload,
//! since every chip of a lot draws from its own RNG stream
//! ([`Xoshiro256StarStar::stream`](lsiq_stats::rng::Xoshiro256StarStar::stream))
//! and is tested independently.  This module
//! exploits that at two levels:
//!
//! * [`ParallelLotRunner`] shards the chips of *one* lot across scoped worker
//!   threads — generation ([`ChipLot::from_model`] / physical pipeline),
//!   wafer testing ([`WaferTester`]) and reject-table bookkeeping
//!   ([`RejectExperiment`]) — producing byte-identical results to the serial
//!   path at any thread count (enforced by `tests/lot_differential.rs`).
//! * [`LotSweep`] fans *whole experiments* — a grid of `(y, n0)` ground
//!   truths, one lot each — across threads and aggregates the per-lot
//!   reject-rate and field-quality estimates.
//!
//! The worker-thread count follows the `LSIQ_LOT_THREADS` environment
//! variable (mirroring the fault-simulation engine knob `LSIQ_ENGINE`), and
//! defaults to the available hardware parallelism.

use crate::chip::Chip;
use crate::experiment::RejectExperiment;
use crate::field::FieldOutcome;
use crate::lot::{ChipLot, ModelLotConfig, PhysicalLotConfig};
use crate::tester::{TestRecord, WaferTester};
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_stats::rng::{Rng, SplitMix64};

/// Reads the `LSIQ_LOT_THREADS` override, if any.
///
/// # Panics
///
/// Panics when the variable is set but is not a positive integer, since
/// silently falling back would invalidate an intended scaling measurement.
pub fn lot_threads_from_env() -> Option<usize> {
    match std::env::var("LSIQ_LOT_THREADS") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(threads) if threads > 0 => Some(threads),
            _ => panic!(
                "LSIQ_LOT_THREADS: expected a positive integer, got {value:?} \
                 (unset it to use the available hardware parallelism)"
            ),
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(error @ std::env::VarError::NotUnicode(_)) => panic!("LSIQ_LOT_THREADS: {error}"),
    }
}

/// Runs the per-chip stages of a production lot — generation, wafer test,
/// reject bookkeeping — sharded across scoped worker threads.
///
/// Because chip `i` draws only from stream `i` of the lot seed, the sharding
/// is invisible in the output: any thread count produces byte-identical
/// lots, test records and experiment tables.
///
/// ```
/// use lsiq_manufacturing::lot::{ChipLot, ModelLotConfig};
/// use lsiq_manufacturing::pipeline::ParallelLotRunner;
///
/// let config = ModelLotConfig {
///     chips: 1_000,
///     yield_fraction: 0.07,
///     n0: 8.0,
///     fault_universe_size: 5_000,
///     seed: 42,
/// };
/// let serial = ChipLot::from_model(&config);
/// let parallel = ParallelLotRunner::new()
///     .with_threads(4)
///     .generate_model_lot(&config);
/// assert_eq!(serial, parallel); // byte-identical at any thread count
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelLotRunner {
    threads: usize,
}

impl Default for ParallelLotRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelLotRunner {
    /// Minimum number of work items per shard; below this the spawn overhead
    /// costs more than the parallelism recovers.
    const MIN_ITEMS_PER_SHARD: usize = 128;

    /// Creates a runner honouring the `LSIQ_LOT_THREADS` environment
    /// variable; unset, it uses one worker per available hardware thread.
    pub fn new() -> Self {
        ParallelLotRunner {
            threads: lot_threads_from_env().unwrap_or(0),
        }
    }

    /// Overrides the worker-thread count; `0` restores the default (the
    /// available hardware parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured worker count before any per-run clamping: the explicit
    /// override, or the available hardware parallelism.
    fn requested_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The worker-thread count a run over `items` work items would use.
    pub fn threads_for(&self, items: usize) -> usize {
        self.requested_threads()
            .min(items.div_ceil(Self::MIN_ITEMS_PER_SHARD))
            .max(1)
    }

    /// Maps `count` indices through `work` (one call per contiguous index
    /// range, results concatenated in index order), sharded across scoped
    /// threads.
    fn sharded<T, F>(&self, count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
    {
        self.sharded_min(count, Self::MIN_ITEMS_PER_SHARD, work)
    }

    /// [`sharded`](Self::sharded) with an explicit minimum number of items
    /// per shard — `1` for coarse work items (whole lots) whose cost dwarfs
    /// a thread spawn.
    fn sharded_min<T, F>(&self, count: usize, min_per_shard: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<T> + Sync,
    {
        let threads = self
            .requested_threads()
            .min(count.div_ceil(min_per_shard.max(1)))
            .max(1);
        if threads <= 1 || count == 0 {
            return work(0..count);
        }
        let shard_size = count.div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..count)
            .step_by(shard_size)
            .map(|start| start..(start + shard_size).min(count))
            .collect();
        let work = &work;
        let mut results: Vec<Vec<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(move || work(range)))
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("lot shard worker panicked"))
                .collect()
        });
        let mut merged = Vec::with_capacity(count);
        for shard in results.iter_mut() {
            merged.append(shard);
        }
        merged
    }

    /// Generates a model lot ([`ChipLot::from_model`]) with the chips sharded
    /// across threads.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configurations as [`ChipLot::from_model`].
    pub fn generate_model_lot(&self, config: &ModelLotConfig) -> ChipLot {
        ChipLot::validate_model(config);
        let chips = self.sharded(config.chips, |range| {
            range.map(|id| ChipLot::model_chip(config, id)).collect()
        });
        ChipLot::from_chips(chips, config.fault_universe_size)
    }

    /// Generates a physical lot ([`ChipLot::from_physical`]) with the chips
    /// sharded across threads.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid configurations as
    /// [`ChipLot::from_physical`].
    pub fn generate_physical_lot(&self, config: &PhysicalLotConfig) -> ChipLot {
        let mapper = ChipLot::physical_mapper(config);
        let chips = self.sharded(config.chips, |range| {
            range
                .map(|id| ChipLot::physical_chip(config, &mapper, id))
                .collect()
        });
        ChipLot::from_chips(chips, config.fault_universe_size)
    }

    /// Wafer-tests a lot ([`WaferTester::test_lot`]) with the chips sharded
    /// across threads; records come back in lot order.
    pub fn test_lot(&self, dictionary: &FaultDictionary, lot: &ChipLot) -> Vec<TestRecord> {
        let tester = WaferTester::new(dictionary);
        let chips: &[Chip] = lot.chips();
        self.sharded(chips.len(), |range| tester.test_chips(&chips[range]))
    }

    /// Tabulates a reject experiment ([`RejectExperiment::tabulate`]) with
    /// the checkpoints sharded across threads.
    pub fn experiment(
        &self,
        records: &[TestRecord],
        coverage: &CoverageCurve,
        checkpoints: &[usize],
    ) -> RejectExperiment {
        let rows = self.sharded(checkpoints.len(), |range| {
            checkpoints[range]
                .iter()
                .map(|&patterns_applied| {
                    RejectExperiment::row_at(records, coverage, patterns_applied)
                })
                .collect()
        });
        RejectExperiment::from_rows(rows, records.len())
    }

    /// Runs the full per-lot pipeline — generate a model lot, wafer-test it,
    /// tabulate the reject experiment at full resolution — with every stage
    /// sharded across this runner's threads.
    pub fn run_model_line(
        &self,
        config: &ModelLotConfig,
        dictionary: &FaultDictionary,
        coverage: &CoverageCurve,
    ) -> LotOutcome {
        let lot = self.generate_model_lot(config);
        let records = self.test_lot(dictionary, &lot);
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let experiment = self.experiment(&records, coverage, &checkpoints);
        LotOutcome::new(&lot, records, experiment)
    }
}

/// Everything one tested lot yields: the lot's observed ground truth, the
/// per-chip test records, the field outcome of shipping the passers, and the
/// cumulative-reject table.
#[derive(Debug, Clone, PartialEq)]
pub struct LotOutcome {
    /// Observed yield of the generated lot.
    pub observed_yield: f64,
    /// Observed mean fault count over defective chips.
    pub observed_n0: f64,
    /// Per-chip wafer-test records, in lot order.
    pub records: Vec<TestRecord>,
    /// Field outcome of shipping every passing chip.
    pub outcome: FieldOutcome,
    /// The cumulative-reject experiment table.
    pub experiment: RejectExperiment,
}

impl LotOutcome {
    fn new(lot: &ChipLot, records: Vec<TestRecord>, experiment: RejectExperiment) -> LotOutcome {
        let outcome = FieldOutcome::from_records(&records);
        LotOutcome {
            observed_yield: lot.observed_yield(),
            observed_n0: lot.observed_n0(),
            records,
            outcome,
            experiment,
        }
    }
}

/// One ground-truth point of a sweep: the dialled-in yield and `n0` of a
/// model lot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Probability that a chip is fault-free (the paper's `y`).
    pub yield_fraction: f64,
    /// Mean fault count of a defective chip (the paper's `n0`).
    pub n0: f64,
}

/// The result of one sweep point: the point, the derived lot seed, and the
/// lot's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The ground-truth point this lot was generated from.
    pub point: SweepPoint,
    /// The per-lot seed derived from the sweep's base seed.
    pub seed: u64,
    /// The tested lot's outcome.
    pub outcome: LotOutcome,
}

/// Fans whole lot experiments — one per `(y, n0)` grid point — across
/// threads, the second level of parallelism above [`ParallelLotRunner`].
///
/// Lot `i` of a sweep is seeded from stream `i` of the base seed, so sweep
/// results are byte-identical at any thread count, exactly like single-lot
/// runs.
#[derive(Debug, Clone, Copy)]
pub struct LotSweep {
    /// Chips per lot.
    pub chips: usize,
    /// Size of the fault universe the chips' fault indices refer to.
    pub fault_universe_size: usize,
    /// Base seed; lot `i` uses the `i`-th stream of it.
    pub base_seed: u64,
    /// Worker threads to fan lots across (`0` defers to `LSIQ_LOT_THREADS`,
    /// then the available hardware parallelism).
    pub threads: usize,
}

impl LotSweep {
    /// Builds the cartesian grid of sweep points, `n0` varying fastest.
    pub fn grid(yields: &[f64], n0s: &[f64]) -> Vec<SweepPoint> {
        yields
            .iter()
            .flat_map(|&yield_fraction| {
                n0s.iter().map(move |&n0| SweepPoint { yield_fraction, n0 })
            })
            .collect()
    }

    /// The deterministic lot seed of sweep point `index`.
    pub fn lot_seed(&self, index: usize) -> u64 {
        SplitMix64::stream(self.base_seed, index as u64).next_u64()
    }

    /// Runs every sweep point against the given test programme, fanning the
    /// lots across threads; results come back in point order.
    ///
    /// Each lot runs its own pipeline serially (the parallelism is across
    /// lots here), so a sweep of many small lots and a
    /// [`ParallelLotRunner`] run of one large lot saturate the hardware the
    /// same way.  A `threads` of `0` defers to `LSIQ_LOT_THREADS`, then the
    /// available hardware parallelism, exactly like the runner.
    pub fn run(
        &self,
        dictionary: &FaultDictionary,
        coverage: &CoverageCurve,
        points: &[SweepPoint],
    ) -> Vec<SweepResult> {
        // Fan lots (not chips) across threads: each worker runs whole
        // pipelines with a single-threaded runner.
        let fan_out = if self.threads > 0 {
            ParallelLotRunner::new().with_threads(self.threads)
        } else {
            ParallelLotRunner::new() // honours LSIQ_LOT_THREADS
        };
        let per_lot = ParallelLotRunner::new().with_threads(1);
        let run_point = |index: usize| -> SweepResult {
            let point = points[index];
            let seed = self.lot_seed(index);
            let config = ModelLotConfig {
                chips: self.chips,
                yield_fraction: point.yield_fraction,
                n0: point.n0,
                fault_universe_size: self.fault_universe_size,
                seed,
            };
            let outcome = per_lot.run_model_line(&config, dictionary, coverage);
            SweepResult {
                point,
                seed,
                outcome,
            }
        };
        // A sweep has few, heavy work items; shard at item granularity
        // rather than ParallelLotRunner::MIN_ITEMS_PER_SHARD.
        fan_out.sharded_min(points.len(), 1, |range| {
            range.map(run_point).collect::<Vec<_>>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_fault::ppsfp::PpsfpSimulator;
    use lsiq_fault::simulator::FaultSimulator;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn fixture() -> (FaultDictionary, CoverageCurve, usize) {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        (
            FaultDictionary::from_fault_list(&list),
            CoverageCurve::from_fault_list(&list, patterns.len()),
            universe.len(),
        )
    }

    fn model_config(universe: usize) -> ModelLotConfig {
        ModelLotConfig {
            chips: 700,
            yield_fraction: 0.3,
            n0: 4.0,
            fault_universe_size: universe,
            seed: 11,
        }
    }

    #[test]
    fn parallel_generation_matches_serial_at_every_thread_count() {
        let config = model_config(2_000);
        let serial = ChipLot::from_model(&config);
        for threads in [1, 2, 3, 8, 64] {
            let parallel = ParallelLotRunner::new()
                .with_threads(threads)
                .generate_model_lot(&config);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_testing_and_experiment_match_serial() {
        let (dictionary, coverage, universe) = fixture();
        let config = model_config(universe);
        let lot = ChipLot::from_model(&config);
        let serial_records = WaferTester::new(&dictionary).test_lot(&lot);
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let serial_experiment =
            RejectExperiment::tabulate(&serial_records, &coverage, &checkpoints);
        for threads in [2, 5] {
            let runner = ParallelLotRunner::new().with_threads(threads);
            assert_eq!(serial_records, runner.test_lot(&dictionary, &lot));
            assert_eq!(
                serial_experiment,
                runner.experiment(&serial_records, &coverage, &checkpoints)
            );
        }
    }

    #[test]
    fn run_model_line_is_consistent() {
        let (dictionary, coverage, universe) = fixture();
        let config = model_config(universe);
        let outcome = ParallelLotRunner::new().with_threads(4).run_model_line(
            &config,
            &dictionary,
            &coverage,
        );
        assert_eq!(outcome.records.len(), config.chips);
        assert_eq!(outcome.outcome.total, config.chips);
        assert_eq!(outcome.experiment.rows().len(), coverage.pattern_count());
        assert!((outcome.observed_yield - 0.3).abs() < 0.1);
    }

    #[test]
    fn sweep_is_thread_count_invariant_and_ordered() {
        let (dictionary, coverage, universe) = fixture();
        let points = LotSweep::grid(&[0.1, 0.3], &[2.0, 4.0, 8.0]);
        assert_eq!(points.len(), 6);
        let serial = LotSweep {
            chips: 150,
            fault_universe_size: universe,
            base_seed: 99,
            threads: 1,
        };
        let parallel = LotSweep {
            threads: 4,
            ..serial
        };
        let serial_results = serial.run(&dictionary, &coverage, &points);
        let parallel_results = parallel.run(&dictionary, &coverage, &points);
        assert_eq!(serial_results, parallel_results);
        for (result, point) in serial_results.iter().zip(&points) {
            assert_eq!(result.point, *point);
            assert_eq!(result.outcome.records.len(), 150);
        }
        // Distinct points get distinct seeds.
        assert_ne!(serial.lot_seed(0), serial.lot_seed(1));
    }

    #[test]
    fn threads_for_respects_override_and_small_lots() {
        let runner = ParallelLotRunner::new().with_threads(8);
        assert_eq!(runner.threads_for(100_000), 8);
        assert_eq!(runner.threads_for(1), 1);
        assert_eq!(runner.threads_for(0), 1);
        // Tiny lots never fan out past the shard minimum.
        assert!(runner.threads_for(256) <= 2);
    }
}
