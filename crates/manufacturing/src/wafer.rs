//! Wafer maps.
//!
//! A wafer map records how many physical defects landed on each chip site of
//! a wafer.  It mostly serves reporting and the clustering ablation: the
//! per-chip defect counts drawn from the clustered model exhibit the familiar
//! "bad neighbourhoods" of real wafer maps, while the Poisson-like model
//! (small `lambda`) spreads defects evenly.

use crate::defect::DefectModel;
use lsiq_stats::rng::Rng;

/// A rectangular wafer map of chip sites with per-site defect counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaferMap {
    rows: usize,
    columns: usize,
    defects: Vec<u64>,
}

impl WaferMap {
    /// Simulates a wafer of `rows x columns` chip sites, drawing every site's
    /// defect count from `model`.
    pub fn simulate<R: Rng + ?Sized>(
        rows: usize,
        columns: usize,
        model: &DefectModel,
        rng: &mut R,
    ) -> WaferMap {
        let defects = (0..rows * columns)
            .map(|_| model.sample_defect_count(rng))
            .collect();
        WaferMap {
            rows,
            columns,
            defects,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of chip sites.
    pub fn site_count(&self) -> usize {
        self.defects.len()
    }

    /// Defect count at `(row, column)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn defects_at(&self, row: usize, column: usize) -> u64 {
        assert!(
            row < self.rows && column < self.columns,
            "site out of range"
        );
        self.defects[row * self.columns + column]
    }

    /// Per-site defect counts in row-major order.
    pub fn defect_counts(&self) -> &[u64] {
        &self.defects
    }

    /// Fraction of defect-free sites (the wafer's observed yield).
    pub fn observed_yield(&self) -> f64 {
        if self.defects.is_empty() {
            return 0.0;
        }
        self.defects.iter().filter(|&&d| d == 0).count() as f64 / self.defects.len() as f64
    }

    /// Total defects on the wafer.
    pub fn total_defects(&self) -> u64 {
        self.defects.iter().sum()
    }

    /// Renders an ASCII map (`.` = good site, digits = defect count, `+` for
    /// ten or more), useful in examples and reports.
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        for row in 0..self.rows {
            for column in 0..self.columns {
                let defects = self.defects_at(row, column);
                let symbol = match defects {
                    0 => '.',
                    1..=9 => char::from(b'0' + defects as u8),
                    _ => '+',
                };
                out.push(symbol);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_stats::rng::Xoshiro256StarStar;

    fn sample_wafer(seed: u64) -> WaferMap {
        let model = DefectModel::for_target_yield(0.4, 1.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        WaferMap::simulate(20, 25, &model, &mut rng)
    }

    #[test]
    fn dimensions_and_counts() {
        let wafer = sample_wafer(1);
        assert_eq!(wafer.rows(), 20);
        assert_eq!(wafer.columns(), 25);
        assert_eq!(wafer.site_count(), 500);
        assert_eq!(wafer.defect_counts().len(), 500);
        let sum: u64 = wafer.defect_counts().iter().sum();
        assert_eq!(wafer.total_defects(), sum);
    }

    #[test]
    fn observed_yield_is_near_target() {
        let wafer = sample_wafer(7);
        // 500 sites at 40 percent target: allow generous sampling noise.
        assert!(
            (wafer.observed_yield() - 0.4).abs() < 0.1,
            "yield {}",
            wafer.observed_yield()
        );
    }

    #[test]
    fn ascii_map_has_one_row_per_wafer_row() {
        let wafer = sample_wafer(3);
        let art = wafer.ascii();
        assert_eq!(art.lines().count(), 20);
        assert!(art.lines().all(|line| line.chars().count() == 25));
        assert!(art.contains('.'));
    }

    #[test]
    fn seeded_wafer_statistics_are_pinned() {
        // Golden numbers for one seeded wafer: pins the negative-binomial
        // sampler and the map bookkeeping down to exact counts.
        let model = DefectModel::for_target_yield(0.4, 1.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(101);
        let wafer = WaferMap::simulate(16, 20, &model, &mut rng);
        assert_eq!(wafer.total_defects(), 490);
        assert_eq!(wafer.defects_at(0, 0), 4);
        assert_eq!(wafer.defects_at(7, 11), 0);
        assert_eq!(wafer.defect_counts().iter().max(), Some(&9));
        let good_sites = wafer.defect_counts().iter().filter(|&&d| d == 0).count();
        assert_eq!(good_sites, 125);
        assert!((wafer.observed_yield() - 125.0 / 320.0).abs() < 1e-15);
        // The clustered model leaves bad neighbourhoods: the ASCII map shows
        // both empty sites and heavy ones.
        let art = wafer.ascii();
        assert!(art.contains('.') && art.contains('9'));
    }

    #[test]
    #[should_panic(expected = "site out of range")]
    fn out_of_range_site_panics() {
        let wafer = sample_wafer(5);
        let _ = wafer.defects_at(20, 0);
    }

    #[test]
    fn empty_wafer_yield_is_zero() {
        let model = DefectModel::new(1.0, 1.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let wafer = WaferMap::simulate(0, 10, &model, &mut rng);
        assert_eq!(wafer.observed_yield(), 0.0);
        assert_eq!(wafer.site_count(), 0);
    }
}
