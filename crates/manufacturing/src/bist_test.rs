//! The BIST wafer tester: signature compare per test session.
//!
//! Where the Sentry-like [`WaferTester`](crate::tester::WaferTester)
//! observes every applied pattern and records the chip's first failing
//! *pattern*, a self-tested chip is observed only at MISR readouts: the
//! tester compares the chip's signature against the fault-free one after
//! each test session and records the first failing *session*.  Two things
//! follow for the quality experiment:
//!
//! * the reject table is coarser — a chip can only be rejected at a session
//!   boundary, never mid-session, and
//! * aliasing can mask a defective chip entirely: its responses differ, its
//!   signatures never do, and it ships as a test escape even though the
//!   pattern set "covers" its faults.
//!
//! Both effects are captured by the
//! [`SignatureDictionary`] the tester consults; which tester a run uses is
//! selected by [`TestMode`](lsiq_exec::TestMode) on the typed run
//! configuration (`LSIQ_TEST_MODE=stored|bist`).

use crate::chip::Chip;
use crate::lot::ChipLot;
use crate::tester::TestRecord;
use lsiq_bist::signature::SignatureDictionary;

/// The BIST outcome of a single chip: pass/fail per test session, recorded
/// as the first failing session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRecord {
    /// The chip's position in its lot.
    pub chip_id: usize,
    /// The first test session (zero-based, in readout order) whose signature
    /// differed from the fault-free one, or `None` if every readout matched.
    pub first_fail_session: Option<usize>,
    /// Whether the chip actually carries faults (ground truth, unknown to a
    /// real tester but available to the simulation for validation).
    pub is_defective: bool,
}

impl SessionRecord {
    /// The chip passed every signature readout.
    pub fn passed(&self) -> bool {
        self.first_fail_session.is_none()
    }

    /// The chip passed the self-test but is actually defective (a test
    /// escape — by weak coverage or by aliasing).
    pub fn is_escape(&self) -> bool {
        self.passed() && self.is_defective
    }

    /// Converts the session-level observation to a pattern-level
    /// [`TestRecord`] for the cumulative-reject tabulation: a chip failing
    /// session `s` is observed to fail once the session's last pattern has
    /// been applied — pattern index `(s + 1) · session_len − 1`, clamped to
    /// the final pattern for a trailing partial session.
    ///
    /// # Panics
    ///
    /// Panics if `session_len` is 0, like every other session API.
    pub fn to_test_record(&self, session_len: usize, pattern_count: usize) -> TestRecord {
        assert!(session_len >= 1, "a session must apply at least 1 pattern");
        TestRecord {
            chip_id: self.chip_id,
            first_fail: self.first_fail_session.map(|session| {
                ((session + 1) * session_len - 1).min(pattern_count.saturating_sub(1))
            }),
            is_defective: self.is_defective,
        }
    }
}

/// A BIST wafer tester bound to one self-test programme via its signature
/// dictionary.
///
/// Mirrors [`WaferTester`](crate::tester::WaferTester): under the paper's
/// single-fault-detectability assumption a chip's signature first diverges
/// at the earliest first-failing session over its faults, so the tester
/// consults the per-fault [`SignatureDictionary`] instead of folding every
/// chip's responses gate by gate.
#[derive(Debug, Clone)]
pub struct SignatureTester<'d> {
    dictionary: &'d SignatureDictionary,
}

impl<'d> SignatureTester<'d> {
    /// Creates a tester applying the self-test summarised by `dictionary`.
    pub fn new(dictionary: &'d SignatureDictionary) -> Self {
        SignatureTester { dictionary }
    }

    /// The dictionary this tester consults.
    pub fn dictionary(&self) -> &'d SignatureDictionary {
        self.dictionary
    }

    /// Tests a single chip.
    pub fn test_chip(&self, chip: &Chip) -> SessionRecord {
        SessionRecord {
            chip_id: chip.id(),
            first_fail_session: self.dictionary.first_failure_of_chip(chip.fault_indices()),
            is_defective: !chip.is_good(),
        }
    }

    /// Tests a slice of chips, in slice order.
    ///
    /// Each record depends only on its own chip, so a lot may be tested as
    /// one slice or as concatenated sub-slices with identical results —
    /// [`ParallelLotRunner`](crate::pipeline::ParallelLotRunner) relies on
    /// this to shard a lot across threads.
    pub fn test_chips(&self, chips: &[Chip]) -> Vec<SessionRecord> {
        chips.iter().map(|chip| self.test_chip(chip)).collect()
    }

    /// Tests every chip of a lot, in lot order.
    pub fn test_lot(&self, lot: &ChipLot) -> Vec<SessionRecord> {
        self.test_chips(lot.chips())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lot::ModelLotConfig;
    use lsiq_bist::signature::BistPlan;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn c17_dictionary(plan: BistPlan) -> (SignatureDictionary, usize) {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let dictionary = SignatureDictionary::build(&circuit, &universe, &patterns, &plan);
        (dictionary, universe.len())
    }

    fn strong_plan() -> BistPlan {
        BistPlan {
            session_len: 8,
            signature_width: 16,
        }
    }

    #[test]
    fn good_chips_pass_and_are_not_escapes() {
        let (dictionary, _) = c17_dictionary(strong_plan());
        let tester = SignatureTester::new(&dictionary);
        let record = tester.test_chip(&Chip::new(0, vec![], 0));
        assert!(record.passed());
        assert!(!record.is_escape());
        assert!(!record.is_defective);
        assert_eq!(tester.dictionary().sessions(), 4);
    }

    #[test]
    fn defective_chips_fail_at_their_earliest_fault_session() {
        let (dictionary, _) = c17_dictionary(strong_plan());
        let tester = SignatureTester::new(&dictionary);
        let chip = Chip::new(1, vec![0, 7, 11], 1);
        let record = tester.test_chip(&chip);
        let expected = [0usize, 7, 11]
            .iter()
            .filter_map(|&i| dictionary.first_failing_session(i))
            .min();
        assert_eq!(record.first_fail_session, expected);
        assert!(record.is_defective);
    }

    #[test]
    fn lot_testing_preserves_order_and_rejects_all_defectives() {
        let (dictionary, universe_len) = c17_dictionary(strong_plan());
        let tester = SignatureTester::new(&dictionary);
        let lot = ChipLot::from_model(&ModelLotConfig {
            chips: 200,
            yield_fraction: 0.4,
            n0: 3.0,
            fault_universe_size: universe_len,
            seed: 5,
        });
        let records = tester.test_lot(&lot);
        assert_eq!(records.len(), 200);
        for (index, record) in records.iter().enumerate() {
            assert_eq!(record.chip_id, index);
        }
        // The exhaustive 16-bit self-test aliases nothing on c17, so every
        // defective chip fails and every good chip passes.
        assert!(records.iter().all(|r| r.passed() != r.is_defective));
    }

    #[test]
    fn session_records_convert_to_pattern_records() {
        let record = SessionRecord {
            chip_id: 3,
            first_fail_session: Some(2),
            is_defective: true,
        };
        // Session 2 of 8-pattern sessions completes at pattern index 23.
        assert_eq!(record.to_test_record(8, 32).first_fail, Some(23));
        // A trailing partial session clamps to the last applied pattern.
        assert_eq!(record.to_test_record(8, 20).first_fail, Some(19));
        let passing = SessionRecord {
            chip_id: 4,
            first_fail_session: None,
            is_defective: false,
        };
        let converted = passing.to_test_record(8, 32);
        assert_eq!(converted.first_fail, None);
        assert_eq!(converted.chip_id, 4);
        assert!(!converted.is_defective);
    }

    #[test]
    #[should_panic(expected = "at least 1 pattern")]
    fn zero_length_sessions_panic_in_conversion() {
        let record = SessionRecord {
            chip_id: 0,
            first_fail_session: Some(1),
            is_defective: true,
        };
        let _ = record.to_test_record(0, 32);
    }

    #[test]
    fn narrow_signatures_can_ship_defective_chips() {
        // A 4-bit signature over long sessions aliases some faults; a chip
        // carrying only aliased faults escapes.
        let (dictionary, _) = c17_dictionary(BistPlan {
            session_len: 32,
            signature_width: 4,
        });
        let tester = SignatureTester::new(&dictionary);
        let aliased = dictionary.aliased_indices();
        if let Some(&fault) = aliased.first() {
            let record = tester.test_chip(&Chip::new(0, vec![fault], 1));
            assert!(record.is_escape(), "aliased fault {fault} must escape");
        }
        // Regardless of whether c17 aliases at this seed, the dictionary's
        // bookkeeping must agree with the tester's outcomes.
        assert_eq!(
            dictionary.signature_detected_count() + aliased.len(),
            dictionary.raw_detected_count()
        );
    }
}
