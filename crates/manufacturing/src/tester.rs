//! A Sentry-like wafer tester.
//!
//! The tester applies an ordered pattern set to every chip of a lot and
//! records the first pattern at which each chip fails — exactly the data the
//! paper collected on the Fairchild Sentry test system ("the test pattern
//! number, on which the chip first failed, was recorded", Section 7).
//!
//! A chip carrying a set of stuck-at faults fails a pattern exactly when the
//! pattern detects at least one of those faults, so the tester consults the
//! first-failing-pattern dictionary produced by the fault simulator instead
//! of re-simulating every chip gate by gate.

use crate::chip::Chip;
use crate::lot::ChipLot;
use lsiq_fault::dictionary::FaultDictionary;

/// The wafer-test outcome of a single chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestRecord {
    /// The chip's position in its lot.
    pub chip_id: usize,
    /// The first pattern (zero-based, in application order) at which the chip
    /// failed, or `None` if it passed the whole sequence.
    pub first_fail: Option<usize>,
    /// Whether the chip actually carries faults (ground truth, unknown to a
    /// real tester but available to the simulation for validation).
    pub is_defective: bool,
}

impl TestRecord {
    /// The chip passed every applied pattern.
    pub fn passed(&self) -> bool {
        self.first_fail.is_none()
    }

    /// The chip passed the tests but is actually defective (a test escape).
    pub fn is_escape(&self) -> bool {
        self.passed() && self.is_defective
    }
}

/// A wafer tester bound to one ordered pattern set via its fault dictionary.
#[derive(Debug, Clone)]
pub struct WaferTester<'d> {
    dictionary: &'d FaultDictionary,
}

impl<'d> WaferTester<'d> {
    /// Creates a tester that applies the pattern set summarised by
    /// `dictionary`.
    pub fn new(dictionary: &'d FaultDictionary) -> Self {
        WaferTester { dictionary }
    }

    /// Tests a single chip.
    pub fn test_chip(&self, chip: &Chip) -> TestRecord {
        TestRecord {
            chip_id: chip.id(),
            first_fail: self.dictionary.first_failure_of_chip(chip.fault_indices()),
            is_defective: !chip.is_good(),
        }
    }

    /// Tests a slice of chips, in slice order.
    ///
    /// Each record depends only on its own chip, so a lot may be tested as
    /// one slice or as concatenated sub-slices with identical results —
    /// [`ParallelLotRunner`](crate::pipeline::ParallelLotRunner) relies on
    /// this to shard a lot across threads.
    pub fn test_chips(&self, chips: &[Chip]) -> Vec<TestRecord> {
        chips.iter().map(|chip| self.test_chip(chip)).collect()
    }

    /// Tests every chip of a lot, in lot order.
    pub fn test_lot(&self, lot: &ChipLot) -> Vec<TestRecord> {
        self.test_chips(lot.chips())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lot::ModelLotConfig;
    use lsiq_fault::ppsfp::PpsfpSimulator;
    use lsiq_fault::simulator::FaultSimulator;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn c17_dictionary() -> (FaultDictionary, usize) {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..32).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        (FaultDictionary::from_fault_list(&list), universe.len())
    }

    #[test]
    fn good_chips_pass_and_are_not_escapes() {
        let (dictionary, universe_len) = c17_dictionary();
        let tester = WaferTester::new(&dictionary);
        let good = Chip::new(0, vec![], 0);
        let record = tester.test_chip(&good);
        assert!(record.passed());
        assert!(!record.is_escape());
        assert!(!record.is_defective);
        let _ = universe_len;
    }

    #[test]
    fn defective_chips_fail_at_their_earliest_fault() {
        let (dictionary, _) = c17_dictionary();
        let tester = WaferTester::new(&dictionary);
        let chip = Chip::new(1, vec![0, 7, 11], 1);
        let record = tester.test_chip(&chip);
        let expected = [0usize, 7, 11]
            .iter()
            .filter_map(|&i| dictionary.first_failing_pattern(i))
            .min();
        assert_eq!(record.first_fail, expected);
        assert!(record.is_defective);
    }

    #[test]
    fn lot_testing_preserves_order_and_counts() {
        let (dictionary, universe_len) = c17_dictionary();
        let tester = WaferTester::new(&dictionary);
        let lot = ChipLot::from_model(&ModelLotConfig {
            chips: 200,
            yield_fraction: 0.4,
            n0: 3.0,
            fault_universe_size: universe_len,
            seed: 5,
        });
        let records = tester.test_lot(&lot);
        assert_eq!(records.len(), 200);
        for (index, record) in records.iter().enumerate() {
            assert_eq!(record.chip_id, index);
        }
        // With an exhaustive dictionary every defective chip fails.
        assert!(records.iter().all(|r| r.passed() != r.is_defective));
    }

    #[test]
    fn escapes_appear_when_the_pattern_set_is_weak() {
        // A dictionary built from a single pattern leaves most faults
        // undetected, so some defective chips must escape.
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = [Pattern::zeros(5)].into_iter().collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let dictionary = FaultDictionary::from_fault_list(&list);
        let tester = WaferTester::new(&dictionary);
        let lot = ChipLot::from_model(&ModelLotConfig {
            chips: 300,
            yield_fraction: 0.3,
            n0: 2.0,
            fault_universe_size: universe.len(),
            seed: 8,
        });
        let records = tester.test_lot(&lot);
        let escapes = records.iter().filter(|r| r.is_escape()).count();
        assert!(escapes > 0, "expected at least one escape");
    }
}
