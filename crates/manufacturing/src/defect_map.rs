//! Mapping physical defects to logical stuck-at faults.

use crate::defect::{DefectKind, FaultsPerDefect};
use lsiq_stats::dist::{Categorical, Sample};
use lsiq_stats::rng::Rng;

/// Maps physical defects to sets of logical fault indices.
///
/// A defect is assigned a kind (metal short, break, …) and produces one or
/// more stuck-at faults at sites drawn from the fault universe.  Spatial
/// correlation is approximated by drawing the extra faults of the same defect
/// from a window of nearby fault indices: the fault universe enumerates
/// faults gate by gate, so index proximity is a stand-in for layout
/// proximity.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectToFaultMapper {
    universe_size: usize,
    faults_per_defect: FaultsPerDefect,
    locality_window: usize,
    kind_weights: Categorical,
}

impl DefectToFaultMapper {
    /// Creates a mapper over a fault universe of `universe_size` candidate
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `universe_size` is zero.
    pub fn new(universe_size: usize, faults_per_defect: FaultsPerDefect) -> Self {
        assert!(universe_size > 0, "fault universe must not be empty");
        DefectToFaultMapper {
            universe_size,
            faults_per_defect,
            locality_window: 32,
            kind_weights: Categorical::new(&DefectKind::ALL.map(|(_, w)| w))
                .expect("static weights are valid"),
        }
    }

    /// Overrides the locality window used for the extra faults of a defect.
    pub fn with_locality_window(mut self, window: usize) -> Self {
        self.locality_window = window.max(1);
        self
    }

    /// The average number of logical faults one defect produces.
    pub fn mean_faults_per_defect(&self) -> f64 {
        self.faults_per_defect.mean()
    }

    /// Maps one defect to its defect kind and fault indices.
    pub fn map_defect<R: Rng + ?Sized>(&self, rng: &mut R) -> (DefectKind, Vec<usize>) {
        let kind = DefectKind::ALL[self.kind_weights.sample(rng)].0;
        let fault_count = self.faults_per_defect.sample(rng) as usize;
        let anchor = rng.next_index(self.universe_size);
        let mut faults = Vec::with_capacity(fault_count);
        faults.push(anchor);
        for _ in 1..fault_count {
            // Extra faults cluster around the anchor within the locality
            // window, clamped to the universe.
            let offset = rng.next_index(2 * self.locality_window + 1) as isize
                - self.locality_window as isize;
            let index =
                (anchor as isize + offset).clamp(0, self.universe_size as isize - 1) as usize;
            faults.push(index);
        }
        (kind, faults)
    }

    /// Maps a whole chip's worth of defects to fault indices (possibly with
    /// duplicates; [`Chip::new`](crate::chip::Chip::new) deduplicates).
    pub fn map_defects<R: Rng + ?Sized>(&self, defect_count: u64, rng: &mut R) -> Vec<usize> {
        let mut faults = Vec::new();
        for _ in 0..defect_count {
            let (_, mut defect_faults) = self.map_defect(rng);
            faults.append(&mut defect_faults);
        }
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_stats::rng::Xoshiro256StarStar;

    fn mapper(extra: f64) -> DefectToFaultMapper {
        DefectToFaultMapper::new(1_000, FaultsPerDefect::new(extra).expect("valid"))
    }

    #[test]
    fn every_defect_produces_at_least_one_fault() {
        let mapper = mapper(0.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..1_000 {
            let (_, faults) = mapper.map_defect(&mut rng);
            assert_eq!(faults.len(), 1);
            assert!(faults[0] < 1_000);
        }
    }

    #[test]
    fn extra_faults_stay_near_the_anchor() {
        let mapper = mapper(3.0).with_locality_window(8);
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        for _ in 0..500 {
            let (_, faults) = mapper.map_defect(&mut rng);
            let anchor = faults[0] as isize;
            for &fault in &faults[1..] {
                assert!(
                    (fault as isize - anchor).abs() <= 8 || fault == 0 || fault == 999,
                    "fault {fault} too far from anchor {anchor}"
                );
            }
        }
    }

    #[test]
    fn mean_faults_per_defect_is_reported() {
        assert!((mapper(2.0).mean_faults_per_defect() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn map_defects_accumulates_all_defects() {
        let mapper = mapper(0.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let faults = mapper.map_defects(5, &mut rng);
        assert_eq!(faults.len(), 5);
        assert!(mapper.map_defects(0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn zero_universe_panics() {
        let _ = DefectToFaultMapper::new(0, FaultsPerDefect::new(0.0).expect("valid"));
    }
}
