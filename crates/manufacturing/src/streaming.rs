//! Streaming, memory-bounded lot execution.
//!
//! The in-memory pipeline ([`ParallelLotRunner::run_model_line`]) holds a
//! whole [`ChipLot`] and its test records at once — fine for the paper's
//! 277-chip Table 1 run, impossible for the billion-chip planning sweeps a
//! production service fields.  [`StreamingLotExecutor`] evaluates the same
//! model lot in fixed-size blocks instead: each block's chips are generated
//! from their per-chip RNG streams, wafer-tested against the fault
//! dictionary, and immediately folded into running integer accumulators —
//! a first-fail counting-sort histogram, good/defective/fault-count tallies
//! and the field-outcome counters.  No chip outlives its fold, so peak
//! memory is `O(workers × patterns)` regardless of lot size.
//!
//! Every accumulator is an integer sum, and integer addition is associative
//! and commutative, so the block structure and the worker sharding are
//! invisible in the output: the statistics are **byte-identical** to the
//! in-memory path at any block length and any worker count (enforced by
//! `tests/streaming_differential.rs`).  The final divisions (observed
//! yield, `n0`, reject fractions) are performed once, from the same integer
//! totals in the same order as the in-memory code.

use crate::experiment::{RejectExperiment, RejectRow};
use crate::field::FieldOutcome;
use crate::lot::{ChipLot, ModelLotConfig};
use crate::pipeline::ParallelLotRunner;
use lsiq_exec::ExecutionContext;
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_obs::{Counter, Span};

/// Fixed-size blocks dispatched (`⌈chips / block_len⌉` per lot — invariant
/// at any worker count, though not across block lengths).
static BLOCKS: Counter = Counter::new("streaming.blocks");
/// Chips generated, tested and folded across all streamed lots.
static CHIPS: Counter = Counter::new("streaming.chips");
/// One block's generate-test-fold fork-join round.
static BLOCK_SPAN: Span = Span::new("streaming.block");

/// Everything a streamed lot yields: the observed ground truth, the field
/// outcome of shipping the passers, and the cumulative-reject table — the
/// same statistics as [`LotOutcome`](crate::pipeline::LotOutcome), minus
/// the per-chip records (which a streamed run never materializes).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedLot {
    /// Number of chips evaluated.
    pub chips: usize,
    /// Observed yield of the generated lot.
    pub observed_yield: f64,
    /// Observed mean fault count over defective chips.
    pub observed_n0: f64,
    /// Observed mean fault count over all chips (the paper's `n_av`).
    pub observed_nav: f64,
    /// Field outcome of shipping every passing chip.
    pub outcome: FieldOutcome,
    /// The cumulative-reject experiment table at the requested checkpoints.
    pub experiment: RejectExperiment,
}

/// Per-shard (and running) integer accumulators of a streamed lot.
///
/// Everything here is a plain sum over chips, so shard results merge by
/// element-wise addition in any order without changing the totals.
#[derive(Debug, Default)]
struct LotFold {
    good: usize,
    defective: usize,
    total_faults: usize,
    shipped: usize,
    escapes: usize,
    /// `fail_counts[p]`: chips whose first failing pattern is exactly `p`.
    fail_counts: Vec<usize>,
}

impl LotFold {
    /// Folds one chip's generation and wafer test into the accumulators.
    fn absorb(&mut self, config: &ModelLotConfig, dictionary: &FaultDictionary, id: usize) {
        let chip = ChipLot::model_chip(config, id);
        if chip.is_good() {
            self.good += 1;
        } else {
            self.defective += 1;
            self.total_faults += chip.fault_count();
        }
        match dictionary.first_failure_of_chip(chip.fault_indices()) {
            None => {
                self.shipped += 1;
                if !chip.is_good() {
                    self.escapes += 1;
                }
            }
            Some(first) => {
                if first >= self.fail_counts.len() {
                    self.fail_counts.resize(first + 1, 0);
                }
                self.fail_counts[first] += 1;
            }
        }
    }

    /// Merges another fold into this one (element-wise integer addition).
    fn merge(&mut self, other: LotFold) {
        self.good += other.good;
        self.defective += other.defective;
        self.total_faults += other.total_faults;
        self.shipped += other.shipped;
        self.escapes += other.escapes;
        if other.fail_counts.len() > self.fail_counts.len() {
            self.fail_counts.resize(other.fail_counts.len(), 0);
        }
        for (total, count) in self.fail_counts.iter_mut().zip(other.fail_counts) {
            *total += count;
        }
    }
}

/// Evaluates model lots in fixed-size blocks folded into running
/// statistics — the memory-bounded counterpart of
/// [`ParallelLotRunner::run_model_line`].
///
/// ```
/// use lsiq_fault::dictionary::FaultDictionary;
/// use lsiq_fault::ppsfp::PpsfpSimulator;
/// use lsiq_fault::simulator::FaultSimulator;
/// use lsiq_fault::universe::FaultUniverse;
/// use lsiq_fault::coverage::CoverageCurve;
/// use lsiq_manufacturing::lot::ModelLotConfig;
/// use lsiq_manufacturing::streaming::StreamingLotExecutor;
/// use lsiq_netlist::library;
/// use lsiq_sim::pattern::{Pattern, PatternSet};
///
/// let circuit = library::c17();
/// let universe = FaultUniverse::full(&circuit);
/// let patterns: PatternSet = (0..16).map(|v| Pattern::from_integer(v, 5)).collect();
/// let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
/// let coverage = CoverageCurve::from_fault_list(&list, patterns.len());
/// let dictionary = FaultDictionary::from_fault_list(&list);
/// let config = ModelLotConfig {
///     chips: 10_000,
///     yield_fraction: 0.3,
///     n0: 2.0,
///     fault_universe_size: universe.len(),
///     seed: 1981,
/// };
/// let streamed = StreamingLotExecutor::new()
///     .with_block_len(1_000)
///     .stream_model_lot(&config, &dictionary, &coverage, &[4, 8, 16]);
/// assert_eq!(streamed.chips, 10_000);
/// assert_eq!(streamed.outcome.total, 10_000);
/// assert_eq!(streamed.experiment.rows().len(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamingLotExecutor<'ctx> {
    runner: ParallelLotRunner<'ctx>,
    block_len: usize,
}

impl Default for StreamingLotExecutor<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'ctx> StreamingLotExecutor<'ctx> {
    /// The default block length: large enough to amortize the fork-join per
    /// block, small enough that a block is milliseconds of work.
    pub const DEFAULT_BLOCK_LEN: usize = 65_536;

    /// Creates an executor on the process-wide default pool, honouring the
    /// `LSIQ_LOT_THREADS` environment variable exactly like
    /// [`ParallelLotRunner::new`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`](lsiq_exec::ConfigError) message when
    /// an `LSIQ_*` variable is set to an invalid value.
    pub fn new() -> Self {
        StreamingLotExecutor {
            runner: ParallelLotRunner::new(),
            block_len: Self::DEFAULT_BLOCK_LEN,
        }
    }

    /// Creates an executor bound to a persistent worker pool; the
    /// environment is not consulted.
    pub fn with_context(context: &'ctx ExecutionContext) -> Self {
        StreamingLotExecutor {
            runner: ParallelLotRunner::with_context(context),
            block_len: Self::DEFAULT_BLOCK_LEN,
        }
    }

    /// Overrides the worker-thread count; `0` restores the default.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.runner = self.runner.with_threads(threads);
        self
    }

    /// Sets the block length (chips evaluated per fork-join round); `0` is
    /// clamped to 1.  The choice bounds memory and batches scheduling — it
    /// never changes the statistics.
    pub fn with_block_len(mut self, block_len: usize) -> Self {
        self.block_len = block_len.max(1);
        self
    }

    /// The configured block length.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Streams the model lot described by `config` through the wafer test
    /// summarised by `dictionary`, folding every chip into running
    /// statistics, and tabulates the cumulative-reject experiment at
    /// `checkpoints` (pattern counts, exactly as
    /// [`ParallelLotRunner::experiment`]).
    ///
    /// The returned statistics are byte-identical to generating the whole
    /// lot, testing it and tabulating in memory — at any block length and
    /// any worker count — while peak memory stays `O(workers × patterns)`.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid model configurations as
    /// [`ChipLot::from_model`].
    pub fn stream_model_lot(
        &self,
        config: &ModelLotConfig,
        dictionary: &FaultDictionary,
        coverage: &CoverageCurve,
        checkpoints: &[usize],
    ) -> StreamedLot {
        ChipLot::validate_model(config);
        let mut fold = LotFold::default();
        let mut start = 0usize;
        while start < config.chips {
            let block = (config.chips - start).min(self.block_len);
            BLOCKS.incr();
            CHIPS.add(block as u64);
            let _timer = BLOCK_SPAN.start();
            let shard_folds = self.runner.sharded_chunks(
                block,
                ParallelLotRunner::MIN_ITEMS_PER_SHARD,
                |range| {
                    let mut shard = LotFold::default();
                    for offset in range {
                        shard.absorb(config, dictionary, start + offset);
                    }
                    shard
                },
            );
            for shard in shard_folds {
                fold.merge(shard);
            }
            start += block;
        }
        Self::tabulate(config.chips, fold, coverage, checkpoints)
    }

    /// Derives the final statistics from the merged integer accumulators —
    /// the same prefix-sum and divisions as the in-memory path.
    fn tabulate(
        chips: usize,
        fold: LotFold,
        coverage: &CoverageCurve,
        checkpoints: &[usize],
    ) -> StreamedLot {
        // cumulative_failed[k]: chips whose first failure precedes pattern k.
        let mut cumulative_failed = Vec::with_capacity(fold.fail_counts.len() + 1);
        cumulative_failed.push(0usize);
        let mut running = 0usize;
        for count in &fold.fail_counts {
            running += count;
            cumulative_failed.push(running);
        }
        let rows = checkpoints
            .iter()
            .map(|&patterns_applied| {
                let chips_failed =
                    cumulative_failed[patterns_applied.min(cumulative_failed.len() - 1)];
                RejectRow {
                    patterns_applied,
                    fault_coverage: coverage.coverage_after(patterns_applied),
                    chips_failed,
                    fraction_failed: if chips == 0 {
                        0.0
                    } else {
                        chips_failed as f64 / chips as f64
                    },
                }
            })
            .collect();
        StreamedLot {
            chips,
            observed_yield: if chips == 0 {
                0.0
            } else {
                fold.good as f64 / chips as f64
            },
            observed_n0: if fold.defective == 0 {
                0.0
            } else {
                fold.total_faults as f64 / fold.defective as f64
            },
            observed_nav: if chips == 0 {
                0.0
            } else {
                fold.total_faults as f64 / chips as f64
            },
            outcome: FieldOutcome {
                shipped: fold.shipped,
                escapes: fold.escapes,
                rejected: chips - fold.shipped,
                total: chips,
            },
            experiment: RejectExperiment::from_rows(rows, chips),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_fault::ppsfp::PpsfpSimulator;
    use lsiq_fault::simulator::FaultSimulator;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn fixture() -> (FaultDictionary, CoverageCurve, usize) {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..96)
            .map(|v| Pattern::from_integer(v * 11 + 5, 10))
            .collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let coverage = CoverageCurve::from_fault_list(&list, patterns.len());
        let dictionary = FaultDictionary::from_fault_list(&list);
        (dictionary, coverage, universe.len())
    }

    #[test]
    fn streamed_statistics_match_the_in_memory_pipeline_exactly() {
        let (dictionary, coverage, universe) = fixture();
        let config = ModelLotConfig {
            chips: 3_001,
            yield_fraction: 0.25,
            n0: 4.0,
            fault_universe_size: universe,
            seed: 1981,
        };
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        let runner = ParallelLotRunner::new().with_threads(2);
        let reference = runner.run_model_line(&config, &dictionary, &coverage);
        for block in [1, 7, 128, 1_000, 100_000] {
            let streamed = StreamingLotExecutor::new()
                .with_threads(2)
                .with_block_len(block)
                .stream_model_lot(&config, &dictionary, &coverage, &checkpoints);
            assert_eq!(streamed.chips, config.chips);
            assert_eq!(streamed.outcome, reference.outcome, "block {block}");
            assert_eq!(streamed.experiment, reference.experiment, "block {block}");
            assert_eq!(
                streamed.observed_yield.to_bits(),
                reference.observed_yield.to_bits(),
                "block {block}"
            );
            assert_eq!(
                streamed.observed_n0.to_bits(),
                reference.observed_n0.to_bits(),
                "block {block}"
            );
        }
    }

    #[test]
    fn empty_lot_streams_to_zeroes() {
        let (dictionary, coverage, universe) = fixture();
        let config = ModelLotConfig {
            chips: 0,
            yield_fraction: 0.5,
            n0: 2.0,
            fault_universe_size: universe,
            seed: 3,
        };
        let streamed =
            StreamingLotExecutor::new().stream_model_lot(&config, &dictionary, &coverage, &[1, 8]);
        assert_eq!(streamed.chips, 0);
        assert_eq!(streamed.observed_yield, 0.0);
        assert_eq!(streamed.observed_n0, 0.0);
        assert_eq!(streamed.outcome.total, 0);
        assert!(streamed
            .experiment
            .rows()
            .iter()
            .all(|row| row.chips_failed == 0 && row.fraction_failed == 0.0));
    }

    #[test]
    fn block_length_is_clamped_and_reported() {
        let executor = StreamingLotExecutor::new().with_block_len(0);
        assert_eq!(executor.block_len(), 1);
        assert_eq!(
            StreamingLotExecutor::default().block_len(),
            StreamingLotExecutor::DEFAULT_BLOCK_LEN
        );
    }
}
