//! A simulated manufactured chip.

/// One manufactured chip: the set of logical stuck-at faults it carries,
/// expressed as indices into the fault universe the lot was generated
/// against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chip {
    id: usize,
    fault_indices: Vec<usize>,
    defect_count: u64,
}

impl Chip {
    /// Creates a chip record.  Duplicate fault indices are removed so the
    /// fault count matches the paper's notion of "n faults present".
    pub fn new(id: usize, mut fault_indices: Vec<usize>, defect_count: u64) -> Chip {
        fault_indices.sort_unstable();
        fault_indices.dedup();
        Chip {
            id,
            fault_indices,
            defect_count,
        }
    }

    /// The chip's position in its lot.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Indices (into the lot's fault universe) of the faults on this chip.
    pub fn fault_indices(&self) -> &[usize] {
        &self.fault_indices
    }

    /// Number of logical faults on the chip (the paper's `n`).
    pub fn fault_count(&self) -> usize {
        self.fault_indices.len()
    }

    /// Number of physical defects that produced those faults (zero when the
    /// chip was generated directly from the statistical model).
    pub fn defect_count(&self) -> u64 {
        self.defect_count
    }

    /// A chip is good when it carries no faults.
    pub fn is_good(&self) -> bool {
        self.fault_indices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_chip_has_no_faults() {
        let chip = Chip::new(0, vec![], 0);
        assert!(chip.is_good());
        assert_eq!(chip.fault_count(), 0);
        assert_eq!(chip.id(), 0);
        assert_eq!(chip.defect_count(), 0);
    }

    #[test]
    fn duplicate_faults_are_merged() {
        let chip = Chip::new(3, vec![5, 2, 5, 9, 2], 2);
        assert_eq!(chip.fault_count(), 3);
        assert_eq!(chip.fault_indices(), &[2, 5, 9]);
        assert!(!chip.is_good());
        assert_eq!(chip.defect_count(), 2);
    }
}
