//! Physical defect kinds and defect-count models.

use lsiq_stats::dist::{NegativeBinomial, Poisson, Sample};
use lsiq_stats::rng::Rng;
use lsiq_stats::StatsError;

/// The physical defect mechanisms the paper's introduction lists for MOS LSI
/// (shorts or breaks in metallisation or diffusion, shorts to the substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectKind {
    /// Short between adjacent metallisation runs.
    MetalShort,
    /// Break (open) in a metallisation run.
    MetalBreak,
    /// Short or break in a diffusion run.
    DiffusionDefect,
    /// Short between substrate and metallisation or diffusion.
    SubstrateShort,
    /// Gate-oxide pinhole.
    OxidePinhole,
}

impl DefectKind {
    /// All modelled defect kinds, with relative frequencies roughly matching
    /// the metal-dominated failure Pareto of early-1980s MOS processes.
    pub const ALL: [(DefectKind, f64); 5] = [
        (DefectKind::MetalShort, 0.35),
        (DefectKind::MetalBreak, 0.25),
        (DefectKind::DiffusionDefect, 0.20),
        (DefectKind::SubstrateShort, 0.10),
        (DefectKind::OxidePinhole, 0.10),
    ];
}

/// A model of the number of physical defects landing on one chip.
///
/// The defect count is negative binomial: Poisson defects whose density
/// varies from wafer to wafer with a gamma distribution of squared
/// coefficient of variation `lambda`.  Its zero class reproduces the paper's
/// yield formula (eq. 3): `y = (1 + lambda * D0 * A)^(-1/lambda)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectModel {
    mean_defects: f64,
    clustering: f64,
}

impl DefectModel {
    /// Creates a model from the mean defect count per chip (`D0 * A`) and the
    /// clustering parameter `lambda` (variance of `D0` over `D0²`).
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is not finite and positive.
    pub fn new(mean_defects: f64, clustering: f64) -> Result<Self, StatsError> {
        // Validate through the distribution constructor.
        let _ = NegativeBinomial::from_mean_clustering(mean_defects, clustering)?;
        Ok(DefectModel {
            mean_defects,
            clustering,
        })
    }

    /// Creates a model that produces (in expectation) the requested yield,
    /// inverting eq. 3 for the mean defect count at a given clustering.
    ///
    /// # Errors
    ///
    /// Returns an error if `target_yield` is not strictly between 0 and 1 or
    /// `clustering` is not finite and positive.
    pub fn for_target_yield(target_yield: f64, clustering: f64) -> Result<Self, StatsError> {
        if !(target_yield > 0.0 && target_yield < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "target_yield",
                value: target_yield,
                expected: "a value strictly between 0 and 1",
            });
        }
        if !clustering.is_finite() || clustering <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "clustering",
                value: clustering,
                expected: "a finite value > 0",
            });
        }
        // y = (1 + lambda * m)^(-1/lambda)  =>  m = (y^(-lambda) - 1) / lambda.
        let mean_defects = (target_yield.powf(-clustering) - 1.0) / clustering;
        DefectModel::new(mean_defects, clustering)
    }

    /// Mean number of defects per chip (`D0 * A`).
    pub fn mean_defects(&self) -> f64 {
        self.mean_defects
    }

    /// The clustering parameter `lambda`.
    pub fn clustering(&self) -> f64 {
        self.clustering
    }

    /// The predicted yield from eq. 3.
    pub fn predicted_yield(&self) -> f64 {
        (1.0 + self.clustering * self.mean_defects).powf(-1.0 / self.clustering)
    }

    /// Samples the number of defects on one chip.
    pub fn sample_defect_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        NegativeBinomial::from_mean_clustering(self.mean_defects, self.clustering)
            .expect("parameters validated at construction")
            .sample(rng)
    }
}

/// A model of how many logical stuck-at faults a single physical defect
/// produces: `1 + Poisson(extra_mean)`, so every defect produces at least one
/// fault and dense layouts (the paper's "fine-line technology" discussion)
/// can be modelled by raising `extra_mean`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultsPerDefect {
    extra_mean: f64,
}

impl FaultsPerDefect {
    /// Creates the model; `extra_mean` is the mean number of faults beyond
    /// the guaranteed one (`0` makes every defect exactly one fault).
    ///
    /// # Errors
    ///
    /// Returns an error if `extra_mean` is negative or not finite.
    pub fn new(extra_mean: f64) -> Result<Self, StatsError> {
        if !extra_mean.is_finite() || extra_mean < 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "extra_mean",
                value: extra_mean,
                expected: "a finite value >= 0",
            });
        }
        Ok(FaultsPerDefect { extra_mean })
    }

    /// Mean number of faults produced per defect.
    pub fn mean(&self) -> f64 {
        1.0 + self.extra_mean
    }

    /// Samples the fault count of one defect.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.extra_mean == 0.0 {
            1
        } else {
            1 + Poisson::new(self.extra_mean)
                .expect("extra_mean validated at construction")
                .sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_stats::rng::Xoshiro256StarStar;

    #[test]
    fn defect_kind_weights_sum_to_one() {
        let total: f64 = DefectKind::ALL.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(DefectModel::new(0.0, 1.0).is_err());
        assert!(DefectModel::new(1.0, -1.0).is_err());
        assert!(DefectModel::for_target_yield(0.0, 1.0).is_err());
        assert!(DefectModel::for_target_yield(1.0, 1.0).is_err());
        assert!(DefectModel::for_target_yield(0.5, 0.0).is_err());
        assert!(FaultsPerDefect::new(-0.1).is_err());
    }

    #[test]
    fn predicted_yield_matches_equation_three() {
        let model = DefectModel::new(2.0, 0.5).expect("valid");
        let expected = (1.0f64 + 0.5 * 2.0).powf(-2.0);
        assert!((model.predicted_yield() - expected).abs() < 1e-12);
        assert_eq!(model.mean_defects(), 2.0);
        assert_eq!(model.clustering(), 0.5);
    }

    #[test]
    fn target_yield_inversion_round_trips() {
        for &(target, lambda) in &[(0.07, 1.0), (0.2, 0.5), (0.8, 2.0)] {
            let model = DefectModel::for_target_yield(target, lambda).expect("valid");
            assert!(
                (model.predicted_yield() - target).abs() < 1e-10,
                "target {target}: predicted {}",
                model.predicted_yield()
            );
        }
    }

    #[test]
    fn sampled_zero_fraction_matches_predicted_yield() {
        let model = DefectModel::for_target_yield(0.3, 1.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let trials = 50_000;
        let zero = (0..trials)
            .filter(|_| model.sample_defect_count(&mut rng) == 0)
            .count();
        let fraction = zero as f64 / trials as f64;
        assert!((fraction - 0.3).abs() < 0.01, "fraction {fraction}");
    }

    #[test]
    fn faults_per_defect_is_at_least_one() {
        let model = FaultsPerDefect::new(1.5).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let draws: Vec<u64> = (0..20_000).map(|_| model.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&d| d >= 1));
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
        assert!((model.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_extra_faults_is_deterministic() {
        let model = FaultsPerDefect::new(0.0).expect("valid");
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(model.sample(&mut rng), 1);
        }
    }
}
