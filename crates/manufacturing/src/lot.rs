//! Chip-lot generation.
//!
//! Two generators are provided:
//!
//! * [`ChipLot::from_model`] draws chips directly from the paper's
//!   statistical model (yield `y`, shifted-Poisson fault count with mean
//!   `n0`), giving experiments a known ground truth to validate the
//!   estimation procedure against, and
//! * [`ChipLot::from_physical`] runs the physical pipeline (clustered
//!   defects → defect-to-fault mapping), in which `y` and `n0` are emergent
//!   quantities, as on a real processing line.
//!
//! Chip `i` of a lot draws only from its own RNG stream,
//! [`Xoshiro256StarStar::stream`]`(seed, i)`, so a chip's faults are a pure
//! function of `(config, i)` — independent of how many chips precede it and
//! of which thread generates it.  That is what lets
//! [`ParallelLotRunner`](crate::pipeline::ParallelLotRunner) shard a lot
//! across threads and still produce byte-identical results.

use crate::chip::Chip;
use crate::defect::{DefectModel, FaultsPerDefect};
use crate::defect_map::DefectToFaultMapper;
use lsiq_stats::dist::{Poisson, Sample};
use lsiq_stats::rng::{sample_indices, Rng, Xoshiro256StarStar};

/// Configuration for a lot drawn directly from the paper's statistical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelLotConfig {
    /// Number of chips in the lot (the paper tested 277).
    pub chips: usize,
    /// Probability that a chip is fault-free (the yield `y`).
    pub yield_fraction: f64,
    /// Average number of faults on a *defective* chip (the paper's `n0`).
    pub n0: f64,
    /// Size of the fault universe the fault indices refer to (`N`).
    pub fault_universe_size: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

/// Configuration for a lot produced by the physical defect pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalLotConfig {
    /// Number of chips in the lot.
    pub chips: usize,
    /// Physical defect model (mean defects per chip and clustering).
    pub defect_model: DefectModel,
    /// Mean number of *extra* logical faults per defect beyond the first.
    pub extra_faults_per_defect: f64,
    /// Size of the fault universe the fault indices refer to (`N`).
    pub fault_universe_size: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

/// A lot of simulated chips sharing one fault universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipLot {
    chips: Vec<Chip>,
    fault_universe_size: usize,
}

impl ChipLot {
    /// Generates a lot directly from the paper's statistical model: each chip
    /// is good with probability `y`; otherwise its fault count is drawn from
    /// the shifted Poisson of eq. 1 (mean `n0`) and that many distinct fault
    /// sites are chosen uniformly from the universe.
    ///
    /// Chip `i` draws from its own [`Xoshiro256StarStar::stream`], so the
    /// generated lot is identical whether the chips are produced serially or
    /// sharded across threads by
    /// [`ParallelLotRunner`](crate::pipeline::ParallelLotRunner).
    ///
    /// ```
    /// use lsiq_manufacturing::lot::{ChipLot, ModelLotConfig};
    ///
    /// let lot = ChipLot::from_model(&ModelLotConfig {
    ///     chips: 277, // the paper's Section 7 lot size
    ///     yield_fraction: 0.07,
    ///     n0: 8.0,
    ///     fault_universe_size: 5_000,
    ///     seed: 1981,
    /// });
    /// assert_eq!(lot.len(), 277);
    /// // Defective chips carry at least one fault (the shifted Poisson).
    /// assert!(lot.chips().iter().all(|c| c.is_good() || c.fault_count() >= 1));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the fault universe is empty, `yield_fraction` is outside
    /// `[0, 1]`, or `n0 < 1` (a defective chip has at least one fault).
    pub fn from_model(config: &ModelLotConfig) -> ChipLot {
        Self::validate_model(config);
        let chips = (0..config.chips)
            .map(|id| Self::model_chip(config, id))
            .collect();
        ChipLot {
            chips,
            fault_universe_size: config.fault_universe_size,
        }
    }

    /// Checks a model-lot configuration, panicking on invalid parameters.
    pub(crate) fn validate_model(config: &ModelLotConfig) {
        assert!(
            config.fault_universe_size > 0,
            "fault universe must not be empty"
        );
        assert!(
            (0.0..=1.0).contains(&config.yield_fraction),
            "yield must be a probability"
        );
        assert!(
            config.n0 >= 1.0,
            "n0 is the mean fault count of defective chips and must be >= 1"
        );
    }

    /// Generates chip `id` of the model lot described by `config` from the
    /// chip's own RNG stream.  The caller must have validated `config`.
    pub(crate) fn model_chip(config: &ModelLotConfig, id: usize) -> Chip {
        let mut rng = Xoshiro256StarStar::stream(config.seed, id as u64);
        if rng.next_bool(config.yield_fraction) {
            Chip::new(id, Vec::new(), 0)
        } else {
            // Shifted Poisson: n = 1 + Poisson(n0 - 1).
            let extra = config.n0 - 1.0;
            let fault_count = 1 + if extra > 0.0 {
                Poisson::new(extra)
                    .expect("extra is positive")
                    .sample(&mut rng) as usize
            } else {
                0
            };
            let fault_count = fault_count.min(config.fault_universe_size);
            let faults = sample_indices(config.fault_universe_size, fault_count, &mut rng);
            Chip::new(id, faults, 0)
        }
    }

    /// Generates a lot through the physical pipeline: clustered defect counts
    /// per chip, each defect mapped to one or more logical faults.
    ///
    /// Like [`ChipLot::from_model`], chip `i` draws from stream `i` of the
    /// lot seed, so serial and parallel generation agree byte for byte.
    ///
    /// ```
    /// use lsiq_manufacturing::defect::DefectModel;
    /// use lsiq_manufacturing::lot::{ChipLot, PhysicalLotConfig};
    ///
    /// let lot = ChipLot::from_physical(&PhysicalLotConfig {
    ///     chips: 500,
    ///     defect_model: DefectModel::for_target_yield(0.25, 1.0).unwrap(),
    ///     extra_faults_per_defect: 2.0,
    ///     fault_universe_size: 3_000,
    ///     seed: 7,
    /// });
    /// // y and n0 are emergent here, not dialled in.
    /// assert!(lot.observed_yield() > 0.1 && lot.observed_yield() < 0.4);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the fault universe is empty or `extra_faults_per_defect` is
    /// negative.
    pub fn from_physical(config: &PhysicalLotConfig) -> ChipLot {
        let mapper = Self::physical_mapper(config);
        let chips = (0..config.chips)
            .map(|id| Self::physical_chip(config, &mapper, id))
            .collect();
        ChipLot {
            chips,
            fault_universe_size: config.fault_universe_size,
        }
    }

    /// Builds (and thereby validates) the defect-to-fault mapper of a
    /// physical-lot configuration.
    pub(crate) fn physical_mapper(config: &PhysicalLotConfig) -> DefectToFaultMapper {
        assert!(
            config.fault_universe_size > 0,
            "fault universe must not be empty"
        );
        let faults_per_defect = FaultsPerDefect::new(config.extra_faults_per_defect)
            .expect("extra_faults_per_defect must be finite and non-negative");
        DefectToFaultMapper::new(config.fault_universe_size, faults_per_defect)
    }

    /// Generates chip `id` of the physical lot described by `config` from the
    /// chip's own RNG stream.
    pub(crate) fn physical_chip(
        config: &PhysicalLotConfig,
        mapper: &DefectToFaultMapper,
        id: usize,
    ) -> Chip {
        let mut rng = Xoshiro256StarStar::stream(config.seed, id as u64);
        let defect_count = config.defect_model.sample_defect_count(&mut rng);
        let faults = mapper.map_defects(defect_count, &mut rng);
        Chip::new(id, faults, defect_count)
    }

    /// Assembles a lot from already generated chips (the parallel runner's
    /// merge step).  The chips must be in lot order.
    pub(crate) fn from_chips(chips: Vec<Chip>, fault_universe_size: usize) -> ChipLot {
        debug_assert!(chips.iter().enumerate().all(|(i, c)| c.id() == i));
        ChipLot {
            chips,
            fault_universe_size,
        }
    }

    /// Number of chips in the lot.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Returns `true` if the lot contains no chips.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// The chips in lot order.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// The chip at position `index`.
    pub fn get(&self, index: usize) -> Option<&Chip> {
        self.chips.get(index)
    }

    /// Size of the fault universe the chips' fault indices refer to.
    pub fn fault_universe_size(&self) -> usize {
        self.fault_universe_size
    }

    /// Fraction of fault-free chips (the observed yield).
    pub fn observed_yield(&self) -> f64 {
        if self.chips.is_empty() {
            return 0.0;
        }
        self.chips.iter().filter(|chip| chip.is_good()).count() as f64 / self.chips.len() as f64
    }

    /// Average number of faults over the *defective* chips (the observed
    /// counterpart of the paper's `n0`), or zero if every chip is good.
    pub fn observed_n0(&self) -> f64 {
        let defective: Vec<&Chip> = self.chips.iter().filter(|chip| !chip.is_good()).collect();
        if defective.is_empty() {
            return 0.0;
        }
        defective
            .iter()
            .map(|chip| chip.fault_count())
            .sum::<usize>() as f64
            / defective.len() as f64
    }

    /// Average number of faults over *all* chips (the paper's `n_av`, eq. 2).
    pub fn observed_nav(&self) -> f64 {
        if self.chips.is_empty() {
            return 0.0;
        }
        self.chips
            .iter()
            .map(|chip| chip.fault_count())
            .sum::<usize>() as f64
            / self.chips.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_lot(chips: usize, seed: u64) -> ChipLot {
        ChipLot::from_model(&ModelLotConfig {
            chips,
            yield_fraction: 0.3,
            n0: 6.0,
            fault_universe_size: 2_000,
            seed,
        })
    }

    #[test]
    fn model_lot_matches_requested_parameters() {
        let lot = model_lot(5_000, 1);
        assert_eq!(lot.len(), 5_000);
        assert!(
            (lot.observed_yield() - 0.3).abs() < 0.03,
            "yield {}",
            lot.observed_yield()
        );
        assert!(
            (lot.observed_n0() - 6.0).abs() < 0.2,
            "n0 {}",
            lot.observed_n0()
        );
        // eq. 2: n_av = (1 - y) * n0.
        let expected_nav = (1.0 - lot.observed_yield()) * lot.observed_n0();
        assert!((lot.observed_nav() - expected_nav).abs() < 1e-9);
    }

    #[test]
    fn model_lot_is_deterministic_per_seed() {
        assert_eq!(model_lot(100, 9), model_lot(100, 9));
        assert_ne!(model_lot(100, 9), model_lot(100, 10));
    }

    #[test]
    fn defective_chips_have_at_least_one_fault() {
        let lot = model_lot(500, 3);
        for chip in lot.chips() {
            if !chip.is_good() {
                assert!(chip.fault_count() >= 1);
            }
            assert!(chip
                .fault_indices()
                .iter()
                .all(|&f| f < lot.fault_universe_size()));
        }
    }

    #[test]
    fn physical_lot_yield_tracks_defect_model() {
        let defect_model = DefectModel::for_target_yield(0.25, 1.0).expect("valid");
        let lot = ChipLot::from_physical(&PhysicalLotConfig {
            chips: 4_000,
            defect_model,
            extra_faults_per_defect: 2.0,
            fault_universe_size: 3_000,
            seed: 21,
        });
        assert!(
            (lot.observed_yield() - 0.25).abs() < 0.03,
            "yield {}",
            lot.observed_yield()
        );
        // With about three faults per defect and clustered defects, defective
        // chips must average well over one fault.
        assert!(lot.observed_n0() > 2.0, "n0 {}", lot.observed_n0());
        // Physical chips carry their defect counts.
        assert!(lot.chips().iter().any(|chip| chip.defect_count() > 0));
    }

    #[test]
    fn accessors_and_empty_lot() {
        let lot = model_lot(10, 2);
        assert!(lot.get(0).is_some());
        assert!(lot.get(10).is_none());
        assert!(!lot.is_empty());
        let empty = ChipLot::from_model(&ModelLotConfig {
            chips: 0,
            yield_fraction: 0.5,
            n0: 2.0,
            fault_universe_size: 10,
            seed: 1,
        });
        assert!(empty.is_empty());
        assert_eq!(empty.observed_yield(), 0.0);
        assert_eq!(empty.observed_n0(), 0.0);
        assert_eq!(empty.observed_nav(), 0.0);
    }

    #[test]
    #[should_panic(expected = "n0 is the mean fault count")]
    fn n0_below_one_is_rejected() {
        let _ = ChipLot::from_model(&ModelLotConfig {
            chips: 10,
            yield_fraction: 0.5,
            n0: 0.5,
            fault_universe_size: 10,
            seed: 1,
        });
    }
}
