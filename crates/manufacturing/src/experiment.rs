//! The Table-1 style cumulative-reject experiment.
//!
//! Section 5 of the paper: apply an ordered pattern set to a lot of chips,
//! record each chip's first failing pattern, and tabulate the *cumulative
//! fraction of rejected chips* against the *cumulative fault coverage* of the
//! patterns applied so far.  The resulting table (the paper's Table 1) is the
//! experimental input to the `n0` estimation procedure in `lsiq-core`.

use crate::tester::TestRecord;
use lsiq_fault::coverage::CoverageCurve;

/// One row of the experiment table: after reaching a given cumulative fault
/// coverage, how many chips have failed so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejectRow {
    /// Number of patterns applied up to and including this checkpoint.
    pub patterns_applied: usize,
    /// Cumulative fault coverage of those patterns (the paper's `f`).
    pub fault_coverage: f64,
    /// Cumulative number of chips that failed by this checkpoint.
    pub chips_failed: usize,
    /// Cumulative fraction of chips that failed (the paper's `P(f)` sample).
    pub fraction_failed: f64,
}

/// The full cumulative-reject experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectExperiment {
    rows: Vec<RejectRow>,
    total_chips: usize,
}

impl RejectExperiment {
    /// Tabulates the experiment from per-chip test records and the coverage
    /// curve of the applied pattern set.
    ///
    /// `checkpoints` lists the pattern counts at which rows are emitted; pass
    /// every pattern index for a full-resolution curve or a handful of counts
    /// for a Table-1 style summary.  Checkpoints are clamped to the curve.
    pub fn tabulate(
        records: &[TestRecord],
        coverage: &CoverageCurve,
        checkpoints: &[usize],
    ) -> RejectExperiment {
        let rows = checkpoints
            .iter()
            .map(|&patterns_applied| Self::row_at(records, coverage, patterns_applied))
            .collect();
        RejectExperiment {
            rows,
            total_chips: records.len(),
        }
    }

    /// Computes the single checkpoint row at `patterns_applied` by scanning
    /// every record — the `O(records)`-per-checkpoint reference that
    /// [`ParallelLotRunner::experiment`](crate::pipeline::ParallelLotRunner::experiment)
    /// reproduces with one streamed counting-sort pass over the records.
    pub(crate) fn row_at(
        records: &[TestRecord],
        coverage: &CoverageCurve,
        patterns_applied: usize,
    ) -> RejectRow {
        let chips_failed = records
            .iter()
            .filter(|record| match record.first_fail {
                Some(first) => first < patterns_applied,
                None => false,
            })
            .count();
        let fraction_failed = if records.is_empty() {
            0.0
        } else {
            chips_failed as f64 / records.len() as f64
        };
        RejectRow {
            patterns_applied,
            fault_coverage: coverage.coverage_after(patterns_applied),
            chips_failed,
            fraction_failed,
        }
    }

    /// Assembles an experiment from already computed rows (the parallel
    /// runner's merge step).  Rows must be in checkpoint order.
    pub(crate) fn from_rows(rows: Vec<RejectRow>, total_chips: usize) -> RejectExperiment {
        RejectExperiment { rows, total_chips }
    }

    /// Tabulates the experiment at every pattern count from 1 to the end of
    /// the coverage curve.
    pub fn full_resolution(records: &[TestRecord], coverage: &CoverageCurve) -> RejectExperiment {
        let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
        RejectExperiment::tabulate(records, coverage, &checkpoints)
    }

    /// The tabulated rows in checkpoint order.
    pub fn rows(&self) -> &[RejectRow] {
        &self.rows
    }

    /// Number of chips tested.
    pub fn total_chips(&self) -> usize {
        self.total_chips
    }

    /// `(fault coverage, cumulative fraction failed)` pairs — the experiment
    /// points plotted in the paper's Fig. 5.
    pub fn coverage_vs_fraction(&self) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .map(|row| (row.fault_coverage, row.fraction_failed))
            .collect()
    }

    /// Renders the experiment as a text table in the format of the paper's
    /// Table 1.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Fault Coverage (percent) | Cumulative Chips Failed | Cumulative Fraction\n");
        out.push_str("-------------------------|-------------------------|--------------------\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:>24.1} | {:>23} | {:>19.2}\n",
                row.fault_coverage * 100.0,
                row.chips_failed,
                row.fraction_failed
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lot::{ChipLot, ModelLotConfig};
    use crate::tester::WaferTester;
    use lsiq_fault::dictionary::FaultDictionary;
    use lsiq_fault::ppsfp::PpsfpSimulator;
    use lsiq_fault::simulator::FaultSimulator;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::{Pattern, PatternSet};

    fn run_experiment(chips: usize, yield_fraction: f64, seed: u64) -> RejectExperiment {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..256)
            .map(|v| Pattern::from_integer(v * 7 + 3, 10))
            .collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let coverage = CoverageCurve::from_fault_list(&list, patterns.len());
        let dictionary = FaultDictionary::from_fault_list(&list);
        let lot = ChipLot::from_model(&ModelLotConfig {
            chips,
            yield_fraction,
            n0: 5.0,
            fault_universe_size: universe.len(),
            seed,
        });
        let records = WaferTester::new(&dictionary).test_lot(&lot);
        RejectExperiment::full_resolution(&records, &coverage)
    }

    #[test]
    fn fraction_failed_is_monotone_and_bounded() {
        let experiment = run_experiment(300, 0.3, 7);
        let mut previous = 0.0;
        for row in experiment.rows() {
            assert!(row.fraction_failed + 1e-15 >= previous);
            assert!(row.fraction_failed <= 1.0);
            assert!(
                (row.fraction_failed - row.chips_failed as f64 / experiment.total_chips() as f64)
                    .abs()
                    < 1e-12
            );
            previous = row.fraction_failed;
        }
    }

    #[test]
    fn final_fraction_cannot_exceed_defective_fraction() {
        let experiment = run_experiment(400, 0.4, 3);
        let last = experiment.rows().last().expect("rows exist");
        // At most 60 percent of chips are defective, so at most that many can
        // ever fail (sampling noise stays well inside 15 points).
        assert!(last.fraction_failed <= 0.75);
        assert!(last.fraction_failed > 0.3);
    }

    #[test]
    fn checkpoint_tabulation_matches_full_resolution() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..16).map(|v| Pattern::from_integer(v, 5)).collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let coverage = CoverageCurve::from_fault_list(&list, patterns.len());
        let dictionary = FaultDictionary::from_fault_list(&list);
        let lot = ChipLot::from_model(&ModelLotConfig {
            chips: 100,
            yield_fraction: 0.5,
            n0: 2.0,
            fault_universe_size: universe.len(),
            seed: 11,
        });
        let records = WaferTester::new(&dictionary).test_lot(&lot);
        let full = RejectExperiment::full_resolution(&records, &coverage);
        let sampled = RejectExperiment::tabulate(&records, &coverage, &[4, 8, 16]);
        assert_eq!(sampled.rows().len(), 3);
        for row in sampled.rows() {
            let full_row = &full.rows()[row.patterns_applied - 1];
            assert_eq!(row.chips_failed, full_row.chips_failed);
            assert!((row.fault_coverage - full_row.fault_coverage).abs() < 1e-12);
        }
    }

    #[test]
    fn table_rendering_contains_headers_and_rows() {
        let experiment = run_experiment(50, 0.3, 1);
        let sampled = RejectExperiment::tabulate(
            &[],
            &CoverageCurve::from_fault_list(
                &lsiq_fault::list::FaultList::new(&FaultUniverse::full(&library::c17())),
                0,
            ),
            &[],
        );
        assert_eq!(sampled.total_chips(), 0);
        let table = experiment.to_table();
        assert!(table.contains("Fault Coverage"));
        assert!(table.lines().count() > 10);
        assert_eq!(
            experiment.coverage_vs_fraction().len(),
            experiment.rows().len()
        );
    }
}
