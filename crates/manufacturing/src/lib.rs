//! Production-line Monte-Carlo substrate.
//!
//! The paper's Section 7 experiment tested 277 chips from a real wafer lot on
//! a Fairchild Sentry 600 and recorded, for each chip, the first test pattern
//! at which it failed.  That data source is not available, so this crate
//! simulates the whole line:
//!
//! * [`defect`] — physical defect kinds and clustered (negative-binomial)
//!   defect-count models, reproducing the yield formula of the paper's eq. 3,
//! * [`wafer`] — wafer maps of chip sites with per-site defect counts,
//! * [`defect_map`] — mapping physical defects to one or more logical
//!   stuck-at faults (the paper notes "a physical defect can produce several
//!   logical faults"),
//! * [`chip`], [`lot`] — simulated chips and chip lots, generated either
//!   directly from the paper's statistical model (known ground-truth `n0`)
//!   or from the physical defect pipeline (emergent `n0`),
//! * [`tester`] — a Sentry-like wafer tester that applies an ordered pattern
//!   set and records each chip's first failing pattern,
//! * [`bist_test`] — the BIST alternative: a [`SignatureTester`] comparing
//!   per-session MISR signatures and recording each chip's first failing
//!   *session* (selected by [`TestMode`](lsiq_exec::TestMode) /
//!   `LSIQ_TEST_MODE=bist`),
//! * [`experiment`] — the Table-1 style cumulative-reject experiment,
//! * [`field`] — field-reject measurement over the shipped (passing) chips,
//!   and
//! * [`pipeline`] — the multi-threaded production line:
//!   [`ParallelLotRunner`] shards one lot's chips across pooled worker
//!   threads with byte-identical results, and [`LotSweep`] fans whole
//!   `(y, n0)` experiment grids across lots.  Both run on a persistent
//!   [`ExecutionContext`](lsiq_exec::ExecutionContext) — a session's, or
//!   the process-wide default — configured through the typed
//!   [`RunConfig`](lsiq_exec::RunConfig) (the `LSIQ_LOT_THREADS` variable
//!   survives as its compatibility layer), and
//! * [`streaming`] — the memory-bounded counterpart:
//!   [`StreamingLotExecutor`] folds fixed-size blocks of chips into running
//!   integer statistics, so billion-chip lots run in `O(workers × patterns)`
//!   memory with byte-identical results to the in-memory path.
//!
//! The chips of a lot are testable against any pattern suite summarised by a
//! [`FaultDictionary`](lsiq_fault::dictionary::FaultDictionary) — typically
//! one built by `lsiq_tpg`'s suite builder from a fault simulation over a
//! [`FaultUniverse`](lsiq_fault::universe::FaultUniverse).
//!
//! # Quick example
//!
//! ```
//! use lsiq_manufacturing::lot::{ChipLot, ModelLotConfig};
//!
//! let lot = ChipLot::from_model(&ModelLotConfig {
//!     chips: 100,
//!     yield_fraction: 0.3,
//!     n0: 5.0,
//!     fault_universe_size: 500,
//!     seed: 7,
//! });
//! assert_eq!(lot.len(), 100);
//! assert!(lot.observed_yield() > 0.1 && lot.observed_yield() < 0.5);
//! ```

pub mod bist_test;
pub mod chip;
pub mod defect;
pub mod defect_map;
pub mod experiment;
pub mod field;
pub mod lot;
pub mod pipeline;
pub mod streaming;
pub mod tester;
pub mod wafer;

pub use bist_test::{SessionRecord, SignatureTester};
pub use chip::Chip;
pub use lot::{ChipLot, ModelLotConfig, PhysicalLotConfig};
pub use pipeline::{LotOutcome, LotSweep, ParallelLotRunner, SweepPoint, SweepResult};
pub use streaming::{StreamedLot, StreamingLotExecutor};
pub use tester::{TestRecord, WaferTester};
