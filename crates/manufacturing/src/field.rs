//! Field-reject measurement.
//!
//! The paper defines the field reject rate `r(f)` as "the ratio of the number
//! of bad chips tested good to the number of all chips that are tested good"
//! (Section 4).  On the simulated line the ground truth is available, so the
//! measurement is direct: ship every chip that passed the wafer test and
//! count how many of the shipped chips are actually defective.

use crate::tester::TestRecord;

/// The outcome of shipping the chips that passed wafer test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldOutcome {
    /// Chips that passed the applied pattern set (and were shipped).
    pub shipped: usize,
    /// Shipped chips that are actually defective (test escapes).
    pub escapes: usize,
    /// Chips rejected at wafer test.
    pub rejected: usize,
    /// Total chips tested.
    pub total: usize,
}

impl FieldOutcome {
    /// Measures the field outcome of a tested lot.
    pub fn from_records(records: &[TestRecord]) -> FieldOutcome {
        let shipped = records.iter().filter(|record| record.passed()).count();
        let escapes = records.iter().filter(|record| record.is_escape()).count();
        FieldOutcome {
            shipped,
            escapes,
            rejected: records.len() - shipped,
            total: records.len(),
        }
    }

    /// The measured field reject rate: escapes over shipped chips, or zero if
    /// nothing was shipped.
    pub fn field_reject_rate(&self) -> f64 {
        if self.shipped == 0 {
            0.0
        } else {
            self.escapes as f64 / self.shipped as f64
        }
    }

    /// The fraction of all tested chips that were rejected at wafer test (the
    /// experimental counterpart of the paper's `P(f)`).
    pub fn rejected_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.rejected as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(chip_id: usize, first_fail: Option<usize>, is_defective: bool) -> TestRecord {
        TestRecord {
            chip_id,
            first_fail,
            is_defective,
        }
    }

    #[test]
    fn counts_are_consistent() {
        let records = vec![
            record(0, None, false),   // good, shipped
            record(1, None, true),    // escape
            record(2, Some(3), true), // rejected
            record(3, Some(0), true), // rejected
            record(4, None, false),   // good, shipped
        ];
        let outcome = FieldOutcome::from_records(&records);
        assert_eq!(outcome.total, 5);
        assert_eq!(outcome.shipped, 3);
        assert_eq!(outcome.escapes, 1);
        assert_eq!(outcome.rejected, 2);
        assert!((outcome.field_reject_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((outcome.rejected_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_lot_has_zero_rates() {
        let outcome = FieldOutcome::from_records(&[]);
        assert_eq!(outcome.field_reject_rate(), 0.0);
        assert_eq!(outcome.rejected_fraction(), 0.0);
    }

    #[test]
    fn seeded_field_statistics_are_pinned() {
        // End-to-end golden numbers: a weak 6-pattern programme over c17 and
        // a seeded 400-chip model lot.  Any change to the RNG streams, the
        // lot generator, the tester or the bookkeeping shows up here as an
        // exact mismatch, not a tolerance drift.
        use crate::lot::{ChipLot, ModelLotConfig};
        use crate::tester::WaferTester;
        use lsiq_fault::dictionary::FaultDictionary;
        use lsiq_fault::ppsfp::PpsfpSimulator;
        use lsiq_fault::simulator::FaultSimulator;
        use lsiq_fault::universe::FaultUniverse;
        use lsiq_netlist::library;
        use lsiq_sim::pattern::{Pattern, PatternSet};

        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns: PatternSet = (0..6)
            .map(|v| Pattern::from_integer(v * 5 + 2, 5))
            .collect();
        let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
        let dictionary = FaultDictionary::from_fault_list(&list);
        let lot = ChipLot::from_model(&ModelLotConfig {
            chips: 400,
            yield_fraction: 0.3,
            n0: 2.0,
            fault_universe_size: universe.len(),
            seed: 1981,
        });
        let records = WaferTester::new(&dictionary).test_lot(&lot);
        let outcome = FieldOutcome::from_records(&records);
        assert_eq!(
            outcome,
            FieldOutcome {
                shipped: 167,
                escapes: 47,
                rejected: 233,
                total: 400,
            }
        );
        assert!((outcome.field_reject_rate() - 47.0 / 167.0).abs() < 1e-15);
        assert!((outcome.rejected_fraction() - 233.0 / 400.0).abs() < 1e-15);
    }

    #[test]
    fn perfect_test_means_zero_field_rejects() {
        let records = vec![
            record(0, None, false),
            record(1, Some(1), true),
            record(2, Some(2), true),
        ];
        let outcome = FieldOutcome::from_records(&records);
        assert_eq!(outcome.escapes, 0);
        assert_eq!(outcome.field_reject_rate(), 0.0);
    }
}
