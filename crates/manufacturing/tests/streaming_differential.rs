//! Differential tests: the streaming lot executor must be byte-identical to
//! the in-memory pipeline at every worker count and block length, and must
//! hold bounded memory on lots far too large to materialize.

use lsiq_exec::ExecutionContext;
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::ppsfp::PpsfpSimulator;
use lsiq_fault::simulator::FaultSimulator;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::lot::ModelLotConfig;
use lsiq_manufacturing::streaming::StreamingLotExecutor;
use lsiq_manufacturing::ParallelLotRunner;
use lsiq_sim::pattern::{Pattern, PatternSet};

fn suite() -> (FaultDictionary, CoverageCurve, usize) {
    let circuit = lsiq_netlist::library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns: PatternSet = (0..128u64)
        .map(|v| Pattern::from_integer(v * 37 + 11, 10))
        .collect();
    let list = PpsfpSimulator::new(&circuit).run(&universe, &patterns);
    let coverage = CoverageCurve::from_fault_list(&list, patterns.len());
    let dictionary = FaultDictionary::from_fault_list(&list);
    (dictionary, coverage, universe.len())
}

/// The worker ladder the issue asks for: 1, 2, and twice the machine's
/// cores (clamped below at 2 so the ladder is meaningful on one core).
fn worker_ladder() -> [usize; 3] {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    [1, 2, (2 * cores).max(2)]
}

#[test]
fn streaming_matches_in_memory_across_workers_and_blocks() {
    let (dictionary, coverage, universe) = suite();
    let config = ModelLotConfig {
        chips: 4_777,
        yield_fraction: 0.07,
        n0: 8.0,
        fault_universe_size: universe,
        seed: 1981,
    };
    let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
    let reference =
        ParallelLotRunner::new()
            .with_threads(1)
            .run_model_line(&config, &dictionary, &coverage);
    let reference_nav = lsiq_manufacturing::ChipLot::from_model(&config).observed_nav();
    for workers in worker_ladder() {
        for block in [1, 97, 1_024, 1_000_000] {
            let streamed = StreamingLotExecutor::new()
                .with_threads(workers)
                .with_block_len(block)
                .stream_model_lot(&config, &dictionary, &coverage, &checkpoints);
            assert_eq!(
                streamed.outcome, reference.outcome,
                "workers {workers}, block {block}"
            );
            assert_eq!(
                streamed.experiment, reference.experiment,
                "workers {workers}, block {block}"
            );
            // Byte-level equality on every derived float, not approximate.
            assert_eq!(
                streamed.observed_yield.to_bits(),
                reference.observed_yield.to_bits()
            );
            assert_eq!(
                streamed.observed_n0.to_bits(),
                reference.observed_n0.to_bits()
            );
            assert_eq!(streamed.observed_nav.to_bits(), reference_nav.to_bits());
            for (ours, theirs) in streamed
                .experiment
                .rows()
                .iter()
                .zip(reference.experiment.rows())
            {
                assert_eq!(
                    ours.fraction_failed.to_bits(),
                    theirs.fraction_failed.to_bits()
                );
                assert_eq!(
                    ours.fault_coverage.to_bits(),
                    theirs.fault_coverage.to_bits()
                );
            }
        }
    }
}

#[test]
fn streaming_respects_the_run_config_worker_count() {
    let (dictionary, coverage, universe) = suite();
    let config = ModelLotConfig {
        chips: 1_003,
        yield_fraction: 0.3,
        n0: 3.0,
        fault_universe_size: universe,
        seed: 77,
    };
    let checkpoints = [8usize, 32, 128];
    let context = ExecutionContext::new(2);
    let pinned = StreamingLotExecutor::with_context(&context)
        .with_block_len(256)
        .stream_model_lot(&config, &dictionary, &coverage, &checkpoints);
    let fresh = StreamingLotExecutor::new()
        .with_threads(1)
        .stream_model_lot(&config, &dictionary, &coverage, &checkpoints);
    assert_eq!(pinned, fresh);
}

/// The acceptance bar: a 10^9-chip lot streams to completion in bounded
/// memory.  A lot this size would need tens of gigabytes to materialize
/// (~40 B per record alone); the streaming executor holds one block of
/// integer folds instead.  Run with `cargo test -- --ignored` (about a
/// minute in release mode).
#[test]
#[ignore = "billion-chip endurance run; invoke with --ignored"]
fn billion_chip_lot_streams_in_bounded_memory() {
    let (dictionary, coverage, universe) = suite();
    let config = ModelLotConfig {
        chips: 1_000_000_000,
        // High yield keeps most chips on the one-RNG-draw fast path so the
        // endurance run finishes in CI time; the memory bound is identical
        // at any yield.
        yield_fraction: 0.999,
        n0: 2.0,
        fault_universe_size: universe,
        seed: 1981,
    };
    let checkpoints = [16usize, 64, 128];
    let streamed = StreamingLotExecutor::new()
        .with_block_len(1 << 20)
        .stream_model_lot(&config, &dictionary, &coverage, &checkpoints);
    assert_eq!(streamed.chips, 1_000_000_000);
    assert_eq!(streamed.outcome.total, 1_000_000_000);
    assert_eq!(
        streamed.outcome.shipped + streamed.outcome.rejected,
        streamed.outcome.total
    );
    // The generator draws good chips with probability 0.999.
    assert!((streamed.observed_yield - 0.999).abs() < 1e-4);
    let last = streamed.experiment.rows().last().expect("rows");
    assert!(last.fraction_failed > 0.0);
}
