//! The typed run configuration: engine kind, worker count, base seed, test
//! mode.
//!
//! [`RunConfig::from_env`] is the single place in the workspace that parses
//! the `LSIQ_ENGINE`, `LSIQ_LOT_THREADS`, `LSIQ_SEED`, `LSIQ_TEST_MODE`,
//! `LSIQ_SCAN_CHAINS`, `LSIQ_LANES` and `LSIQ_METRICS` environment
//! variables; every older knob (`lsiq_bench::engine_from_env`, the
//! `production_line` example) delegates here, so an invalid value always
//! produces the same actionable [`ConfigError`] instead of divergent panics.

use std::env;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

pub use lsiq_obs::MetricsMode;

/// Environment variable selecting the fault-simulation engine.
pub const ENGINE_VAR: &str = "LSIQ_ENGINE";
/// Environment variable overriding the worker-thread count.
pub const WORKERS_VAR: &str = "LSIQ_LOT_THREADS";
/// Environment variable overriding the base seed.
pub const SEED_VAR: &str = "LSIQ_SEED";
/// Environment variable selecting the wafer-test mode (`stored` or `bist`).
pub const TEST_MODE_VAR: &str = "LSIQ_TEST_MODE";
/// Environment variable enabling full-scan testing with the given number of
/// scan chains.
pub const SCAN_CHAINS_VAR: &str = "LSIQ_SCAN_CHAINS";
/// Environment variable selecting the packed-simulation lane width
/// (`auto`, `1`, `4` or `8` — the number of 64-pattern words per chunk).
pub const LANES_VAR: &str = "LSIQ_LANES";
/// Environment variable selecting the telemetry mode (`off`, `json` or
/// `tree` — see [`MetricsMode`] and `docs/OBSERVABILITY.md`).
pub const METRICS_VAR: &str = "LSIQ_METRICS";

/// The base seed a [`RunConfig`] falls back to when none is given — the
/// historical default of the `production_line` example.
pub const DEFAULT_BASE_SEED: u64 = 42;

/// Upper bound accepted for `LSIQ_LOT_THREADS`: far above any real machine,
/// low enough that a typo (`"40000"` for `"4"`) is caught before the work
/// pool tries to spawn that many operating-system threads.
pub const MAX_WORKERS: usize = 1024;

/// Upper bound accepted for `LSIQ_SCAN_CHAINS`: a chip has at most as many
/// chains as scan cells, and the experiments' devices stay well under this.
pub const MAX_SCAN_CHAINS: usize = 4096;

/// Names one of the five fault-simulation engines, for configuration
/// surfaces that select an engine at run time (test-suite builders, bench
/// binaries, differential harnesses).
///
/// This is pure configuration data — names, parsing, ordering.  Turning a
/// kind into a running engine is the `BuildEngine` extension trait of
/// `lsiq_fault::simulator`, which re-exports this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// One `(pattern, fault)` pair at a time — the reference implementation.
    Serial,
    /// 64 packed patterns, one fault at a time.
    Ppsfp,
    /// All faults of one pattern at a time via arena-backed fault lists.
    Deductive,
    /// Fault-sharded multi-threaded PPSFP — the production default.
    #[default]
    Parallel,
    /// Event-driven cone propagation over 64-packed words — the large-circuit
    /// engine.
    Incremental,
}

impl EngineKind {
    /// Every engine, in cross-check order (reference first).
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Serial,
        EngineKind::Ppsfp,
        EngineKind::Deductive,
        EngineKind::Parallel,
        EngineKind::Incremental,
    ];

    /// The engine's short name (matches `FaultSimulator::name`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Serial => "serial",
            EngineKind::Ppsfp => "ppsfp",
            EngineKind::Deductive => "deductive",
            EngineKind::Parallel => "parallel",
            EngineKind::Incremental => "incremental",
        }
    }

    /// Parses an engine name (case-insensitive).
    pub fn from_name(name: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|kind| kind.name().eq_ignore_ascii_case(name.trim()))
    }

    /// The engine an `auto` selection (`LSIQ_ENGINE=auto`,
    /// [`RunConfig::with_engine_auto`]) resolves to for a circuit of
    /// `gate_count` gates.
    ///
    /// The thresholds follow the measured crossovers of the engine guide
    /// (`docs/ENGINES.md`): the arena-based deductive engine is the fastest
    /// single pass on small-to-medium circuits (~1 000-gate scale), the
    /// fault-sharded parallel engine wins on the LSI-class production
    /// devices, and event-driven incremental cone propagation pulls ahead
    /// once circuits grow past tens of thousands of gates.  Every engine is
    /// byte-identical, so the resolution only changes wall-clock time.
    pub fn auto_for(gate_count: usize) -> EngineKind {
        if gate_count >= 20_000 {
            EngineKind::Incremental
        } else if gate_count < 1_500 {
            EngineKind::Deductive
        } else {
            EngineKind::Parallel
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::from_name(s).ok_or_else(|| {
            format!("unknown fault-simulation engine {s:?} (expected serial, ppsfp, deductive, parallel or incremental)")
        })
    }
}

/// How the wafer tester observes a chip: per-pattern stored responses, or
/// per-session BIST signatures.
///
/// Like [`EngineKind`] this is pure configuration data; the testers
/// themselves live in `lsiq-manufacturing` (`WaferTester` for `Stored`,
/// `SignatureTester` for `Bist`), which this crate does not depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TestMode {
    /// The Sentry-like stored-pattern tester: every applied pattern's
    /// response is compared against the stored good response, so the
    /// recorded observable is the chip's first failing *pattern*.
    #[default]
    Stored,
    /// Built-in self-test: responses are compacted into a MISR signature
    /// read out once per test session, so the recorded observable is the
    /// chip's first failing *session* — and aliasing can mask detections.
    Bist,
}

impl TestMode {
    /// Both test modes, stored-pattern first.
    pub const ALL: [TestMode; 2] = [TestMode::Stored, TestMode::Bist];

    /// The mode's short name (the `LSIQ_TEST_MODE` grammar).
    pub fn name(self) -> &'static str {
        match self {
            TestMode::Stored => "stored",
            TestMode::Bist => "bist",
        }
    }

    /// Parses a mode name (case-insensitive).
    pub fn from_name(name: &str) -> Option<TestMode> {
        TestMode::ALL
            .into_iter()
            .find(|mode| mode.name().eq_ignore_ascii_case(name.trim()))
    }
}

impl fmt::Display for TestMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for TestMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TestMode::from_name(s)
            .ok_or_else(|| format!("unknown test mode {s:?} (expected stored or bist)"))
    }
}

/// The lane width of packed fault simulation: how many 64-pattern machine
/// words one simulation chunk carries (so one evaluation step processes up
/// to `64 × lanes` patterns).
///
/// Like [`EngineKind`] this is pure configuration data; the lane-generic
/// chunk type itself (`PackedBlock<L>`) lives in `lsiq-sim`, and the engines
/// of `lsiq-fault` monomorphize over the resolved width.  Results are
/// **byte-identical at every width** — lanes only change throughput — which
/// the lane-differential suites enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneWidth {
    /// Pick the width per run from the pattern count (the default): wide
    /// chunks amortize per-gate dispatch over more patterns, but a chunk is
    /// all-or-nothing, so short pattern sets would mostly simulate padding.
    #[default]
    Auto,
    /// One 64-bit word per chunk — the classic single-word block.
    X1,
    /// Four words (256 patterns) per chunk.
    X4,
    /// Eight words (512 patterns) per chunk — the widest supported.
    X8,
}

impl LaneWidth {
    /// Every width, auto first.
    pub const ALL: [LaneWidth; 4] = [LaneWidth::Auto, LaneWidth::X1, LaneWidth::X4, LaneWidth::X8];

    /// The explicit (non-auto) widths, narrowest first.
    pub const EXPLICIT: [LaneWidth; 3] = [LaneWidth::X1, LaneWidth::X4, LaneWidth::X8];

    /// The width's short name (the `LSIQ_LANES` grammar).
    pub fn name(self) -> &'static str {
        match self {
            LaneWidth::Auto => "auto",
            LaneWidth::X1 => "1",
            LaneWidth::X4 => "4",
            LaneWidth::X8 => "8",
        }
    }

    /// Parses a width name (case-insensitive: `auto`, `1`, `4` or `8`).
    pub fn from_name(name: &str) -> Option<LaneWidth> {
        LaneWidth::ALL
            .into_iter()
            .find(|width| width.name().eq_ignore_ascii_case(name.trim()))
    }

    /// The number of 64-pattern words per chunk for an explicit width, or
    /// `None` for [`LaneWidth::Auto`].
    pub fn lanes(self) -> Option<usize> {
        match self {
            LaneWidth::Auto => None,
            LaneWidth::X1 => Some(1),
            LaneWidth::X4 => Some(4),
            LaneWidth::X8 => Some(8),
        }
    }

    /// Resolves the width to a concrete lane count (1, 4 or 8) for a run
    /// over `pattern_count` patterns.
    ///
    /// `Auto` minimizes estimated work: each candidate width pays for the
    /// patterns it must simulate *including chunk padding*, discounted by
    /// the per-word speedup wider chunks buy (amortized dispatch +
    /// vectorization, measured at roughly 1.6× for 4 lanes and 2× for 8).
    /// Short sets therefore stay narrow (64 patterns → 1 lane) and long
    /// sets go wide (512+ → 8 lanes).  The choice never affects results,
    /// only speed.
    pub fn resolve(self, pattern_count: usize) -> usize {
        if let Some(lanes) = self.lanes() {
            return lanes;
        }
        // (lanes, relative per-word cost numerator/denominator): cost of
        // simulating one padded pattern, scaled by 10 to stay in integers.
        const CANDIDATES: [(usize, usize); 3] = [(1, 10), (4, 6), (8, 5)];
        let patterns = pattern_count.max(1);
        CANDIDATES
            .into_iter()
            .min_by_key(|&(lanes, cost)| patterns.div_ceil(64 * lanes) * 64 * lanes * cost)
            .map(|(lanes, _)| lanes)
            .expect("candidate list is non-empty")
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LaneWidth {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LaneWidth::from_name(s)
            .ok_or_else(|| format!("unknown lane width {s:?} (expected auto, 1, 4 or 8)"))
    }
}

/// A malformed run-configuration value: which variable, what it held, and
/// what it should have held.
///
/// Every configuration failure in the workspace renders through this one
/// type, so the message shape is always the same and always actionable:
///
/// ```
/// use lsiq_exec::RunConfig;
///
/// // (illustrative — from_env only errors when a variable is actually set
/// // to an invalid value)
/// if let Err(error) = RunConfig::from_env() {
///     eprintln!("{error}");
///     // e.g. `LSIQ_ENGINE: expected one of serial, ppsfp, deductive,
///     // parallel or incremental, got "warp"; unset the variable to use
///     // the default`
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    variable: &'static str,
    value: String,
    expected: &'static str,
}

impl ConfigError {
    fn new(variable: &'static str, value: impl Into<String>, expected: &'static str) -> Self {
        ConfigError {
            variable,
            value: value.into(),
            expected,
        }
    }

    /// Builds a configuration error for `variable` holding `value` where
    /// `expected` describes the accepted grammar.
    ///
    /// This is the constructor for validation sites *outside* this crate
    /// (BIST geometry, scan plans, sweep specifications) that want their
    /// failures to render in the same actionable shape as the `LSIQ_*`
    /// parser's.
    pub fn invalid_value(
        variable: &'static str,
        value: impl Into<String>,
        expected: &'static str,
    ) -> Self {
        ConfigError::new(variable, value, expected)
    }

    /// The environment variable (or configuration field) at fault.
    pub fn variable(&self) -> &str {
        self.variable
    }

    /// The offending value, lossily decoded if it was not valid Unicode.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: expected {}, got {:?}; unset the variable to use the default",
            self.variable, self.expected, self.value
        )
    }
}

impl Error for ConfigError {}

/// How a sequential device is tested: the number of scan chains its
/// flip-flops are stitched into before fault simulation.
///
/// A plan on a [`RunConfig`] tells the session layer to use a sequential
/// device, insert full scan (`lsiq_netlist::scan::insert_scan`) and run
/// every experiment on the expanded combinational test view.  Like the rest
/// of the run configuration this is pure data — the netlist transformation
/// lives in `lsiq-netlist`, which this crate does not depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScanPlan {
    chains: usize,
}

impl ScanPlan {
    /// A plan with `chains` scan chains.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] (named after [`SCAN_CHAINS_VAR`], the knob
    /// this value usually arrives through) if `chains` is zero or exceeds
    /// [`MAX_SCAN_CHAINS`].
    pub fn new(chains: usize) -> Result<ScanPlan, ConfigError> {
        if chains == 0 || chains > MAX_SCAN_CHAINS {
            return Err(ConfigError::invalid_value(
                SCAN_CHAINS_VAR,
                chains.to_string(),
                "a scan-chain count between 1 and 4096",
            ));
        }
        Ok(ScanPlan { chains })
    }

    /// The number of scan chains.
    pub fn chains(self) -> usize {
        self.chains
    }
}

impl fmt::Display for ScanPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} chain(s)", self.chains)
    }
}

/// The typed configuration of one run: which fault-simulation engine to use,
/// how many worker threads to run, and the base seed every stochastic stage
/// derives its streams from.
///
/// Build one with the builder methods, or from the environment (the
/// compatibility layer for the `LSIQ_*` knobs) with [`RunConfig::from_env`]:
///
/// ```
/// use lsiq_exec::{EngineKind, RunConfig};
///
/// let config = RunConfig::default()
///     .with_engine(EngineKind::Ppsfp)
///     .with_workers(4)
///     .with_base_seed(7);
/// assert_eq!(config.engine(), EngineKind::Ppsfp);
/// assert_eq!(config.workers(), Some(4));
/// assert_eq!(config.base_seed(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunConfig {
    engine: EngineKind,
    engine_auto: bool,
    workers: Option<usize>,
    base_seed: Option<u64>,
    test_mode: TestMode,
    scan: Option<ScanPlan>,
    lanes: LaneWidth,
    metrics: MetricsMode,
}

impl RunConfig {
    /// A configuration with every field at its default: the parallel engine,
    /// automatic worker count, base seed [`DEFAULT_BASE_SEED`].
    pub fn new() -> RunConfig {
        RunConfig::default()
    }

    /// Reads the configuration from the environment — the **only**
    /// `LSIQ_*`-parsing site in the workspace.
    ///
    /// Unset variables keep their defaults; a set-but-invalid variable (bad
    /// engine name, non-positive worker count, unparsable seed, non-Unicode
    /// bytes) returns a [`ConfigError`] naming the variable, the offending
    /// value and the accepted grammar.
    pub fn from_env() -> Result<RunConfig, ConfigError> {
        let mut config = RunConfig::default();
        if let Some(value) = read_var(ENGINE_VAR)? {
            if value.trim().eq_ignore_ascii_case("auto") {
                config.engine_auto = true;
            } else {
                config.engine = EngineKind::from_name(&value).ok_or_else(|| {
                    ConfigError::new(
                        ENGINE_VAR,
                        value.clone(),
                        "one of auto, serial, ppsfp, deductive, parallel or incremental",
                    )
                })?;
            }
        }
        if let Some(value) = read_var(WORKERS_VAR)? {
            let workers = value
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&workers| workers > 0 && workers <= MAX_WORKERS)
                .ok_or_else(|| {
                    ConfigError::new(
                        WORKERS_VAR,
                        value.clone(),
                        "a worker count between 1 and 1024",
                    )
                })?;
            config.workers = Some(workers);
        }
        if let Some(value) = read_var(SEED_VAR)? {
            let seed = value.trim().parse::<u64>().map_err(|_| {
                ConfigError::new(SEED_VAR, value.clone(), "an unsigned 64-bit integer seed")
            })?;
            config.base_seed = Some(seed);
        }
        if let Some(value) = read_var(TEST_MODE_VAR)? {
            config.test_mode = TestMode::from_name(&value).ok_or_else(|| {
                ConfigError::new(TEST_MODE_VAR, value.clone(), "one of stored or bist")
            })?;
        }
        if let Some(value) = read_var(SCAN_CHAINS_VAR)? {
            let chains = value.trim().parse::<usize>().map_err(|_| {
                ConfigError::new(
                    SCAN_CHAINS_VAR,
                    value.clone(),
                    "a scan-chain count between 1 and 4096",
                )
            })?;
            config.scan = Some(ScanPlan::new(chains).map_err(|_| {
                ConfigError::new(
                    SCAN_CHAINS_VAR,
                    value.clone(),
                    "a scan-chain count between 1 and 4096",
                )
            })?);
        }
        if let Some(value) = read_var(LANES_VAR)? {
            config.lanes = LaneWidth::from_name(&value).ok_or_else(|| {
                ConfigError::new(LANES_VAR, value.clone(), "one of auto, 1, 4 or 8")
            })?;
        }
        if let Some(value) = read_var(METRICS_VAR)? {
            config.metrics = MetricsMode::from_name(value.trim()).ok_or_else(|| {
                ConfigError::new(METRICS_VAR, value.clone(), "one of off, json or tree")
            })?;
        }
        Ok(config)
    }

    /// Selects the fault-simulation engine (and clears any `auto`
    /// selection — an explicit choice wins).
    pub fn with_engine(mut self, engine: EngineKind) -> RunConfig {
        self.engine = engine;
        self.engine_auto = false;
        self
    }

    /// Selects adaptive engine resolution (the `LSIQ_ENGINE=auto` knob):
    /// each run picks its engine from the circuit size through
    /// [`RunConfig::engine_for_size`] instead of using one fixed kind.
    pub fn with_engine_auto(mut self) -> RunConfig {
        self.engine_auto = true;
        self
    }

    /// Sets an explicit worker-thread count (`workers >= 1`).
    pub fn with_workers(mut self, workers: usize) -> RunConfig {
        self.workers = if workers == 0 { None } else { Some(workers) };
        self
    }

    /// Sets the base seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> RunConfig {
        self.base_seed = Some(base_seed);
        self
    }

    /// Selects the wafer-test mode (stored-pattern or BIST signature
    /// compare).
    pub fn with_test_mode(mut self, test_mode: TestMode) -> RunConfig {
        self.test_mode = test_mode;
        self
    }

    /// Enables full-scan testing of a sequential device with the given
    /// plan; `None` (the default) tests the combinational device directly.
    pub fn with_scan(mut self, scan: Option<ScanPlan>) -> RunConfig {
        self.scan = scan;
        self
    }

    /// Selects the packed-simulation lane width ([`LaneWidth::Auto`] by
    /// default — picked per run from the pattern count).
    pub fn with_lanes(mut self, lanes: LaneWidth) -> RunConfig {
        self.lanes = lanes;
        self
    }

    /// Selects the telemetry mode ([`MetricsMode::Off`] by default).
    /// `Session::new` installs this on the process-global `lsiq-obs` flag,
    /// so recording costs a single relaxed load when it stays off.
    pub fn with_metrics(mut self, metrics: MetricsMode) -> RunConfig {
        self.metrics = metrics;
        self
    }

    /// The configured fault-simulation engine.  With an `auto` selection
    /// this is the fallback default; run sites that know their circuit call
    /// [`RunConfig::engine_for_size`] instead.
    pub fn engine(self) -> EngineKind {
        self.engine
    }

    /// Whether the engine is resolved adaptively per run
    /// (`LSIQ_ENGINE=auto` / [`RunConfig::with_engine_auto`]).
    pub fn engine_is_auto(self) -> bool {
        self.engine_auto
    }

    /// The engine a run over a circuit of `gate_count` gates should use:
    /// the explicitly configured kind, or — under an `auto` selection —
    /// [`EngineKind::auto_for`]`(gate_count)`.
    pub fn engine_for_size(self, gate_count: usize) -> EngineKind {
        if self.engine_auto {
            EngineKind::auto_for(gate_count)
        } else {
            self.engine
        }
    }

    /// The configured wafer-test mode.
    pub fn test_mode(self) -> TestMode {
        self.test_mode
    }

    /// The full-scan plan, if the run targets a sequential device.
    pub fn scan(self) -> Option<ScanPlan> {
        self.scan
    }

    /// The configured packed-simulation lane width.
    pub fn lanes(self) -> LaneWidth {
        self.lanes
    }

    /// The configured telemetry mode.
    pub fn metrics(self) -> MetricsMode {
        self.metrics
    }

    /// The explicit worker-count override, if any (`None` means "use the
    /// available hardware parallelism").
    pub fn workers(self) -> Option<usize> {
        self.workers
    }

    /// The worker count a context built from this configuration will use:
    /// the explicit override, or the available hardware parallelism.
    pub fn effective_workers(self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// The run's base seed: the explicit choice, or [`DEFAULT_BASE_SEED`].
    pub fn base_seed(self) -> u64 {
        self.base_seed.unwrap_or(DEFAULT_BASE_SEED)
    }

    /// The explicit base seed if one was given, otherwise a caller-supplied
    /// default — for drivers whose historical reference runs pin a specific
    /// seed (e.g. the Table 1 reproduction's 1981) while still letting
    /// `LSIQ_SEED` override it.
    pub fn seed_or(self, default: u64) -> u64 {
        self.base_seed.unwrap_or(default)
    }
}

impl fmt::Display for RunConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.engine_auto {
            write!(f, "engine = auto, workers = ")?;
        } else {
            write!(f, "engine = {}, workers = ", self.engine)?;
        }
        match self.workers {
            Some(workers) => write!(f, "{workers}")?,
            None => write!(f, "auto({})", self.effective_workers())?,
        }
        write!(
            f,
            ", base seed = {}, test mode = {}",
            self.base_seed(),
            self.test_mode
        )?;
        if let Some(scan) = self.scan {
            write!(f, ", scan = {scan}")?;
        }
        // The telemetry mode is deliberately not rendered: config lines
        // appear in transcripts that must stay byte-identical with metrics
        // on or off.
        write!(f, ", lanes = {}", self.lanes)?;
        Ok(())
    }
}

fn read_var(name: &'static str) -> Result<Option<String>, ConfigError> {
    match env::var(name) {
        Ok(value) => Ok(Some(value)),
        Err(env::VarError::NotPresent) => Ok(None),
        Err(env::VarError::NotUnicode(raw)) => Err(ConfigError::new(
            name,
            raw.to_string_lossy().into_owned(),
            "a valid Unicode value",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_parses_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.name().to_uppercase().parse::<EngineKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            EngineKind::from_name("  Deductive "),
            Some(EngineKind::Deductive)
        );
        assert!(EngineKind::from_name("concurrent").is_none());
        assert!("concurrent".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Parallel);
    }

    #[test]
    fn auto_engine_resolution_follows_circuit_size() {
        // Small circuits: deductive (fastest single pass at ~1 000 gates).
        assert_eq!(EngineKind::auto_for(0), EngineKind::Deductive);
        assert_eq!(EngineKind::auto_for(1_200), EngineKind::Deductive);
        // LSI-class production devices: the sharded parallel engine.
        assert_eq!(EngineKind::auto_for(1_500), EngineKind::Parallel);
        assert_eq!(EngineKind::auto_for(10_000), EngineKind::Parallel);
        // Industrial scale: event-driven incremental cone propagation.
        assert_eq!(EngineKind::auto_for(20_000), EngineKind::Incremental);
        assert_eq!(EngineKind::auto_for(100_000), EngineKind::Incremental);

        // Config plumbing: auto resolves per size, explicit choices win.
        let auto = RunConfig::default().with_engine_auto();
        assert!(auto.engine_is_auto());
        assert_eq!(auto.engine_for_size(100), EngineKind::Deductive);
        assert_eq!(auto.engine_for_size(10_000), EngineKind::Parallel);
        assert_eq!(auto.engine_for_size(50_000), EngineKind::Incremental);
        assert!(auto.to_string().contains("engine = auto"), "{auto}");
        let explicit = auto.with_engine(EngineKind::Serial);
        assert!(!explicit.engine_is_auto());
        assert_eq!(explicit.engine_for_size(50_000), EngineKind::Serial);
        assert!(!RunConfig::default().engine_is_auto());
        assert_eq!(
            RunConfig::default().engine_for_size(50_000),
            EngineKind::Parallel
        );
    }

    #[test]
    fn test_mode_parses_names_round_trip() {
        for mode in TestMode::ALL {
            assert_eq!(TestMode::from_name(mode.name()), Some(mode));
            assert_eq!(mode.name().to_uppercase().parse::<TestMode>(), Ok(mode));
            assert_eq!(mode.to_string(), mode.name());
        }
        assert_eq!(TestMode::from_name("  Bist "), Some(TestMode::Bist));
        assert!(TestMode::from_name("scan").is_none());
        assert!("scan".parse::<TestMode>().is_err());
        assert_eq!(TestMode::default(), TestMode::Stored);
    }

    #[test]
    fn lane_width_parses_names_round_trip() {
        for width in LaneWidth::ALL {
            assert_eq!(LaneWidth::from_name(width.name()), Some(width));
            assert_eq!(width.name().to_uppercase().parse::<LaneWidth>(), Ok(width));
            assert_eq!(width.to_string(), width.name());
        }
        assert_eq!(LaneWidth::from_name("  Auto "), Some(LaneWidth::Auto));
        assert!(LaneWidth::from_name("2").is_none());
        assert!("16".parse::<LaneWidth>().is_err());
        assert_eq!(LaneWidth::default(), LaneWidth::Auto);
        assert_eq!(LaneWidth::Auto.lanes(), None);
        assert_eq!(LaneWidth::X1.lanes(), Some(1));
        assert_eq!(LaneWidth::X4.lanes(), Some(4));
        assert_eq!(LaneWidth::X8.lanes(), Some(8));
    }

    #[test]
    fn lane_width_resolution_scales_with_pattern_count() {
        // Explicit widths resolve to themselves regardless of pattern count.
        for width in LaneWidth::EXPLICIT {
            let lanes = width.lanes().expect("explicit");
            assert_eq!(width.resolve(0), lanes);
            assert_eq!(width.resolve(64), lanes);
            assert_eq!(width.resolve(100_000), lanes);
        }
        // Auto: short sets stay narrow (padding dominates), long sets go
        // wide (amortization dominates).
        assert_eq!(LaneWidth::Auto.resolve(0), 1);
        assert_eq!(LaneWidth::Auto.resolve(1), 1);
        assert_eq!(LaneWidth::Auto.resolve(64), 1);
        assert_eq!(LaneWidth::Auto.resolve(192), 4);
        assert_eq!(LaneWidth::Auto.resolve(256), 4);
        assert_eq!(LaneWidth::Auto.resolve(512), 8);
        assert_eq!(LaneWidth::Auto.resolve(100_000), 8);
        // Whatever Auto picks is always a supported explicit width.
        for patterns in (0..2048).step_by(37) {
            let lanes = LaneWidth::Auto.resolve(patterns);
            assert!([1, 4, 8].contains(&lanes), "patterns {patterns} -> {lanes}");
        }
    }

    #[test]
    fn builder_and_accessors_round_trip() {
        let config = RunConfig::new()
            .with_engine(EngineKind::Serial)
            .with_workers(3)
            .with_base_seed(1981)
            .with_test_mode(TestMode::Bist)
            .with_lanes(LaneWidth::X4)
            .with_metrics(MetricsMode::Tree);
        assert_eq!(config.engine(), EngineKind::Serial);
        assert_eq!(config.test_mode(), TestMode::Bist);
        assert_eq!(config.lanes(), LaneWidth::X4);
        assert_eq!(config.metrics(), MetricsMode::Tree);
        assert_eq!(config.workers(), Some(3));
        assert_eq!(config.effective_workers(), 3);
        assert_eq!(config.base_seed(), 1981);
        assert_eq!(config.seed_or(7), 1981);

        let default = RunConfig::default();
        assert_eq!(default.engine(), EngineKind::Parallel);
        assert_eq!(default.test_mode(), TestMode::Stored);
        assert_eq!(default.workers(), None);
        assert!(default.effective_workers() >= 1);
        assert_eq!(default.base_seed(), DEFAULT_BASE_SEED);
        assert_eq!(default.seed_or(7), 7);
        assert_eq!(default.lanes(), LaneWidth::Auto);
        assert_eq!(default.metrics(), MetricsMode::Off);
        // `with_workers(0)` means "back to automatic".
        assert_eq!(default.with_workers(0).workers(), None);
    }

    #[test]
    fn display_names_every_field() {
        let config = RunConfig::new().with_workers(2);
        let rendered = config.to_string();
        assert!(rendered.contains("engine = parallel"), "{rendered}");
        assert!(rendered.contains("workers = 2"), "{rendered}");
        assert!(rendered.contains("base seed = 42"), "{rendered}");
        assert!(rendered.contains("test mode = stored"), "{rendered}");
        assert!(rendered.contains("lanes = auto"), "{rendered}");
        assert!(RunConfig::new().to_string().contains("auto("));
        assert!(RunConfig::new()
            .with_lanes(LaneWidth::X8)
            .to_string()
            .contains("lanes = 8"));
        assert!(RunConfig::new()
            .with_test_mode(TestMode::Bist)
            .to_string()
            .contains("test mode = bist"));
    }

    /// Environment-variable parsing, exercised in one sequential test (env
    /// mutation is process-global, so splitting these into separate `#[test]`
    /// functions would race under the parallel test runner).
    #[test]
    fn from_env_round_trip_and_errors() {
        let clear = || {
            env::remove_var(ENGINE_VAR);
            env::remove_var(WORKERS_VAR);
            env::remove_var(SEED_VAR);
            env::remove_var(TEST_MODE_VAR);
            env::remove_var(SCAN_CHAINS_VAR);
            env::remove_var(LANES_VAR);
            env::remove_var(METRICS_VAR);
        };
        clear();
        assert_eq!(RunConfig::from_env(), Ok(RunConfig::default()));

        env::set_var(ENGINE_VAR, "Deductive");
        env::set_var(WORKERS_VAR, " 4 ");
        env::set_var(SEED_VAR, "1981");
        env::set_var(TEST_MODE_VAR, "BIST");
        env::set_var(SCAN_CHAINS_VAR, "8");
        env::set_var(LANES_VAR, " 4 ");
        let config = RunConfig::from_env().expect("valid environment");
        assert_eq!(config.engine(), EngineKind::Deductive);
        assert_eq!(config.workers(), Some(4));
        assert_eq!(config.base_seed(), 1981);
        assert_eq!(config.test_mode(), TestMode::Bist);
        assert_eq!(config.scan().map(ScanPlan::chains), Some(8));
        assert_eq!(config.lanes(), LaneWidth::X4);
        env::remove_var(SCAN_CHAINS_VAR);
        env::set_var(LANES_VAR, "AUTO");
        assert_eq!(
            RunConfig::from_env().expect("auto lanes").lanes(),
            LaneWidth::Auto
        );
        env::remove_var(LANES_VAR);

        env::set_var(ENGINE_VAR, " AUTO ");
        let config = RunConfig::from_env().expect("auto engine");
        assert!(config.engine_is_auto());
        assert_eq!(config.engine_for_size(100), EngineKind::Deductive);
        assert_eq!(config.engine_for_size(50_000), EngineKind::Incremental);

        env::set_var(ENGINE_VAR, "warp");
        let error = RunConfig::from_env().expect_err("invalid engine");
        assert_eq!(error.variable(), ENGINE_VAR);
        assert_eq!(error.value(), "warp");
        let message = error.to_string();
        assert!(message.contains("LSIQ_ENGINE"), "{message}");
        assert!(
            message.contains("serial, ppsfp, deductive, parallel or incremental"),
            "{message}"
        );
        assert!(message.contains("auto"), "{message}");
        assert!(message.contains("unset the variable"), "{message}");

        env::set_var(ENGINE_VAR, "parallel");
        env::set_var(WORKERS_VAR, "0");
        let error = RunConfig::from_env().expect_err("zero workers");
        assert_eq!(error.variable(), WORKERS_VAR);
        assert!(error.to_string().contains("between 1 and 1024"), "{error}");

        env::set_var(WORKERS_VAR, "8");
        env::set_var(SEED_VAR, "not-a-seed");
        let error = RunConfig::from_env().expect_err("bad seed");
        assert_eq!(error.variable(), SEED_VAR);
        assert!(error.to_string().contains("64-bit"), "{error}");

        env::set_var(SEED_VAR, "7");
        env::set_var(TEST_MODE_VAR, "scan");
        let error = RunConfig::from_env().expect_err("bad test mode");
        assert_eq!(error.variable(), TEST_MODE_VAR);
        assert_eq!(error.value(), "scan");
        assert!(error.to_string().contains("stored or bist"), "{error}");

        env::set_var(TEST_MODE_VAR, "bist");
        env::set_var(WORKERS_VAR, "40000");
        let error = RunConfig::from_env().expect_err("workers above the bound");
        assert_eq!(error.variable(), WORKERS_VAR);
        assert!(error.to_string().contains("1 and 1024"), "{error}");

        env::set_var(WORKERS_VAR, "8");
        for bad in ["0", "-1", "many", "99999"] {
            env::set_var(SCAN_CHAINS_VAR, bad);
            let error = RunConfig::from_env().expect_err("bad scan-chain count");
            assert_eq!(error.variable(), SCAN_CHAINS_VAR);
            assert_eq!(error.value(), bad);
            assert!(error.to_string().contains("1 and 4096"), "{error}");
        }
        env::remove_var(SCAN_CHAINS_VAR);

        for bad in ["2", "16", "wide", "-4"] {
            env::set_var(LANES_VAR, bad);
            let error = RunConfig::from_env().expect_err("bad lane width");
            assert_eq!(error.variable(), LANES_VAR);
            assert_eq!(error.value(), bad);
            assert!(error.to_string().contains("auto, 1, 4 or 8"), "{error}");
        }
        env::remove_var(LANES_VAR);

        env::set_var(METRICS_VAR, " Tree ");
        assert_eq!(
            RunConfig::from_env().expect("tree metrics").metrics(),
            MetricsMode::Tree
        );
        env::set_var(METRICS_VAR, "JSON");
        assert_eq!(
            RunConfig::from_env().expect("json metrics").metrics(),
            MetricsMode::Json
        );
        for bad in ["verbose", "1", "yes"] {
            env::set_var(METRICS_VAR, bad);
            let error = RunConfig::from_env().expect_err("bad metrics mode");
            assert_eq!(error.variable(), METRICS_VAR);
            assert_eq!(error.value(), bad);
            assert!(error.to_string().contains("off, json or tree"), "{error}");
        }

        clear();
        assert_eq!(RunConfig::from_env(), Ok(RunConfig::default()));
    }

    #[test]
    fn scan_plan_validates_and_displays() {
        let plan = ScanPlan::new(4).expect("valid plan");
        assert_eq!(plan.chains(), 4);
        assert_eq!(plan.to_string(), "4 chain(s)");
        assert!(ScanPlan::new(0).is_err());
        assert!(ScanPlan::new(MAX_SCAN_CHAINS + 1).is_err());
        let error = ScanPlan::new(0).expect_err("zero chains");
        assert_eq!(error.variable(), SCAN_CHAINS_VAR);

        let config = RunConfig::new().with_scan(Some(plan));
        assert_eq!(config.scan(), Some(plan));
        assert!(config.to_string().contains("scan = 4 chain(s)"));
        assert_eq!(config.with_scan(None).scan(), None);
        assert_eq!(RunConfig::default().scan(), None);
    }

    #[test]
    fn invalid_value_constructor_renders_like_the_parser() {
        let error = ConfigError::invalid_value(
            "BistPlan::signature_width",
            "7",
            "one of 4, 8, 12, 16, 24, 32, 48 or 64",
        );
        assert_eq!(error.variable(), "BistPlan::signature_width");
        assert_eq!(error.value(), "7");
        assert!(
            error.to_string().contains("expected one of 4, 8"),
            "{error}"
        );
    }
}
