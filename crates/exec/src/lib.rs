//! Typed execution configuration and the persistent worker pool.
//!
//! The paper's experiment is one coherent campaign — build a test programme
//! (Section 5), simulate a production line (Section 7), fit the reject model
//! (Section 6) — and every stage shares the same three run-time choices: the
//! fault-simulation engine, the worker-thread count and the base seed.  This
//! crate turns those choices into one typed value instead of three stringly
//! environment variables parsed (and panicking) independently all over the
//! workspace:
//!
//! * [`RunConfig`] — the engine kind, worker count and base seed, built with
//!   a builder or fallibly from the environment in exactly one place
//!   ([`RunConfig::from_env`], the *only* `LSIQ_*` parsing site in the
//!   workspace), returning a [`ConfigError`] instead of a panic;
//! * [`EngineKind`] — the names of the five fault-simulation engines
//!   (instantiating them lives in `lsiq-fault`, which this crate does not
//!   depend on);
//! * [`ExecutionContext`] — a persistent pool of parked worker threads with
//!   a scoped fork-join API ([`ExecutionContext::scope`]).  Every parallel
//!   stage of the reproduction — fault-universe sharding, lot generation,
//!   wafer test, reject tabulation, `(y, n0)` sweeps — runs on one such
//!   pool, so worker threads are spawned once per session and reused across
//!   all sweep points instead of respawned per call.
//!
//! The facade crate bundles a [`RunConfig`] and an [`ExecutionContext`] into
//! `lsi_quality::Session`, the one-call entry point of the reproduction
//! binaries.
//!
//! ```
//! use lsiq_exec::{EngineKind, ExecutionContext, RunConfig};
//!
//! let config = RunConfig::default()
//!     .with_engine(EngineKind::Deductive)
//!     .with_workers(2);
//! let context = ExecutionContext::from_config(&config);
//! assert_eq!(context.workers(), 2);
//!
//! // Fork-join on the persistent pool: disjoint `&mut` slots make the
//! // result independent of which worker runs which job.
//! let mut squares = vec![0u64; 8];
//! context.scope(|scope| {
//!     for (value, slot) in squares.iter_mut().enumerate() {
//!         scope.spawn(move || *slot = (value * value) as u64);
//!     }
//! });
//! assert_eq!(squares, [0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

pub mod config;
pub mod pool;

pub use config::{
    ConfigError, EngineKind, LaneWidth, MetricsMode, RunConfig, ScanPlan, TestMode,
    DEFAULT_BASE_SEED, ENGINE_VAR, LANES_VAR, METRICS_VAR, SCAN_CHAINS_VAR,
};
pub use pool::{ExecutionContext, Scope};
