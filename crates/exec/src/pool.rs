//! The persistent fork-join worker pool.
//!
//! [`ExecutionContext`] owns a set of parked worker threads that live for
//! the whole session.  Work is submitted through the scoped fork-join API
//! [`ExecutionContext::scope`]: the scope body spawns closures that may
//! borrow from the enclosing stack frame, and `scope` does not return until
//! every spawned job has finished — the same contract as
//! `std::thread::scope`, but without spawning (and tearing down) operating
//! system threads on every call.  A sweep over dozens of `(y, n0)` lot
//! experiments therefore reuses the same workers for every point.
//!
//! Design notes:
//!
//! * Jobs go through one shared FIFO injector queue.  The jobs of this
//!   workspace are coarse shards (hundreds of chips or faults each), so a
//!   single mutex-protected queue is nowhere near contention.
//! * The thread that calls [`scope`](ExecutionContext::scope) *participates*:
//!   after the scope body returns it drains queued jobs itself until its own
//!   jobs are done.  A context configured for `n` workers therefore parks
//!   only `n - 1` pool threads, and a 1-worker context runs everything
//!   inline on the caller with no cross-thread traffic at all.
//! * Helping also makes nested scopes deadlock-free: a job that opens its
//!   own scope on the same context drains the queue while it waits, so
//!   progress never depends on a parked worker being available.
//! * A panicking job does not poison the pool: the panic is caught in the
//!   job wrapper, carried to the owning scope, and re-thrown from `scope`
//!   after every sibling job has been joined.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread;
use std::time::Instant;

use crate::config::RunConfig;
use lsiq_obs::{Counter, Gauge};

/// Fork-join scopes opened on any context.
static SCOPES: Counter = Counter::new("pool.scopes");
/// Jobs spawned into scopes.  Spawn counts are a property of the workload,
/// so this total is identical at every worker count (unlike the wait
/// totals below, which describe the pool's actual schedule).
static JOBS: Counter = Counter::new("pool.jobs");
/// Times a pool worker parked on the job-ready condvar.
static PARKS: Counter = Counter::new("pool.parks");
/// Nanoseconds pool workers spent parked (includes idle time between
/// scopes while telemetry is enabled).
static PARK_NS: Counter = Counter::new("pool.park_ns");
/// Nanoseconds scope callers spent waiting for in-flight jobs after the
/// queue drained.
static JOIN_WAIT_NS: Counter = Counter::new("pool.join_wait_ns");
/// Total execution lanes of the most recently used context.
static WORKERS: Gauge = Gauge::new("pool.workers");

/// A queued unit of work.  Jobs are the wrappers built by [`Scope::spawn`];
/// they catch panics internally and therefore never unwind into the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering the guard if a previous holder panicked (jobs
/// catch panics, so poisoning can only come from foreign unwinds).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// State shared between the context handle and its worker threads.
struct PoolShared {
    queue: Mutex<QueueState>,
    job_ready: Condvar,
}

impl PoolShared {
    fn push(&self, job: Job) {
        lock(&self.queue).jobs.push_back(job);
        self.job_ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        lock(&self.queue).jobs.pop_front()
    }
}

fn worker_loop(shared: Arc<PoolShared>, worker_index: usize) {
    // Bind this worker to its own counter shard so concurrent recording
    // never contends on one cache line (slot 0 is the participating caller).
    lsiq_obs::set_worker_slot(worker_index);
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                let parked = lsiq_obs::enabled().then(Instant::now);
                queue = shared
                    .job_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
                if let Some(parked) = parked {
                    PARKS.incr();
                    PARK_NS.add(parked.elapsed().as_nanos() as u64);
                }
            }
        };
        job();
    }
}

/// Book-keeping of one [`ExecutionContext::scope`] call: how many spawned
/// jobs are still unfinished, and the first panic payload if any job blew up.
struct ScopeState {
    pending: Mutex<usize>,
    finished: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn new() -> ScopeState {
        ScopeState {
            pending: Mutex::new(0),
            finished: Condvar::new(),
            panic: Mutex::new(None),
        }
    }
}

/// A persistent pool of parked worker threads with a scoped fork-join API.
///
/// Construct one per session ([`ExecutionContext::new`] /
/// [`ExecutionContext::from_config`]) and thread it through the parallel
/// stages; code paths with no context in hand fall back to the shared
/// process-wide pool ([`ExecutionContext::global`]).
///
/// ```
/// use lsiq_exec::ExecutionContext;
///
/// let context = ExecutionContext::new(4);
/// let values = [3u64, 1, 4, 1, 5, 9, 2, 6];
/// let mut doubled = vec![0u64; values.len()];
/// context.scope(|scope| {
///     for (slot, &value) in doubled.iter_mut().zip(&values) {
///         scope.spawn(move || *slot = value * 2);
///     }
/// });
/// assert_eq!(doubled, [6, 2, 8, 2, 10, 18, 4, 12]);
///
/// // The same workers serve every subsequent scope — nothing is respawned.
/// let total: u64 = doubled.iter().sum();
/// assert_eq!(total, 62);
/// ```
pub struct ExecutionContext {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ExecutionContext {
    /// Creates a context with `workers` total execution lanes (`0` means the
    /// available hardware parallelism).
    ///
    /// The calling thread participates in every [`scope`](Self::scope), so
    /// only `workers - 1` pool threads are spawned; a 1-worker context runs
    /// every job inline on the caller.
    ///
    /// Thread spawning is best-effort: if the operating system refuses a
    /// thread (resource exhaustion, a configured count beyond the process's
    /// limits), the context runs with the lanes it obtained — correctness
    /// never depends on the pool size, because the caller drains the queue
    /// itself — and [`workers`](Self::workers) reports the real count.
    pub fn new(workers: usize) -> ExecutionContext {
        let workers = if workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(workers.saturating_sub(1));
        for index in 1..workers {
            let shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name(format!("lsiq-exec-{index}"))
                .spawn(move || worker_loop(shared, index))
            {
                Ok(handle) => handles.push(handle),
                // Out of threads: degrade to the lanes already running
                // rather than crashing the whole session.
                Err(_) => break,
            }
        }
        let workers = handles.len() + 1;
        ExecutionContext {
            shared,
            workers,
            handles,
        }
    }

    /// Creates a context sized by a [`RunConfig`] (its explicit worker
    /// override, or the available hardware parallelism).
    pub fn from_config(config: &RunConfig) -> ExecutionContext {
        ExecutionContext::new(config.workers().unwrap_or(0))
    }

    /// The shared process-wide pool, sized to the available hardware
    /// parallelism and created on first use.
    ///
    /// This is the fallback for compatibility entry points that predate the
    /// typed API (`ParallelLotRunner::new`, engines built without an
    /// explicit context): even those now reuse persistent workers instead of
    /// respawning threads per call.
    pub fn global() -> &'static ExecutionContext {
        static GLOBAL: OnceLock<ExecutionContext> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecutionContext::new(0))
    }

    /// Total execution lanes of this context (pool threads plus the
    /// participating caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs a fork-join scope on the pool.
    ///
    /// The body may [`spawn`](Scope::spawn) jobs that borrow from the
    /// enclosing stack frame; `scope` returns only after every spawned job
    /// has finished, exactly like `std::thread::scope`.  If the body or any
    /// job panics, the panic is re-thrown here — after all sibling jobs have
    /// been joined, so borrowed data is never left aliased.  When both the
    /// body and a job panic, the body's panic wins (it is the one already
    /// unwinding through the caller, matching `std::thread::scope`).
    pub fn scope<'env, F, R>(&self, body: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        SCOPES.incr();
        WORKERS.set(self.workers as u64);
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::new(ScopeState::new()),
            _env: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| body(&scope)));
        self.join_scope(&scope.state);
        match result {
            Ok(value) => {
                if let Some(payload) = lock(&scope.state.panic).take() {
                    panic::resume_unwind(payload);
                }
                value
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Maps every item through `work` on the pool — the ordered fork-join
    /// building block of the parallel stages: one job per item, results
    /// returned in item order regardless of which worker ran what.
    ///
    /// ```
    /// use lsiq_exec::ExecutionContext;
    ///
    /// let context = ExecutionContext::new(3);
    /// let squares = context.scope_map(vec![1u64, 2, 3, 4], |value| value * value);
    /// assert_eq!(squares, [1, 4, 9, 16]);
    /// ```
    pub fn scope_map<I, T, F>(&self, items: Vec<I>, work: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = items.iter().map(|_| None).collect();
        let work = &work;
        self.scope(|scope| {
            for (slot, item) in slots.iter_mut().zip(items) {
                scope.spawn(move || *slot = Some(work(item)));
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("scope joins every job before returning"))
            .collect()
    }

    /// Waits until every job of `state` has finished, running queued jobs on
    /// the calling thread while it waits (which is what makes 1-worker
    /// contexts and nested scopes work without extra threads).
    fn join_scope(&self, state: &ScopeState) {
        loop {
            if *lock(&state.pending) == 0 {
                return;
            }
            if let Some(job) = self.shared.try_pop() {
                job();
                continue;
            }
            // The queue is empty, so all remaining jobs of this scope are
            // in flight on other threads; park until they signal completion.
            let waited = lsiq_obs::enabled().then(Instant::now);
            let mut pending = lock(&state.pending);
            while *pending != 0 {
                pending = state
                    .finished
                    .wait(pending)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if let Some(waited) = waited {
                JOIN_WAIT_NS.add(waited.elapsed().as_nanos() as u64);
            }
            return;
        }
    }
}

impl fmt::Debug for ExecutionContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutionContext")
            .field("workers", &self.workers)
            .field("pool_threads", &self.handles.len())
            .finish()
    }
}

impl Drop for ExecutionContext {
    fn drop(&mut self) {
        lock(&self.shared.queue).shutdown = true;
        self.shared.job_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The spawn handle passed to an [`ExecutionContext::scope`] body.
///
/// The `'env` lifetime is invariant and covers everything spawned jobs may
/// borrow; jobs cannot capture the `Scope` itself, so no job can outlive its
/// scope by re-spawning.
pub struct Scope<'env> {
    shared: Arc<PoolShared>,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns a job on the pool.  The job may borrow anything that outlives
    /// the scope's `'env`; the enclosing [`ExecutionContext::scope`] call
    /// joins it before returning.
    pub fn spawn<F>(&self, work: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(work)) {
                let mut slot = lock(&state.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = lock(&state.pending);
            *pending -= 1;
            if *pending == 0 {
                state.finished.notify_all();
            }
        });
        // SAFETY: `ExecutionContext::scope` joins every spawned job before
        // it returns — including when the scope body or a sibling job
        // panics — so the job cannot outlive any `'env` borrow it captures.
        // The transmute erases only the `'env` bound so the job can sit in
        // the pool's `'static` queue.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        JOBS.incr();
        *lock(&self.state.pending) += 1;
        self.shared.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_jobs_and_preserves_slot_order() {
        for workers in [1, 2, 5] {
            let context = ExecutionContext::new(workers);
            let mut results = vec![0usize; 64];
            context.scope(|scope| {
                for (index, slot) in results.iter_mut().enumerate() {
                    scope.spawn(move || *slot = index * index);
                }
            });
            let expected: Vec<usize> = (0..64).map(|index| index * index).collect();
            assert_eq!(results, expected, "workers = {workers}");
        }
    }

    #[test]
    fn sequential_scopes_reuse_the_same_pool() {
        let context = ExecutionContext::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            context.scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn nested_scopes_complete_even_on_a_single_worker() {
        for workers in [1, 2] {
            let context = ExecutionContext::new(workers);
            let mut totals = vec![0u64; 6];
            context.scope(|scope| {
                let context = &context;
                for (index, slot) in totals.iter_mut().enumerate() {
                    scope.spawn(move || {
                        let mut parts = [0u64; 4];
                        context.scope(|inner| {
                            for (part, cell) in parts.iter_mut().enumerate() {
                                inner.spawn(move || *cell = (index * 10 + part) as u64);
                            }
                        });
                        *slot = parts.iter().sum();
                    });
                }
            });
            let expected: Vec<u64> = (0..6).map(|index| (index * 40 + 6) as u64).collect();
            assert_eq!(totals, expected, "workers = {workers}");
        }
    }

    #[test]
    fn job_panics_propagate_and_do_not_poison_the_pool() {
        let context = ExecutionContext::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            context.scope(|scope| {
                scope.spawn(|| panic!("job exploded"));
                scope.spawn(|| {});
            });
        }));
        assert!(result.is_err(), "panic must cross the scope boundary");

        // The pool is still fully functional afterwards.
        let mut values = vec![0u32; 4];
        context.scope(|scope| {
            for (index, slot) in values.iter_mut().enumerate() {
                scope.spawn(move || *slot = index as u32 + 1);
            }
        });
        assert_eq!(values, [1, 2, 3, 4]);
    }

    #[test]
    fn body_panic_takes_precedence_over_job_panics() {
        let context = ExecutionContext::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            context.scope(|scope| {
                scope.spawn(|| panic!("job failure"));
                // The body's own panic is the one already unwinding through
                // the caller; it must survive the join.
                panic!("body failure");
            });
        }));
        let payload = result.expect_err("scope must panic");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .expect("str payload");
        assert_eq!(message, "body failure");
    }

    #[test]
    fn scope_map_preserves_item_order() {
        let context = ExecutionContext::new(4);
        let labels = context.scope_map((0..40).collect(), |index: usize| format!("#{index}"));
        for (index, label) in labels.iter().enumerate() {
            assert_eq!(label, &format!("#{index}"));
        }
    }

    #[test]
    fn scope_returns_the_body_value_and_empty_scopes_are_free() {
        let context = ExecutionContext::new(2);
        assert_eq!(context.scope(|_| 42), 42);
        assert_eq!(context.workers(), 2);
        assert!(ExecutionContext::global().workers() >= 1);
        assert!(format!("{context:?}").contains("workers"));
    }

    #[test]
    fn telemetry_counts_scopes_and_spawned_jobs() {
        // Other tests in this binary may run scopes concurrently (inflating
        // the process-global totals), so assert on deltas being at least
        // what this test contributed.
        lsiq_obs::set_mode(lsiq_obs::MetricsMode::Json);
        let scopes_before = SCOPES.value();
        let jobs_before = JOBS.value();
        let context = ExecutionContext::new(2);
        let mut slots = vec![0u8; 5];
        context.scope(|scope| {
            for slot in slots.iter_mut() {
                scope.spawn(move || *slot = 1);
            }
        });
        assert!(SCOPES.value() > scopes_before);
        assert!(JOBS.value() >= jobs_before + 5);
        lsiq_obs::set_mode(lsiq_obs::MetricsMode::Off);
        assert_eq!(slots, [1, 1, 1, 1, 1]);

        // Disabled mode records nothing further.
        let jobs_frozen = JOBS.value();
        context.scope(|scope| scope.spawn(|| {}));
        assert_eq!(JOBS.value(), jobs_frozen);
    }

    #[test]
    fn from_config_respects_the_override() {
        let config = RunConfig::default().with_workers(3);
        assert_eq!(ExecutionContext::from_config(&config).workers(), 3);
        assert!(ExecutionContext::from_config(&RunConfig::default()).workers() >= 1);
    }
}
