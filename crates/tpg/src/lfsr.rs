//! LFSR-based pseudo-random pattern generation.
//!
//! Linear-feedback shift registers are the classical built-in self-test
//! pattern source; they are included both for realism (a 1981 production
//! tester would often apply LFSR-like sequences) and as a second,
//! differently structured pattern source for the ablation experiments.

use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, SplitMix64};

/// A Galois LFSR over 64 bits with a fixed maximal-length tap polynomial
/// (x^64 + x^63 + x^61 + x^60 + 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
    width: usize,
}

impl Lfsr {
    /// Creates an LFSR producing patterns of `width` bits.
    ///
    /// The seed is expanded to a dense 64-bit starting state (sparse seeds
    /// such as `1` would otherwise emit long runs of zeros before the
    /// feedback taps populate the register); a zero expansion falls back to
    /// the classic all-ones-free value `1`.
    pub fn new(width: usize, seed: u64) -> Self {
        let expanded = SplitMix64::seed_from_u64(seed).next_u64();
        Lfsr {
            state: if expanded == 0 { 1 } else { expanded },
            width,
        }
    }

    /// Advances the register one step (Galois form) and returns the new state.
    fn step(&mut self) -> u64 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            // Polynomial x^64 + x^63 + x^61 + x^60 + 1 in Galois mask form.
            self.state ^= 0xD800_0000_0000_0000;
        }
        self.state
    }

    /// Produces the next pattern from the register's serial output: one shift
    /// per pattern bit, exactly as an LFSR feeding a scan chain would.
    pub fn next_pattern(&mut self) -> Pattern {
        let bits: Vec<bool> = (0..self.width)
            .map(|_| {
                let bit = self.state & 1 == 1;
                self.step();
                bit
            })
            .collect();
        Pattern::from_bits(bits)
    }

    /// Generates an ordered set of `count` patterns.
    pub fn generate(mut self, count: usize) -> PatternSet {
        (0..count).map(|_| self.next_pattern()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_deterministic_and_seed_sensitive() {
        let a = Lfsr::new(8, 0xDEAD).generate(50);
        let b = Lfsr::new(8, 0xDEAD).generate(50);
        let c = Lfsr::new(8, 0xBEEF).generate(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_replaced() {
        let patterns = Lfsr::new(8, 0).generate(20);
        // The sequence must not be stuck at all-zero.
        assert!(patterns.iter().any(|p| p.bits().iter().any(|&b| b)));
    }

    #[test]
    fn patterns_do_not_repeat_quickly() {
        let patterns = Lfsr::new(16, 0xACE1).generate(200);
        let mut seen = std::collections::HashSet::new();
        let repeats = patterns
            .iter()
            .filter(|p| !seen.insert(p.to_string()))
            .count();
        assert!(repeats < 5, "{repeats} repeated patterns in 200");
    }

    #[test]
    fn width_is_respected() {
        let patterns = Lfsr::new(5, 3).generate(10);
        assert!(patterns.iter().all(|p| p.width() == 5));
    }
}
