//! LFSR-based pseudo-random pattern generation.
//!
//! Linear-feedback shift registers are the classical built-in self-test
//! pattern source; they are included both for realism (a 1981 production
//! tester would often apply LFSR-like sequences) and as a second,
//! differently structured pattern source for the ablation experiments.
//!
//! [`Lfsr`] is the historical single-channel serial generator: one bit per
//! register step, `width` steps per pattern, with a fixed maximal-length
//! degree-64 polynomial.  It is now a thin wrapper over the parameterizable
//! [`GaloisLfsr`] of `lsiq_bist` (same polynomial, same seed expansion, same
//! read-then-step order, bit-for-bit identical output); for multi-channel
//! scan-style generation with a phase shifter use
//! [`StumpsGenerator`](lsiq_bist::stumps::StumpsGenerator) directly.

use lsiq_bist::lfsr::GaloisLfsr;
use lsiq_sim::pattern::{Pattern, PatternSet};

/// A Galois LFSR over 64 bits with a fixed maximal-length tap polynomial
/// (x^64 + x^63 + x^61 + x^60 + 1), emitting patterns serially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    register: GaloisLfsr,
    width: usize,
}

impl Lfsr {
    /// Creates an LFSR producing patterns of `width` bits.
    ///
    /// The seed expansion (dense 64-bit starting state, zero falling back to
    /// `1`) lives in [`GaloisLfsr::maximal`]; the sequence is unchanged from
    /// the pre-BIST fixed-polynomial implementation.
    pub fn new(width: usize, seed: u64) -> Self {
        Lfsr {
            register: GaloisLfsr::maximal(64, seed),
            width,
        }
    }

    /// Produces the next pattern from the register's serial output: one shift
    /// per pattern bit, exactly as an LFSR feeding a single scan chain would.
    pub fn next_pattern(&mut self) -> Pattern {
        Pattern::from_bits((0..self.width).map(|_| self.register.next_bit()))
    }

    /// Generates an ordered set of `count` patterns.
    pub fn generate(mut self, count: usize) -> PatternSet {
        (0..count).map(|_| self.next_pattern()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_deterministic_and_seed_sensitive() {
        let a = Lfsr::new(8, 0xDEAD).generate(50);
        let b = Lfsr::new(8, 0xDEAD).generate(50);
        let c = Lfsr::new(8, 0xBEEF).generate(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_replaced() {
        let patterns = Lfsr::new(8, 0).generate(20);
        // The sequence must not be stuck at all-zero.
        assert!(patterns.iter().any(|p| p.bits().iter().any(|&b| b)));
    }

    #[test]
    fn patterns_do_not_repeat_quickly() {
        let patterns = Lfsr::new(16, 0xACE1).generate(200);
        let mut seen = std::collections::HashSet::new();
        let repeats = patterns
            .iter()
            .filter(|p| !seen.insert(p.to_string()))
            .count();
        assert!(repeats < 5, "{repeats} repeated patterns in 200");
    }

    #[test]
    fn width_is_respected() {
        let patterns = Lfsr::new(5, 3).generate(10);
        assert!(patterns.iter().all(|p| p.width() == 5));
    }

    #[test]
    fn wrapper_matches_the_historical_sequence() {
        // Golden prefix recorded from the pre-wrapper fixed-polynomial
        // implementation: seed 0xACE1, width 16, first three patterns.
        let patterns = Lfsr::new(16, 0xACE1).generate(3);
        let rendered: Vec<String> = patterns.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            rendered,
            ["1011101001001111", "0101110001001001", "1001000101010010"]
        );
    }
}
