//! Static test-set compaction.
//!
//! Reverse-order fault-simulation compaction: patterns are examined in
//! reverse application order and kept only if they detect at least one fault
//! not detected by the already-kept (later) patterns.  Random pattern sets
//! usually shrink substantially, which matters to the paper's cost argument
//! ("test application costs increase very rapidly" as coverage approaches
//! 100 percent).
//!
//! The pass is engine-aware: [`reverse_order_compaction`] runs on the
//! deductive engine (its per-pattern cost is independent of the shrinking
//! fault-universe size, which makes it ~an order of magnitude faster here
//! than the fault-injection engines), and
//! [`reverse_order_compaction_with`] accepts any [`EngineKind`] plus an
//! optional [`ExecutionContext`] so the parallel engine can run on a
//! session's persistent worker pool.  Every engine produces byte-identical
//! compaction results.

use lsiq_exec::ExecutionContext;
use lsiq_fault::simulator::{BuildEngine, EngineKind, EngineOptions};
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_sim::pattern::PatternSet;

/// The result of compacting a pattern set.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// The kept patterns, in their original relative order.
    pub compacted: PatternSet,
    /// Number of patterns in the original set.
    pub original_len: usize,
    /// Coverage of the original set over the supplied universe.
    pub original_coverage: f64,
    /// Coverage of the compacted set over the supplied universe.
    pub compacted_coverage: f64,
}

impl CompactionResult {
    /// The compaction ratio `compacted / original` (1.0 for an empty input).
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.compacted.len() as f64 / self.original_len as f64
        }
    }
}

/// Compacts `patterns` against `universe` by reverse-order fault simulation
/// on the default engine for this workload (deductive).
pub fn reverse_order_compaction(
    circuit: &Circuit,
    universe: &FaultUniverse,
    patterns: &PatternSet,
) -> CompactionResult {
    reverse_order_compaction_with(circuit, universe, patterns, EngineKind::Deductive, None)
}

/// Compacts `patterns` against `universe` with an explicit engine choice,
/// optionally executing on a persistent worker pool (the parallel engine
/// shards its faults across `context`; the single-threaded engines run on
/// the calling thread).  The kept patterns are identical for every engine
/// and worker count.
pub fn reverse_order_compaction_with(
    circuit: &Circuit,
    universe: &FaultUniverse,
    patterns: &PatternSet,
    engine: EngineKind,
    context: Option<&ExecutionContext>,
) -> CompactionResult {
    reverse_order_compaction_configured(
        circuit,
        universe,
        patterns,
        engine,
        &EngineOptions {
            context,
            ..EngineOptions::default()
        },
    )
}

/// Compacts `patterns` with a fully explicit [`EngineOptions`] bundle: a
/// worker pool, a packed lane width, and optionally a shared
/// [`GoodMachineCache`](lsiq_sim::cache::GoodMachineCache) so the full-set
/// simulations at the start and end of the pass reuse good-machine chunks
/// deposited by an earlier suite build or sweep over the same patterns.
/// The kept patterns are identical for every option combination.
pub fn reverse_order_compaction_configured(
    circuit: &Circuit,
    universe: &FaultUniverse,
    patterns: &PatternSet,
    engine: EngineKind,
    options: &EngineOptions,
) -> CompactionResult {
    let simulator = engine.build_configured(circuit, options);
    let simulator = simulator.as_ref();
    let original_list = simulator.run(universe, patterns);
    let original_coverage = original_list.coverage();

    // Walk patterns from last to first, keeping those that add detections.
    let mut kept_reversed: Vec<usize> = Vec::new();
    let mut detected = vec![false; universe.len()];
    for index in original_list.undetected_indices() {
        // Faults never detected by the full set can be ignored entirely.
        detected[index] = true;
    }

    for pattern_index in (0..patterns.len()).rev() {
        let single: PatternSet = [patterns
            .get(pattern_index)
            .expect("index is in range")
            .clone()]
        .into_iter()
        .collect();
        let undetected_universe = FaultUniverse::from_faults(
            universe
                .iter()
                .enumerate()
                .filter(|(i, _)| !detected[*i])
                .map(|(_, f)| *f)
                .collect(),
        );
        if undetected_universe.is_empty() {
            break;
        }
        let list = simulator.run(&undetected_universe, &single);
        if list.detected_count() == 0 {
            continue;
        }
        kept_reversed.push(pattern_index);
        // Map detections back to the original universe indices.
        let mut cursor = 0usize;
        for is_detected in detected.iter_mut() {
            if *is_detected {
                continue;
            }
            if list.state(cursor).is_detected() {
                *is_detected = true;
            }
            cursor += 1;
        }
    }

    kept_reversed.reverse();
    let compacted: PatternSet = kept_reversed
        .into_iter()
        .map(|i| patterns.get(i).expect("kept index is valid").clone())
        .collect();
    let compacted_coverage = simulator.run(universe, &compacted).coverage();
    CompactionResult {
        compacted,
        original_len: patterns.len(),
        original_coverage,
        compacted_coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomPatternGenerator;
    use lsiq_netlist::library;

    #[test]
    fn compaction_preserves_coverage() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns = RandomPatternGenerator::new(&circuit, 11).generate(200);
        let result = reverse_order_compaction(&circuit, &universe, &patterns);
        assert!(
            (result.compacted_coverage - result.original_coverage).abs() < 1e-12,
            "coverage changed: {} vs {}",
            result.compacted_coverage,
            result.original_coverage
        );
        assert!(result.compacted.len() <= result.original_len);
    }

    #[test]
    fn redundant_patterns_are_removed() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        // 200 random patterns over 5 inputs are heavily redundant.
        let patterns = RandomPatternGenerator::new(&circuit, 3).generate(200);
        let result = reverse_order_compaction(&circuit, &universe, &patterns);
        assert!(
            result.compacted.len() < 40,
            "expected strong compaction, kept {}",
            result.compacted.len()
        );
        assert!(result.ratio() < 0.25);
    }

    #[test]
    fn empty_pattern_set_is_handled() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let result = reverse_order_compaction(&circuit, &universe, &PatternSet::new());
        assert_eq!(result.compacted.len(), 0);
        assert_eq!(result.ratio(), 1.0);
        assert_eq!(result.original_coverage, 0.0);
    }

    #[test]
    fn kept_patterns_preserve_relative_order() {
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let patterns = RandomPatternGenerator::new(&circuit, 9).generate(50);
        let result = reverse_order_compaction(&circuit, &universe, &patterns);
        // Every kept pattern must appear in the original set, in order.
        let mut search_from = 0usize;
        for kept in result.compacted.iter() {
            let position = (search_from..patterns.len())
                .find(|&i| patterns.get(i) == Some(kept))
                .expect("kept pattern comes from the original set, in order");
            search_from = position + 1;
        }
    }

    #[test]
    fn every_engine_compacts_identically() {
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let patterns = RandomPatternGenerator::new(&circuit, 21).generate(60);
        let reference = reverse_order_compaction(&circuit, &universe, &patterns);
        for engine in EngineKind::ALL {
            let result =
                reverse_order_compaction_with(&circuit, &universe, &patterns, engine, None);
            assert_eq!(
                result.compacted.as_slice(),
                reference.compacted.as_slice(),
                "{engine}"
            );
            assert_eq!(result.original_coverage, reference.original_coverage);
            assert_eq!(result.compacted_coverage, reference.compacted_coverage);
        }
    }

    #[test]
    fn configured_compaction_matches_at_every_lane_width_with_a_shared_cache() {
        use lsiq_exec::LaneWidth;
        use lsiq_sim::cache::GoodMachineCache;

        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let patterns = RandomPatternGenerator::new(&circuit, 13).generate(120);
        let reference = reverse_order_compaction(&circuit, &universe, &patterns);
        let cache = GoodMachineCache::new();
        for engine in [
            EngineKind::Ppsfp,
            EngineKind::Parallel,
            EngineKind::Incremental,
        ] {
            for lanes in LaneWidth::EXPLICIT {
                let result = reverse_order_compaction_configured(
                    &circuit,
                    &universe,
                    &patterns,
                    engine,
                    &EngineOptions {
                        lanes,
                        cache: Some(&cache),
                        ..EngineOptions::default()
                    },
                );
                assert_eq!(
                    result.compacted.as_slice(),
                    reference.compacted.as_slice(),
                    "{engine}/{lanes}"
                );
            }
        }
        // Nine engine×lane passes over the same full pattern set: after the
        // first pass per lane width, the good machine replays from the cache.
        assert!(cache.hits() > 0);
        assert!(cache.misses() > 0);
    }

    #[test]
    fn context_bound_compaction_matches_at_any_worker_count() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let patterns = RandomPatternGenerator::new(&circuit, 5).generate(80);
        let reference = reverse_order_compaction(&circuit, &universe, &patterns);
        for workers in [1, 3] {
            let context = ExecutionContext::new(workers);
            let result = reverse_order_compaction_with(
                &circuit,
                &universe,
                &patterns,
                EngineKind::Parallel,
                Some(&context),
            );
            assert_eq!(
                result.compacted.as_slice(),
                reference.compacted.as_slice(),
                "workers = {workers}"
            );
        }
    }
}
