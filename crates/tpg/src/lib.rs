//! Test pattern generation.
//!
//! The paper's procedure starts from "a set of test patterns that need not
//! have a high fault coverage", applied to the chip in a fixed order.  This
//! crate generates such pattern sets:
//!
//! * [`random`] — seeded uniform random patterns,
//! * [`lfsr`] — LFSR (pseudo-random BIST-style) patterns,
//! * [`weighted`] — weighted random patterns with per-input bias,
//! * [`podem`] — a PODEM combinational ATPG for targeting specific faults,
//! * [`compaction`] — reverse-order fault-simulation compaction,
//! * [`suite`] — an end-to-end builder that combines random generation with
//!   PODEM top-up to reach a target coverage, producing the ordered pattern
//!   set the production-line tester applies.
//!
//! # Quick example
//!
//! ```
//! use lsiq_netlist::library;
//! use lsiq_tpg::random::RandomPatternGenerator;
//!
//! let circuit = library::c17();
//! let patterns = RandomPatternGenerator::new(&circuit, 42).generate(16);
//! assert_eq!(patterns.len(), 16);
//! ```

pub mod compaction;
pub mod lfsr;
pub mod podem;
pub mod random;
pub mod suite;
pub mod weighted;

pub use podem::{Podem, TestOutcome};
pub use random::RandomPatternGenerator;
pub use suite::{TestSuite, TestSuiteBuilder};
