//! PODEM (path-oriented decision making) combinational ATPG.
//!
//! Given a target stuck-at fault, PODEM searches over primary-input
//! assignments only, guided by a backtrace from the current objective to an
//! unassigned input.  It is used to top up random pattern sets to a requested
//! coverage, mirroring how a 1981 test engineer would add deterministic
//! patterns for the faults random vectors miss.

use lsiq_fault::model::{Fault, FaultSite};
use lsiq_netlist::circuit::{Circuit, GateId};
use lsiq_netlist::GateKind;
use lsiq_sim::eval::{controlling_value, eval_value3};
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::logic::Value3;
use lsiq_sim::pattern::Pattern;

/// The result of a PODEM run for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOutcome {
    /// A test pattern that detects the fault (unassigned inputs set to 0).
    Test(Pattern),
    /// The search space was exhausted: the fault is untestable (redundant).
    Untestable,
    /// The backtrack limit was reached before a conclusion.
    Aborted,
}

impl TestOutcome {
    /// Returns the test pattern if one was found.
    pub fn pattern(&self) -> Option<&Pattern> {
        match self {
            TestOutcome::Test(pattern) => Some(pattern),
            _ => None,
        }
    }
}

/// A PODEM test generator bound to one circuit.
#[derive(Debug)]
pub struct Podem<'c> {
    circuit: &'c Circuit,
    compiled: CompiledCircuit<'c>,
    max_backtracks: usize,
}

/// One entry of the PODEM decision stack.
#[derive(Debug, Clone, Copy)]
struct Decision {
    pi_position: usize,
    value: bool,
    alternative_tried: bool,
}

impl<'c> Podem<'c> {
    /// Creates a generator with the default backtrack limit (1000).
    pub fn new(circuit: &'c Circuit) -> Self {
        Podem {
            circuit,
            compiled: CompiledCircuit::new(circuit),
            max_backtracks: 1_000,
        }
    }

    /// Overrides the backtrack limit.
    pub fn with_max_backtracks(mut self, limit: usize) -> Self {
        self.max_backtracks = limit;
        self
    }

    /// Attempts to generate a test for `fault`.
    pub fn generate_test(&self, fault: &Fault) -> TestOutcome {
        let input_count = self.circuit.primary_inputs().len();
        let mut assignment = vec![Value3::Unknown; input_count];
        let mut decisions: Vec<Decision> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let (good, faulty) = self.simulate_pair(&assignment, fault);
            if self.is_detected(&good, &faulty) {
                let pattern =
                    Pattern::from_bits(assignment.iter().map(|v| v.to_bool().unwrap_or(false)));
                return TestOutcome::Test(pattern);
            }
            let must_backtrack = self.is_hopeless(fault, &good, &faulty);
            let next_objective = if must_backtrack {
                None
            } else {
                self.objective(fault, &good, &faulty)
            };
            match next_objective {
                Some((line, value)) => {
                    let (pi_position, pi_value) = self.backtrace(line, value, &good);
                    assignment[pi_position] = Value3::from_bool(pi_value);
                    decisions.push(Decision {
                        pi_position,
                        value: pi_value,
                        alternative_tried: false,
                    });
                }
                None => {
                    // Backtrack: flip the most recent decision whose
                    // alternative has not been tried.
                    backtracks += 1;
                    if backtracks > self.max_backtracks {
                        return TestOutcome::Aborted;
                    }
                    loop {
                        match decisions.pop() {
                            Some(decision) if !decision.alternative_tried => {
                                let flipped = !decision.value;
                                assignment[decision.pi_position] = Value3::from_bool(flipped);
                                decisions.push(Decision {
                                    pi_position: decision.pi_position,
                                    value: flipped,
                                    alternative_tried: true,
                                });
                                break;
                            }
                            Some(decision) => {
                                assignment[decision.pi_position] = Value3::Unknown;
                            }
                            None => return TestOutcome::Untestable,
                        }
                    }
                }
            }
        }
    }

    /// Three-valued good/faulty machine pair under a partial PI assignment.
    fn simulate_pair(&self, assignment: &[Value3], fault: &Fault) -> (Vec<Value3>, Vec<Value3>) {
        let good = self.compiled.node_values3(assignment);
        let circuit = self.circuit;
        let stuck = Value3::from_bool(fault.stuck.as_bool());
        let mut faulty = vec![Value3::Unknown; circuit.gate_count()];
        for (position, &input) in circuit.primary_inputs().iter().enumerate() {
            faulty[input.index()] = assignment.get(position).copied().unwrap_or(Value3::Unknown);
        }
        if let FaultSite::Output(gate) = fault.site {
            if circuit.gate(gate).kind() == GateKind::Input {
                faulty[gate.index()] = stuck;
            }
        }
        let mut fanin_values = Vec::new();
        for &id in self.compiled.order() {
            let gate = circuit.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            fanin_values.clear();
            for (pin, &driver) in gate.fanin().iter().enumerate() {
                let mut value = faulty[driver.index()];
                if fault.site == (FaultSite::InputPin { gate: id, pin }) {
                    value = stuck;
                }
                fanin_values.push(value);
            }
            let mut output = eval_value3(gate.kind(), &fanin_values);
            if fault.site == FaultSite::Output(id) {
                output = stuck;
            }
            faulty[id.index()] = output;
        }
        (good, faulty)
    }

    /// A fault is detected when some primary output has known, differing
    /// values in the two machines.
    fn is_detected(&self, good: &[Value3], faulty: &[Value3]) -> bool {
        self.circuit.primary_outputs().iter().any(|&out| {
            let g = good[out.index()];
            let f = faulty[out.index()];
            g.is_known() && f.is_known() && g != f
        })
    }

    /// The line whose value excites the fault, and the value it must take.
    fn excitation_line(&self, fault: &Fault) -> (GateId, bool) {
        let line = match fault.site {
            FaultSite::Output(gate) => gate,
            FaultSite::InputPin { gate, pin } => self.circuit.gate(gate).fanin()[pin],
        };
        (line, !fault.stuck.as_bool())
    }

    /// The good/faulty value pair seen at a specific gate input pin, taking a
    /// pin fault's forced value into account.
    fn pin_values(
        &self,
        fault: &Fault,
        gate: GateId,
        pin: usize,
        driver: GateId,
        good: &[Value3],
        faulty: &[Value3],
    ) -> (Value3, Value3) {
        let good_value = good[driver.index()];
        let faulty_value = if fault.site == (FaultSite::InputPin { gate, pin }) {
            Value3::from_bool(fault.stuck.as_bool())
        } else {
            faulty[driver.index()]
        };
        (good_value, faulty_value)
    }

    /// Returns `true` when no completion of the current assignment can detect
    /// the fault: either the fault site is already locked at the stuck value,
    /// or the fault effect exists but the D-frontier is empty.
    fn is_hopeless(&self, fault: &Fault, good: &[Value3], faulty: &[Value3]) -> bool {
        let (line, needed) = self.excitation_line(fault);
        let line_value = good[line.index()];
        if line_value.is_known() && line_value != Value3::from_bool(needed) {
            return true;
        }
        // If the fault is excited, require a non-empty D-frontier or an
        // effect already visible at an output.
        if line_value == Value3::from_bool(needed) && !self.is_detected(good, faulty) {
            return self.d_frontier(fault, good, faulty).is_empty();
        }
        false
    }

    /// Gates whose output carries no fault effect yet but at least one input
    /// does (including the faulted pin itself once the fault is excited).
    fn d_frontier(&self, fault: &Fault, good: &[Value3], faulty: &[Value3]) -> Vec<GateId> {
        let mut frontier = Vec::new();
        for (id, gate) in self.circuit.iter() {
            if gate.kind() == GateKind::Input {
                continue;
            }
            let out_good = good[id.index()];
            let out_faulty = faulty[id.index()];
            let output_has_effect =
                out_good.is_known() && out_faulty.is_known() && out_good != out_faulty;
            if output_has_effect {
                continue;
            }
            if !out_good.is_known() || !out_faulty.is_known() {
                let any_input_effect = gate.fanin().iter().enumerate().any(|(pin, &driver)| {
                    let (g, f) = self.pin_values(fault, id, pin, driver, good, faulty);
                    g.is_known() && f.is_known() && g != f
                });
                if any_input_effect {
                    frontier.push(id);
                }
            }
        }
        frontier
    }

    /// The current objective `(line, value)`: excite the fault first, then
    /// push the effect through a D-frontier gate.
    fn objective(
        &self,
        fault: &Fault,
        good: &[Value3],
        faulty: &[Value3],
    ) -> Option<(GateId, bool)> {
        let (line, needed) = self.excitation_line(fault);
        if !good[line.index()].is_known() {
            return Some((line, needed));
        }
        let frontier = self.d_frontier(fault, good, faulty);
        for gate_id in frontier {
            let gate = self.circuit.gate(gate_id);
            let non_controlling = controlling_value(gate.kind()).map(|c| !c).unwrap_or(true);
            for &driver in gate.fanin() {
                if !good[driver.index()].is_known() {
                    return Some((driver, non_controlling));
                }
            }
        }
        None
    }

    /// Walks an objective back to an unassigned primary input, flipping the
    /// desired value through inverting gates.
    fn backtrace(&self, mut line: GateId, mut value: bool, good: &[Value3]) -> (usize, bool) {
        loop {
            let gate = self.circuit.gate(line);
            if gate.kind() == GateKind::Input {
                let position = self
                    .circuit
                    .primary_inputs()
                    .iter()
                    .position(|&pi| pi == line)
                    .expect("input gates are primary inputs");
                return (position, value);
            }
            if gate.kind().is_inverting() {
                value = !value;
            }
            // Prefer an unassigned fanin; constants have no fanin and cannot
            // be reached because their value is always known.
            let next = gate
                .fanin()
                .iter()
                .copied()
                .find(|driver| !good[driver.index()].is_known())
                .unwrap_or_else(|| gate.fanin()[0]);
            line = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_fault::ppsfp::PpsfpSimulator;
    use lsiq_fault::simulator::FaultSimulator;
    use lsiq_fault::universe::FaultUniverse;
    use lsiq_netlist::library;
    use lsiq_sim::pattern::PatternSet;

    /// Checks with the fault simulator that `pattern` really detects `fault`.
    fn verify_detection(circuit: &lsiq_netlist::Circuit, fault: &Fault, pattern: &Pattern) {
        let universe = FaultUniverse::from_faults(vec![*fault]);
        let patterns: PatternSet = [pattern.clone()].into_iter().collect();
        let list = PpsfpSimulator::new(circuit).run(&universe, &patterns);
        assert_eq!(
            list.detected_count(),
            1,
            "PODEM pattern {pattern} does not detect {}",
            fault.describe(circuit)
        );
    }

    #[test]
    fn finds_tests_for_every_c17_fault() {
        let circuit = library::c17();
        let podem = Podem::new(&circuit);
        let universe = FaultUniverse::full(&circuit);
        for fault in &universe {
            match podem.generate_test(fault) {
                TestOutcome::Test(pattern) => verify_detection(&circuit, fault, &pattern),
                other => panic!(
                    "{}: expected a test, got {other:?}",
                    fault.describe(&circuit)
                ),
            }
        }
    }

    #[test]
    fn finds_tests_for_full_adder_faults() {
        let circuit = library::full_adder();
        let podem = Podem::new(&circuit);
        let universe = FaultUniverse::full(&circuit);
        for fault in &universe {
            match podem.generate_test(fault) {
                TestOutcome::Test(pattern) => verify_detection(&circuit, fault, &pattern),
                other => panic!(
                    "{}: expected a test, got {other:?}",
                    fault.describe(&circuit)
                ),
            }
        }
    }

    #[test]
    fn generated_tests_for_alu_faults_are_valid() {
        // The ALU contains a few untestable faults (constant-fed carry-in);
        // every produced test must be correct and most faults must get one.
        let circuit = library::alu4();
        let podem = Podem::new(&circuit);
        let universe = FaultUniverse::full(&circuit);
        let mut tested = 0usize;
        let mut untestable = 0usize;
        for fault in &universe {
            match podem.generate_test(fault) {
                TestOutcome::Test(pattern) => {
                    verify_detection(&circuit, fault, &pattern);
                    tested += 1;
                }
                TestOutcome::Untestable => untestable += 1,
                TestOutcome::Aborted => {}
            }
        }
        assert!(
            tested as f64 / universe.len() as f64 > 0.9,
            "only {tested}/{} faults got tests",
            universe.len()
        );
        assert!(untestable < universe.len() / 10);
    }

    #[test]
    fn reports_untestable_for_redundant_fault() {
        // Build a circuit with an obviously redundant fault: y = OR(a, NOT(a))
        // is constant 1, so y stuck-at-1 cannot be detected.
        use lsiq_netlist::{CircuitBuilder, GateKind};
        let mut builder = CircuitBuilder::new("redundant");
        let a = builder.input("a");
        let not_a = builder.gate("na", GateKind::Not, &[a]);
        let y = builder.gate("y", GateKind::Or, &[a, not_a]);
        builder.mark_output(y);
        let circuit = builder.finish().expect("valid");
        let y = circuit.find_signal("y").expect("exists");
        let fault = Fault::output(y, lsiq_fault::model::StuckValue::One);
        let outcome = Podem::new(&circuit).generate_test(&fault);
        assert_eq!(outcome, TestOutcome::Untestable);
        assert_eq!(outcome.pattern(), None);
    }

    #[test]
    fn abort_limit_is_respected() {
        // With a backtrack limit of zero the search gives up quickly on a
        // fault that needs at least one backtrack-worthy decision sequence.
        let circuit = library::alu4();
        let podem = Podem::new(&circuit).with_max_backtracks(0);
        let universe = FaultUniverse::full(&circuit);
        // At least one fault should still be trivially testable without any
        // backtracking, and none may loop forever.
        let mut found = 0usize;
        for fault in universe.iter().take(40) {
            if let TestOutcome::Test(pattern) = podem.generate_test(fault) {
                verify_detection(&circuit, fault, &pattern);
                found += 1;
            }
        }
        assert!(found > 0);
    }
}
