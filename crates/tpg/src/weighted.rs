//! Weighted random pattern generation.
//!
//! Some circuits (wide AND/OR cones, decoders) are poorly served by flat
//! 50/50 random patterns; biasing each input towards 0 or 1 raises the
//! detection probability of the hard faults.  The weighted generator is used
//! in the ablation experiments on pattern ordering.

use lsiq_netlist::circuit::Circuit;
use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

/// A weighted random pattern generator with a per-input probability of
/// producing a logic 1.
#[derive(Debug, Clone)]
pub struct WeightedPatternGenerator {
    weights: Vec<f64>,
    rng: Xoshiro256StarStar,
}

impl WeightedPatternGenerator {
    /// Creates a generator with the same weight for every primary input.
    ///
    /// Weights are clamped to `[0, 1]`.
    pub fn uniform_weight(circuit: &Circuit, weight: f64, seed: u64) -> Self {
        WeightedPatternGenerator {
            weights: vec![weight.clamp(0.0, 1.0); circuit.primary_inputs().len()],
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Creates a generator with explicit per-input weights (clamped to
    /// `[0, 1]`).
    pub fn with_weights(weights: Vec<f64>, seed: u64) -> Self {
        WeightedPatternGenerator {
            weights: weights.into_iter().map(|w| w.clamp(0.0, 1.0)).collect(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// The per-input weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Generates the next pattern.
    pub fn next_pattern(&mut self) -> Pattern {
        let weights = self.weights.clone();
        Pattern::from_bits(weights.iter().map(|&w| self.rng.next_bool(w)))
    }

    /// Generates an ordered set of `count` patterns.
    pub fn generate(mut self, count: usize) -> PatternSet {
        (0..count).map(|_| self.next_pattern()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    #[test]
    fn uniform_weight_controls_bit_density() {
        let circuit = library::alu4();
        let patterns = WeightedPatternGenerator::uniform_weight(&circuit, 0.8, 5).generate(2_000);
        let ones: usize = patterns
            .iter()
            .map(|p| p.bits().iter().filter(|&&b| b).count())
            .sum();
        let fraction = ones as f64 / (patterns.len() * 10) as f64;
        assert!((fraction - 0.8).abs() < 0.02, "fraction {fraction}");
    }

    #[test]
    fn per_input_weights_are_respected() {
        let generator = WeightedPatternGenerator::with_weights(vec![0.0, 1.0, 0.5], 9);
        assert_eq!(generator.weights(), &[0.0, 1.0, 0.5]);
        let patterns = generator.generate(500);
        assert!(patterns.iter().all(|p| !p.bit(0)));
        assert!(patterns.iter().all(|p| p.bit(1)));
        let middle_ones = patterns.iter().filter(|p| p.bit(2)).count();
        assert!(middle_ones > 150 && middle_ones < 350);
    }

    #[test]
    fn out_of_range_weights_are_clamped() {
        let generator = WeightedPatternGenerator::with_weights(vec![-0.5, 1.5], 1);
        assert_eq!(generator.weights(), &[0.0, 1.0]);
    }

    #[test]
    fn generation_is_deterministic() {
        let circuit = library::c17();
        let a = WeightedPatternGenerator::uniform_weight(&circuit, 0.3, 11).generate(30);
        let b = WeightedPatternGenerator::uniform_weight(&circuit, 0.3, 11).generate(30);
        assert_eq!(a, b);
    }
}
