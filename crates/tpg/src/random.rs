//! Uniform random pattern generation.

use lsiq_netlist::circuit::Circuit;
use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, Xoshiro256StarStar};

/// A seeded uniform random pattern generator for a specific circuit.
#[derive(Debug, Clone)]
pub struct RandomPatternGenerator {
    width: usize,
    rng: Xoshiro256StarStar,
}

impl RandomPatternGenerator {
    /// Creates a generator producing patterns as wide as the circuit's
    /// primary-input count.
    pub fn new(circuit: &Circuit, seed: u64) -> Self {
        RandomPatternGenerator {
            width: circuit.primary_inputs().len(),
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Creates a generator of explicit width (for tests and tools that do not
    /// have the circuit at hand).
    pub fn with_width(width: usize, seed: u64) -> Self {
        RandomPatternGenerator {
            width,
            rng: Xoshiro256StarStar::seed_from_u64(seed),
        }
    }

    /// Pattern width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Generates the next pattern.
    pub fn next_pattern(&mut self) -> Pattern {
        let width = self.width;
        Pattern::from_bits((0..width).map(|_| self.rng.next_bool(0.5)))
    }

    /// Generates an ordered set of `count` patterns.
    pub fn generate(mut self, count: usize) -> PatternSet {
        (0..count).map(|_| self.next_pattern()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    #[test]
    fn width_matches_circuit() {
        let circuit = library::c17();
        let generator = RandomPatternGenerator::new(&circuit, 1);
        assert_eq!(generator.width(), 5);
        let patterns = generator.generate(10);
        assert_eq!(patterns.len(), 10);
        assert!(patterns.iter().all(|p| p.width() == 5));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = RandomPatternGenerator::with_width(8, 7).generate(20);
        let b = RandomPatternGenerator::with_width(8, 7).generate(20);
        let c = RandomPatternGenerator::with_width(8, 8).generate(20);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let patterns = RandomPatternGenerator::with_width(16, 3).generate(2_000);
        let ones: usize = patterns
            .iter()
            .map(|p| p.bits().iter().filter(|&&b| b).count())
            .sum();
        let total = 16 * 2_000;
        let fraction = ones as f64 / total as f64;
        assert!((fraction - 0.5).abs() < 0.02, "fraction {fraction}");
    }

    #[test]
    fn zero_width_patterns_are_legal() {
        let patterns = RandomPatternGenerator::with_width(0, 1).generate(3);
        assert_eq!(patterns.len(), 3);
        assert!(patterns.iter().all(|p| p.is_empty()));
    }
}
