//! End-to-end test-suite construction.
//!
//! Combines random pattern generation with PODEM top-up to produce the
//! ordered pattern set whose cumulative coverage curve drives the paper's
//! Section 5 procedure: patterns are "evaluated on a fault simulator in the
//! same order as they would be applied to the chip".

use crate::podem::{Podem, TestOutcome};
use crate::random::RandomPatternGenerator;
use lsiq_exec::{ExecutionContext, LaneWidth, RunConfig};
use lsiq_fault::collapse::collapse_equivalence;
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::list::FaultList;
use lsiq_fault::simulator::{BuildEngine, EngineKind, EngineOptions, FaultSimulator};
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_sim::cache::GoodMachineCache;
use lsiq_sim::pattern::PatternSet;

/// Configuration for building an ordered test suite: random patterns up to
/// a target coverage, optionally topped up by PODEM for the faults the
/// random phase missed.
///
/// ```
/// use lsiq_fault::universe::FaultUniverse;
/// use lsiq_netlist::library;
/// use lsiq_tpg::suite::TestSuiteBuilder;
///
/// let circuit = library::c17();
/// let universe = FaultUniverse::full(&circuit);
/// let suite = TestSuiteBuilder {
///     seed: 7,
///     target_coverage: 0.9,
///     ..TestSuiteBuilder::default()
/// }
/// .build(&circuit, &universe);
/// assert!(suite.coverage() >= 0.9);
/// // The dictionary records every fault's first failing pattern — the raw
/// // material of the paper's Table 1.
/// assert_eq!(suite.dictionary.len(), universe.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestSuiteBuilder {
    /// Seed for the random phase.
    pub seed: u64,
    /// Number of random patterns generated per chunk before re-evaluating
    /// coverage.
    pub chunk: usize,
    /// Maximum number of random patterns.
    pub max_random_patterns: usize,
    /// Stop the random phase once this coverage is reached.
    pub target_coverage: f64,
    /// Whether to run PODEM for faults the random phase missed.
    pub podem_top_up: bool,
    /// Backtrack limit handed to PODEM.
    pub podem_backtracks: usize,
    /// Which fault-simulation engine evaluates the patterns (see
    /// [`EngineKind`] for guidance; the multi-threaded parallel engine is
    /// the default).
    pub engine: EngineKind,
    /// Apply structural equivalence collapsing before simulation (default
    /// `true`): when the supplied universe is the full universe of the
    /// circuit, only one representative per equivalence class is simulated
    /// and detections are expanded back to every member.  The reported
    /// suite — patterns, fault list, coverage curve, dictionary — is
    /// byte-identical either way (equivalent faults are detected by exactly
    /// the same patterns), but the hot simulation loop carries ~40–60
    /// percent fewer faults.  Ignored for non-full universes, whose indices
    /// the circuit-level collapsing pass cannot map.
    pub collapse: bool,
    /// Packed lane width for the chunked engines (see [`LaneWidth`]; the
    /// suite is byte-identical at every width, lanes only change
    /// throughput).  Ignored by the serial and deductive engines.
    pub lanes: LaneWidth,
}

impl Default for TestSuiteBuilder {
    fn default() -> Self {
        TestSuiteBuilder {
            seed: 1,
            chunk: 32,
            max_random_patterns: 512,
            target_coverage: 0.95,
            podem_top_up: true,
            podem_backtracks: 200,
            engine: EngineKind::Parallel,
            collapse: true,
            lanes: LaneWidth::Auto,
        }
    }
}

/// An ordered pattern set together with its fault-simulation results.
#[derive(Debug, Clone)]
pub struct TestSuite {
    /// The ordered patterns, exactly as they would be applied by the tester.
    pub patterns: PatternSet,
    /// Per-fault detection results of the final ordered set.
    pub fault_list: FaultList,
    /// Cumulative coverage after each pattern.
    pub coverage_curve: CoverageCurve,
    /// First-failing-pattern dictionary for the final ordered set.
    pub dictionary: FaultDictionary,
    /// Number of patterns contributed by the PODEM top-up phase.
    pub deterministic_patterns: usize,
}

impl TestSuite {
    /// Final fault coverage of the whole suite.
    pub fn coverage(&self) -> f64 {
        self.fault_list.coverage()
    }
}

impl TestSuiteBuilder {
    /// Applies the engine and lane-width choices of a typed [`RunConfig`].
    ///
    /// Only run-level knobs are taken: the suite `seed` is a property of the
    /// test *programme* (changing it changes which patterns are generated),
    /// not of the run, so it is deliberately left untouched — the same
    /// builder therefore produces byte-identical suites under every run
    /// configuration.
    pub fn with_run_config(mut self, config: &RunConfig) -> Self {
        self.engine = config.engine();
        self.lanes = config.lanes();
        self
    }

    /// Builds an ordered test suite for `circuit` against `universe`, fault
    /// simulating with the configured [`engine`](TestSuiteBuilder::engine).
    pub fn build(&self, circuit: &Circuit, universe: &FaultUniverse) -> TestSuite {
        self.build_cached(None, None, circuit, universe)
    }

    /// Builds the suite with the configured engine executing on `context`'s
    /// persistent worker pool (single-threaded engines simply run on the
    /// calling thread).  Results are byte-identical to [`build`](Self::build)
    /// at any worker count.
    pub fn build_in(
        &self,
        context: &ExecutionContext,
        circuit: &Circuit,
        universe: &FaultUniverse,
    ) -> TestSuite {
        self.build_cached(Some(context), None, circuit, universe)
    }

    /// Builds the suite with every run-level resource made explicit: an
    /// optional persistent worker pool and an optional shared
    /// [`GoodMachineCache`].  The suite build re-simulates a growing
    /// pattern set — each iteration re-evaluates every chunk it has already
    /// seen — so the chunked engines recover the fault-free simulation of
    /// all previous chunks from the cache.  Results are byte-identical with
    /// or without either resource.
    pub fn build_cached(
        &self,
        context: Option<&ExecutionContext>,
        cache: Option<&GoodMachineCache>,
        circuit: &Circuit,
        universe: &FaultUniverse,
    ) -> TestSuite {
        let options = EngineOptions {
            context,
            lanes: self.lanes,
            cache,
            ..EngineOptions::default()
        };
        self.build_with(
            self.engine.build_configured(circuit, &options).as_ref(),
            circuit,
            universe,
        )
    }

    /// Builds an ordered test suite using a caller-supplied fault-simulation
    /// engine (any [`FaultSimulator`]).
    pub fn build_with(
        &self,
        simulator: &dyn FaultSimulator,
        circuit: &Circuit,
        universe: &FaultUniverse,
    ) -> TestSuite {
        let mut generator = RandomPatternGenerator::new(circuit, self.seed);
        let mut patterns = PatternSet::new();

        // Structural collapsing on the hot path: simulate one representative
        // per equivalence class and expand detections afterwards.  Exact by
        // construction, so every reported number is unchanged (pinned by
        // `tests/suite_collapse.rs`); only applicable when the universe is
        // the circuit's full universe, which the collapsing pass indexes.
        let collapse = if self.collapse && *universe == FaultUniverse::full(circuit) {
            Some(collapse_equivalence(circuit))
        } else {
            None
        };
        let simulate = |patterns: &PatternSet| -> FaultList {
            match &collapse {
                Some(result) => {
                    result.expand_fault_list(&simulator.run(&result.collapsed, patterns), universe)
                }
                None => simulator.run(universe, patterns),
            }
        };

        // Random phase: add chunks until the target coverage or the pattern
        // budget is reached.  The fault list of the final iteration is kept
        // so the later phases never re-simulate an unchanged pattern set.
        let mut list = simulate(&patterns);
        while list.coverage() < self.target_coverage && patterns.len() < self.max_random_patterns {
            for _ in 0..self.chunk.max(1) {
                patterns.push(generator.next_pattern());
            }
            list = simulate(&patterns);
        }

        // Deterministic phase: target whatever the random phase missed.
        let mut deterministic_patterns = 0usize;
        if self.podem_top_up {
            let podem = Podem::new(circuit).with_max_backtracks(self.podem_backtracks);
            for fault_index in list.undetected_indices() {
                let fault = list.fault(fault_index);
                if let TestOutcome::Test(pattern) = podem.generate_test(fault) {
                    patterns.push(pattern);
                    deterministic_patterns += 1;
                }
            }
        }

        let fault_list = if deterministic_patterns > 0 {
            simulate(&patterns)
        } else {
            list
        };
        let coverage_curve = CoverageCurve::from_fault_list(&fault_list, patterns.len());
        let dictionary = FaultDictionary::from_fault_list(&fault_list);
        TestSuite {
            patterns,
            fault_list,
            coverage_curve,
            dictionary,
            deterministic_patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    #[test]
    fn suite_reaches_high_coverage_on_c17() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let suite = TestSuiteBuilder::default().build(&circuit, &universe);
        assert!(suite.coverage() >= 0.95, "coverage {}", suite.coverage());
        assert_eq!(suite.coverage_curve.pattern_count(), suite.patterns.len());
        assert_eq!(suite.dictionary.len(), universe.len());
    }

    #[test]
    fn podem_top_up_raises_coverage_over_random_alone() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let few_random = TestSuiteBuilder {
            max_random_patterns: 16,
            target_coverage: 1.0,
            podem_top_up: false,
            ..TestSuiteBuilder::default()
        };
        let with_top_up = TestSuiteBuilder {
            max_random_patterns: 16,
            target_coverage: 1.0,
            podem_top_up: true,
            ..TestSuiteBuilder::default()
        };
        let random_only = few_random.build(&circuit, &universe);
        let topped_up = with_top_up.build(&circuit, &universe);
        assert!(topped_up.coverage() > random_only.coverage());
        assert!(topped_up.deterministic_patterns > 0);
        assert_eq!(random_only.deterministic_patterns, 0);
    }

    #[test]
    fn every_engine_builds_the_same_suite() {
        // The engine knob must not change the produced suite in any way:
        // identical patterns, identical detection results.
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let reference = TestSuiteBuilder::default().build(&circuit, &universe);
        for engine in EngineKind::ALL {
            let suite = TestSuiteBuilder {
                engine,
                ..TestSuiteBuilder::default()
            }
            .build(&circuit, &universe);
            assert_eq!(
                suite.patterns.as_slice(),
                reference.patterns.as_slice(),
                "{engine}"
            );
            assert_eq!(suite.fault_list, reference.fault_list, "{engine}");
            assert_eq!(suite.coverage_curve, reference.coverage_curve, "{engine}");
        }
    }

    #[test]
    fn run_config_sets_the_engine_and_build_in_matches_build() {
        let circuit = library::c17();
        let universe = FaultUniverse::full(&circuit);
        let config = RunConfig::default()
            .with_engine(EngineKind::Deductive)
            .with_lanes(LaneWidth::X8)
            .with_base_seed(999); // must NOT leak into the suite seed
        let builder = TestSuiteBuilder::default().with_run_config(&config);
        assert_eq!(builder.engine, EngineKind::Deductive);
        assert_eq!(builder.lanes, LaneWidth::X8);
        assert_eq!(builder.seed, TestSuiteBuilder::default().seed);

        let reference = TestSuiteBuilder::default().build(&circuit, &universe);
        for workers in [1, 3] {
            let context = ExecutionContext::new(workers);
            let suite = TestSuiteBuilder::default().build_in(&context, &circuit, &universe);
            assert_eq!(suite.patterns.as_slice(), reference.patterns.as_slice());
            assert_eq!(
                suite.fault_list, reference.fault_list,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn collapsing_is_invisible_in_the_built_suite() {
        // The default-on collapse path must not change a single reported
        // number, on the full universe (where it applies) and on the
        // checkpoint universe (where it must disable itself).
        let circuit = library::alu4();
        for universe in [
            FaultUniverse::full(&circuit),
            FaultUniverse::checkpoint(&circuit),
        ] {
            let collapsed = TestSuiteBuilder::default().build(&circuit, &universe);
            let raw = TestSuiteBuilder {
                collapse: false,
                ..TestSuiteBuilder::default()
            }
            .build(&circuit, &universe);
            assert_eq!(collapsed.patterns.as_slice(), raw.patterns.as_slice());
            assert_eq!(collapsed.fault_list, raw.fault_list);
            assert_eq!(collapsed.coverage_curve, raw.coverage_curve);
            assert_eq!(collapsed.dictionary, raw.dictionary);
            assert_eq!(collapsed.deterministic_patterns, raw.deterministic_patterns);
        }

        // The PODEM top-up phase reads the expanded list's undetected
        // indices; starve the random phase so the deterministic phase
        // actually runs under collapsing.
        let universe = FaultUniverse::full(&circuit);
        let starved = TestSuiteBuilder {
            max_random_patterns: 16,
            target_coverage: 1.0,
            ..TestSuiteBuilder::default()
        };
        let collapsed = starved.build(&circuit, &universe);
        let raw = TestSuiteBuilder {
            collapse: false,
            ..starved
        }
        .build(&circuit, &universe);
        assert!(collapsed.deterministic_patterns > 0);
        assert_eq!(collapsed.patterns.as_slice(), raw.patterns.as_slice());
        assert_eq!(collapsed.fault_list, raw.fault_list);
        assert_eq!(collapsed.deterministic_patterns, raw.deterministic_patterns);
    }

    #[test]
    fn lane_widths_and_the_shared_cache_build_the_same_suite() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let reference = TestSuiteBuilder::default().build(&circuit, &universe);
        for engine in [
            EngineKind::Ppsfp,
            EngineKind::Parallel,
            EngineKind::Incremental,
        ] {
            for lanes in LaneWidth::EXPLICIT {
                let suite = TestSuiteBuilder {
                    engine,
                    lanes,
                    ..TestSuiteBuilder::default()
                }
                .build(&circuit, &universe);
                assert_eq!(
                    suite.patterns.as_slice(),
                    reference.patterns.as_slice(),
                    "{engine}/{lanes}"
                );
                assert_eq!(suite.fault_list, reference.fault_list, "{engine}/{lanes}");
            }
        }

        // The growing random phase re-simulates earlier chunks each
        // iteration; with a shared cache the replays of completed chunks
        // hit.  Force enough iterations past a full chunk (redundant faults
        // keep the coverage below 1.0 until the pattern budget runs out).
        let growing = TestSuiteBuilder {
            chunk: 24,
            max_random_patterns: 128,
            target_coverage: 1.0,
            podem_top_up: false,
            lanes: LaneWidth::X1,
            ..TestSuiteBuilder::default()
        };
        let plain = growing.build(&circuit, &universe);
        let cache = GoodMachineCache::new();
        let cached = growing.build_cached(None, Some(&cache), &circuit, &universe);
        assert_eq!(cached.patterns.as_slice(), plain.patterns.as_slice());
        assert_eq!(cached.fault_list, plain.fault_list);
        assert_eq!(cached.coverage_curve, plain.coverage_curve);
        assert!(cache.misses() > 0);
        assert!(cache.hits() > 0, "replayed chunks should hit the cache");
    }

    #[test]
    fn coverage_curve_is_monotone() {
        let circuit = library::full_adder();
        let universe = FaultUniverse::full(&circuit);
        let suite = TestSuiteBuilder::default().build(&circuit, &universe);
        let mut previous = 0.0;
        for (_, coverage) in suite.coverage_curve.points() {
            assert!(coverage + 1e-15 >= previous);
            previous = coverage;
        }
    }

    #[test]
    fn random_phase_respects_pattern_budget() {
        let circuit = library::alu4();
        let universe = FaultUniverse::full(&circuit);
        let builder = TestSuiteBuilder {
            max_random_patterns: 8,
            chunk: 8,
            target_coverage: 1.0,
            podem_top_up: false,
            ..TestSuiteBuilder::default()
        };
        let suite = builder.build(&circuit, &universe);
        assert!(suite.patterns.len() <= 8);
    }
}
