//! The shifted-Poisson fault-number distribution (eq. 1–2).
//!
//! The paper assumes that the number of faults `n` on a *defective* chip has
//! a Poisson density shifted right by one unit:
//!
//! ```text
//! p(n) = (1 − y) · (n0 − 1)^(n−1) / (n − 1)! · e^(−(n0 − 1)),   n ≥ 1
//! p(0) = y
//! ```
//!
//! so that a defective chip carries at least one fault and the average number
//! of faults on a defective chip is `n0`.

use crate::params::ModelParams;
use lsiq_stats::dist::{Poisson, Sample};
use lsiq_stats::rng::Rng;
use lsiq_stats::special::ln_factorial;

/// The distribution of the number of faults on a manufactured chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCountDistribution {
    params: ModelParams,
}

impl FaultCountDistribution {
    /// Creates the distribution for a chip with the given model parameters.
    pub fn new(params: ModelParams) -> Self {
        FaultCountDistribution { params }
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Probability of exactly `n` faults on a chip (eq. 1).
    pub fn pmf(&self, n: u64) -> f64 {
        let y = self.params.yield_fraction().value();
        if n == 0 {
            return y;
        }
        let shifted_mean = self.params.n0() - 1.0;
        let k = (n - 1) as f64;
        let ln_core = if shifted_mean == 0.0 {
            if n == 1 {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        } else {
            k * shifted_mean.ln() - shifted_mean - ln_factorial(n - 1)
        };
        (1.0 - y) * ln_core.exp()
    }

    /// Probability that the chip carries more than `n` faults.
    pub fn survival(&self, n: u64) -> f64 {
        1.0 - (0..=n).map(|k| self.pmf(k)).sum::<f64>()
    }

    /// Average number of faults on a chip, `n_av = (1 − y)·n0` (eq. 2).
    pub fn mean(&self) -> f64 {
        self.params.average_faults_per_chip()
    }

    /// Average number of faults restricted to defective chips (`n0`).
    pub fn mean_given_defective(&self) -> f64 {
        self.params.n0()
    }

    /// Draws the fault count of one chip.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if rng.next_bool(self.params.yield_fraction().value()) {
            return 0;
        }
        let shifted_mean = self.params.n0() - 1.0;
        if shifted_mean <= 0.0 {
            1
        } else {
            1 + Poisson::new(shifted_mean)
                .expect("shifted mean is positive")
                .sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Yield;
    use lsiq_stats::rng::Xoshiro256StarStar;

    fn dist(yield_fraction: f64, n0: f64) -> FaultCountDistribution {
        FaultCountDistribution::new(
            ModelParams::new(Yield::new(yield_fraction).expect("valid"), n0).expect("valid"),
        )
    }

    #[test]
    fn zero_class_equals_yield() {
        let d = dist(0.07, 8.0);
        assert!((d.pmf(0) - 0.07).abs() < 1e-12);
        assert_eq!(d.params().n0(), 8.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(y, n0) in &[(0.07, 8.0), (0.8, 2.0), (0.2, 10.0), (0.5, 1.0)] {
            let d = dist(y, n0);
            let total: f64 = (0..300).map(|n| d.pmf(n)).sum();
            assert!((total - 1.0).abs() < 1e-9, "y={y} n0={n0}: total {total}");
        }
    }

    #[test]
    fn mean_matches_equation_two() {
        let d = dist(0.2, 10.0);
        let numeric_mean: f64 = (0..400).map(|n| n as f64 * d.pmf(n)).sum();
        assert!((numeric_mean - 8.0).abs() < 1e-9);
        assert!((d.mean() - 8.0).abs() < 1e-12);
        assert_eq!(d.mean_given_defective(), 10.0);
    }

    #[test]
    fn conditional_mean_given_defective_is_n0() {
        let d = dist(0.3, 6.0);
        let defective_mass: f64 = (1..400).map(|n| d.pmf(n)).sum();
        let conditional_mean: f64 =
            (1..400).map(|n| n as f64 * d.pmf(n)).sum::<f64>() / defective_mass;
        assert!((conditional_mean - 6.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_n0_of_one_gives_single_fault_chips() {
        let d = dist(0.5, 1.0);
        assert!((d.pmf(1) - 0.5).abs() < 1e-12);
        assert!(d.pmf(2) < 1e-12);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for _ in 0..100 {
            assert!(d.sample(&mut rng) <= 1);
        }
    }

    #[test]
    fn survival_is_complement_of_cdf() {
        let d = dist(0.07, 8.0);
        let cdf_5: f64 = (0..=5).map(|n| d.pmf(n)).sum();
        assert!((d.survival(5) - (1.0 - cdf_5)).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_model_parameters() {
        let d = dist(0.07, 8.0);
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let draws: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let zero_fraction = draws.iter().filter(|&&n| n == 0).count() as f64 / draws.len() as f64;
        assert!(
            (zero_fraction - 0.07).abs() < 0.005,
            "yield {zero_fraction}"
        );
        let defective: Vec<u64> = draws.iter().copied().filter(|&n| n > 0).collect();
        let n0 = defective.iter().sum::<u64>() as f64 / defective.len() as f64;
        assert!((n0 - 8.0).abs() < 0.05, "n0 {n0}");
    }
}
