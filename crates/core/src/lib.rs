//! The Agrawal–Seth–Agrawal LSI product-quality model (DAC 1981).
//!
//! This crate implements every equation of *LSI Product Quality and Fault
//! Coverage* and the procedures built on them:
//!
//! * [`fault_distribution`] — the shifted-Poisson fault-number model
//!   (eq. 1–2),
//! * [`yield_model`] — chip-yield formulas, including the negative-binomial
//!   form of eq. 3 and the classical Poisson/Murphy/Seeds alternatives,
//! * [`escape`] — the hypergeometric escape probability `q0(n)` and the
//!   Appendix approximations A.1–A.3, plus the tested-good-but-bad yield
//!   `Y_bg(f)` (eq. 6–7),
//! * [`reject`] — the field reject rate `r(f)` (eq. 8) and its inverse
//!   (eq. 11),
//! * [`detection`] — the rejected-fraction curve `P(f)` and its slope
//!   (eq. 9–10),
//! * [`chip_test`] — chip-test tables (the paper's Table 1 is embedded),
//! * [`estimate`] — the two `n0`-estimation procedures of Section 5 (curve
//!   fit and origin slope),
//! * [`coverage_requirement`] — the required-coverage solver of Section 6,
//! * [`baseline`] — the Wadsack and Williams–Brown baseline models the paper
//!   compares against.
//!
//! # Quick example — the paper's Section 7 numbers
//!
//! ```
//! use lsiq_core::chip_test::ChipTestTable;
//! use lsiq_core::estimate::N0Estimator;
//! use lsiq_core::coverage_requirement::required_fault_coverage;
//! use lsiq_core::params::{ModelParams, RejectRate, Yield};
//!
//! # fn main() -> Result<(), lsiq_core::QualityError> {
//! let table = ChipTestTable::paper_table_1();
//! let estimate = N0Estimator::default().estimate(&table, Yield::new(0.07)?)?;
//! assert!((estimate.curve_fit_n0 - 8.0).abs() < 1.0);
//!
//! let params = ModelParams::new(Yield::new(0.07)?, 8.0)?;
//! let coverage = required_fault_coverage(&params, RejectRate::new(0.01)?)?;
//! assert!((coverage.value() - 0.80).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod chip_test;
pub mod coverage_requirement;
pub mod detection;
pub mod error;
pub mod escape;
pub mod estimate;
pub mod fault_distribution;
pub mod params;
pub mod reject;
pub mod yield_model;

pub use error::QualityError;
pub use params::{FaultCoverage, ModelParams, RejectRate, Yield};
