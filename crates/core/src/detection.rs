//! The rejected-fraction curve `P(f)` and its slope (eq. 9–10).
//!
//! `P(f)` is the fraction of manufactured chips rejected by tests whose
//! cumulative fault coverage has reached `f`:
//!
//! ```text
//! P(f) = (1 − y)[1 − (1 − f)e^(−(n0 − 1)f)]
//! ```
//!
//! Its slope at the origin, `P′(0) = (1 − y)·n0 = n_av`, is the basis of the
//! paper's quick estimation method for `n0`.

use crate::params::{FaultCoverage, ModelParams};

/// The fraction of chips rejected by tests with coverage `f` (eq. 9).
pub fn rejected_fraction(params: &ModelParams, coverage: FaultCoverage) -> f64 {
    let y = params.yield_fraction().value();
    let f = coverage.value();
    (1.0 - y) * (1.0 - (1.0 - f) * (-(params.n0() - 1.0) * f).exp())
}

/// The derivative `P′(f)` (used for slope analysis and curve fitting
/// diagnostics).
pub fn rejected_fraction_slope(params: &ModelParams, coverage: FaultCoverage) -> f64 {
    let y = params.yield_fraction().value();
    let f = coverage.value();
    let n0 = params.n0();
    (1.0 - y) * (1.0 + (1.0 - f) * (n0 - 1.0)) * (-(n0 - 1.0) * f).exp()
}

/// The slope at the origin, `P′(0) = (1 − y)·n0` (eq. 10).
pub fn origin_slope(params: &ModelParams) -> f64 {
    (1.0 - params.yield_fraction().value()) * params.n0()
}

/// Samples `P(f)` over a uniform grid of coverages, returning `(f, P)` pairs
/// — one curve of the family plotted in the paper's Fig. 5.
pub fn rejected_fraction_curve(params: &ModelParams, points: usize) -> Vec<(f64, f64)> {
    let steps = points.max(2) - 1;
    (0..=steps)
        .map(|i| {
            let f = i as f64 / steps as f64;
            let coverage = FaultCoverage::new(f).expect("grid point is in range");
            (f, rejected_fraction(params, coverage))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Yield;

    fn params(y: f64, n0: f64) -> ModelParams {
        ModelParams::new(Yield::new(y).expect("valid"), n0).expect("valid")
    }

    fn coverage(f: f64) -> FaultCoverage {
        FaultCoverage::new(f).expect("valid")
    }

    #[test]
    fn no_testing_rejects_nothing() {
        assert!(rejected_fraction(&params(0.07, 8.0), coverage(0.0)).abs() < 1e-12);
    }

    #[test]
    fn complete_testing_rejects_every_bad_chip() {
        let p = params(0.07, 8.0);
        assert!((rejected_fraction(&p, coverage(1.0)) - 0.93).abs() < 1e-12);
    }

    #[test]
    fn rejected_fraction_is_monotone_and_bounded() {
        let p = params(0.2, 10.0);
        let curve = rejected_fraction_curve(&p, 200);
        let mut previous = 0.0;
        for &(_, value) in &curve {
            assert!(value + 1e-12 >= previous);
            assert!(value <= 1.0 - 0.2 + 1e-12);
            previous = value;
        }
    }

    #[test]
    fn origin_slope_matches_equation_ten() {
        let p = params(0.07, 8.0);
        assert!((origin_slope(&p) - 0.93 * 8.0).abs() < 1e-12);
        // And it equals the average fault count of eq. 2.
        assert!((origin_slope(&p) - p.average_faults_per_chip()).abs() < 1e-12);
    }

    #[test]
    fn analytic_slope_matches_finite_differences() {
        let p = params(0.3, 6.0);
        for &f in &[0.0, 0.1, 0.4, 0.8] {
            let h = 1e-6;
            let numeric =
                (rejected_fraction(&p, coverage(f + h)) - rejected_fraction(&p, coverage(f))) / h;
            let analytic = rejected_fraction_slope(&p, coverage(f));
            assert!(
                (numeric - analytic).abs() < 1e-4,
                "f={f}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn higher_n0_rejects_chips_sooner() {
        // With more faults per bad chip, early patterns catch more chips.
        let f = coverage(0.1);
        let low = rejected_fraction(&params(0.07, 2.0), f);
        let high = rejected_fraction(&params(0.07, 8.0), f);
        assert!(high > low);
    }

    #[test]
    fn section_seven_first_checkpoint_matches_paper() {
        // Table 1 first row: at 5 percent coverage about 41 percent of the
        // 277 chips had already failed; with y = 0.07 and n0 = 8 the model
        // gives P(0.05) ≈ 0.36, the right ballpark for the fit of Fig. 5.
        let p = params(0.07, 8.0);
        let predicted = rejected_fraction(&p, coverage(0.05));
        assert!(
            (predicted - 0.41).abs() < 0.12,
            "P(0.05) = {predicted} is too far from the paper's 0.41"
        );
    }
}
