//! Escape probabilities (eq. 4–7 and Appendix A).
//!
//! `q0(n)` is the probability that a test with coverage `f = m/N` detects
//! none of the `n` faults actually present on a chip.  The paper derives it
//! from the hypergeometric urn model and gives three closed forms of
//! increasing simplicity (A.1 exact, A.2 exponential correction, A.3 the
//! `(1−f)^n` power used in the body of the paper).  Folding `q0(n)` over the
//! fault-number distribution gives the tested-good-but-bad yield `Y_bg(f)`
//! (eq. 6), for which eq. 7 is the closed-form approximation.

use crate::error::QualityError;
use crate::fault_distribution::FaultCountDistribution;
use crate::params::{FaultCoverage, ModelParams};
use lsiq_stats::dist::{DiscreteDistribution, Hypergeometric};

/// Which expression is used for the escape probability `q0(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EscapeApproximation {
    /// The exact hypergeometric product (Appendix eq. A.1).
    Exact,
    /// The exponential-corrected power (Appendix eq. A.2).
    Corrected,
    /// The simple power `(1 − f)^n` (Appendix eq. A.3, used in the body).
    SimplePower,
}

/// The escape probability `q0(n)` for a fault universe of `N` faults of which
/// `m = f·N` are covered by the tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscapeProbability {
    universe_size: u64,
    covered: u64,
}

impl EscapeProbability {
    /// Creates the escape-probability calculator for a universe of
    /// `universe_size` faults with `covered` of them detected by the tests.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidParameter`] if `covered` exceeds
    /// `universe_size` or the universe is empty.
    pub fn new(universe_size: u64, covered: u64) -> Result<Self, QualityError> {
        if universe_size == 0 {
            return Err(QualityError::InvalidParameter {
                name: "universe_size",
                value: 0.0,
                expected: "a non-empty fault universe",
            });
        }
        if covered > universe_size {
            return Err(QualityError::InvalidParameter {
                name: "covered",
                value: covered as f64,
                expected: "at most the universe size",
            });
        }
        Ok(EscapeProbability {
            universe_size,
            covered,
        })
    }

    /// Creates the calculator from a coverage fraction, rounding the covered
    /// count to the nearest fault.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidParameter`] if the universe is empty.
    pub fn from_coverage(
        universe_size: u64,
        coverage: FaultCoverage,
    ) -> Result<Self, QualityError> {
        let covered = (coverage.value() * universe_size as f64).round() as u64;
        EscapeProbability::new(universe_size, covered.min(universe_size))
    }

    /// The fault coverage `f = m / N`.
    pub fn coverage(&self) -> f64 {
        self.covered as f64 / self.universe_size as f64
    }

    /// Probability of detecting exactly `k` of `n` present faults (eq. 4).
    pub fn detect_exactly(&self, k: u64, n: u64) -> Result<f64, QualityError> {
        let hypergeometric =
            Hypergeometric::new(self.universe_size, n, self.covered).map_err(QualityError::from)?;
        Ok(hypergeometric.pmf(k))
    }

    /// The escape probability `q0(n)` under the chosen approximation.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` exceeds the universe size (for the exact
    /// form).
    pub fn escape(&self, n: u64, approximation: EscapeApproximation) -> Result<f64, QualityError> {
        let f = self.coverage();
        let big_n = self.universe_size as f64;
        match approximation {
            EscapeApproximation::Exact => self.detect_exactly(0, n),
            EscapeApproximation::Corrected => {
                // A.2: (1-f)^n * exp(-f n (n-1) / (2 N (1-f))).
                if f >= 1.0 {
                    return Ok(if n == 0 { 1.0 } else { 0.0 });
                }
                let n_f = n as f64;
                let correction = (-f * n_f * (n_f - 1.0) / (2.0 * big_n * (1.0 - f))).exp();
                Ok((1.0 - f).powf(n_f) * correction)
            }
            EscapeApproximation::SimplePower => Ok((1.0 - f).powf(n as f64)),
        }
    }
}

/// The tested-good-but-bad yield `Y_bg(f)`.
///
/// Two evaluations are offered: the exact sum of eq. 6 (fold `q0(n)` over the
/// fault-number distribution) and the closed form of eq. 7,
/// `(1 − f)(1 − y)e^(−(n0 − 1)f)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BadChipYield {
    params: ModelParams,
}

impl BadChipYield {
    /// Creates the calculator for the given model parameters.
    pub fn new(params: ModelParams) -> Self {
        BadChipYield { params }
    }

    /// The closed-form approximation of eq. 7.
    pub fn closed_form(&self, coverage: FaultCoverage) -> f64 {
        let f = coverage.value();
        let y = self.params.yield_fraction().value();
        (1.0 - f) * (1.0 - y) * (-(self.params.n0() - 1.0) * f).exp()
    }

    /// The exact sum of eq. 6, truncated where the fault-number distribution
    /// has negligible mass, using the simple-power escape probability.
    pub fn exact_sum(&self, coverage: FaultCoverage) -> f64 {
        let distribution = FaultCountDistribution::new(self.params);
        let f = coverage.value();
        let mut total = 0.0;
        // The shifted Poisson has essentially no mass beyond
        // n0 + 12 sqrt(n0) + 30.
        let n0 = self.params.n0();
        let cutoff = (n0 + 12.0 * n0.sqrt() + 30.0).ceil() as u64;
        for n in 1..=cutoff {
            total += (1.0 - f).powf(n as f64) * distribution.pmf(n);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Yield;

    fn coverage(f: f64) -> FaultCoverage {
        FaultCoverage::new(f).expect("valid coverage")
    }

    fn params(y: f64, n0: f64) -> ModelParams {
        ModelParams::new(Yield::new(y).expect("valid"), n0).expect("valid")
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(EscapeProbability::new(0, 0).is_err());
        assert!(EscapeProbability::new(10, 11).is_err());
        assert!(EscapeProbability::new(10, 10).is_ok());
        let from_coverage = EscapeProbability::from_coverage(1000, coverage(0.6)).expect("valid");
        assert!((from_coverage.coverage() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn zero_faults_never_escape_detection_question() {
        // A chip with zero faults "escapes" with probability 1 by definition.
        let escape = EscapeProbability::new(1000, 700).expect("valid");
        for approximation in [
            EscapeApproximation::Exact,
            EscapeApproximation::Corrected,
            EscapeApproximation::SimplePower,
        ] {
            assert!((escape.escape(0, approximation).expect("valid") - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn full_coverage_catches_every_fault() {
        let escape = EscapeProbability::new(500, 500).expect("valid");
        for approximation in [
            EscapeApproximation::Exact,
            EscapeApproximation::Corrected,
            EscapeApproximation::SimplePower,
        ] {
            assert!(escape.escape(3, approximation).expect("valid") < 1e-12);
        }
    }

    #[test]
    fn approximations_agree_in_their_validity_region() {
        // Fig. 6 of the paper: for N = 1000 and small n all three forms
        // coincide; A.2 tracks the exact value even for larger n.
        let escape = EscapeProbability::new(1000, 500).expect("valid");
        for n in 1..=4 {
            let exact = escape.escape(n, EscapeApproximation::Exact).expect("valid");
            let corrected = escape
                .escape(n, EscapeApproximation::Corrected)
                .expect("valid");
            let simple = escape
                .escape(n, EscapeApproximation::SimplePower)
                .expect("valid");
            assert!((exact - corrected).abs() / exact < 5e-3, "n={n}");
            assert!((exact - simple).abs() / exact < 2e-2, "n={n}");
        }
        for n in [10u64, 20, 30] {
            let exact = escape.escape(n, EscapeApproximation::Exact).expect("valid");
            let corrected = escape
                .escape(n, EscapeApproximation::Corrected)
                .expect("valid");
            assert!(
                (exact - corrected).abs() / exact < 5e-2,
                "n={n}: exact {exact} corrected {corrected}"
            );
        }
    }

    #[test]
    fn simple_power_overestimates_escape_for_large_n() {
        // Drawing without replacement makes escapes less likely than the
        // independent approximation, so A.3 is an upper bound.
        let escape = EscapeProbability::new(1000, 700).expect("valid");
        for n in [5u64, 15, 40] {
            let exact = escape.escape(n, EscapeApproximation::Exact).expect("valid");
            let simple = escape
                .escape(n, EscapeApproximation::SimplePower)
                .expect("valid");
            assert!(simple >= exact, "n={n}");
        }
    }

    #[test]
    fn detect_exactly_sums_to_one_over_k() {
        let escape = EscapeProbability::new(200, 80).expect("valid");
        let n = 6;
        let total: f64 = (0..=n)
            .map(|k| escape.detect_exactly(k, n).expect("valid"))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_exact_sum() {
        // eq. 7 versus eq. 6 with the simple-power escape model.
        for &(y, n0) in &[(0.07, 8.0), (0.8, 2.0), (0.2, 10.0)] {
            let bad = BadChipYield::new(params(y, n0));
            for &f in &[0.0, 0.2, 0.5, 0.8, 0.95] {
                let closed = bad.closed_form(coverage(f));
                let exact = bad.exact_sum(coverage(f));
                assert!(
                    (closed - exact).abs() < 2e-3,
                    "y={y} n0={n0} f={f}: closed {closed} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn zero_coverage_ships_every_bad_chip() {
        let bad = BadChipYield::new(params(0.3, 5.0));
        assert!((bad.closed_form(coverage(0.0)) - 0.7).abs() < 1e-12);
        assert!((bad.exact_sum(coverage(0.0)) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn full_coverage_ships_no_bad_chips() {
        let bad = BadChipYield::new(params(0.3, 5.0));
        assert!(bad.closed_form(coverage(1.0)) < 1e-12);
        assert!(bad.exact_sum(coverage(1.0)) < 1e-12);
    }

    #[test]
    fn bad_chip_yield_decreases_with_coverage() {
        let bad = BadChipYield::new(params(0.07, 8.0));
        let mut previous = 1.0;
        for step in 0..=20 {
            let f = step as f64 / 20.0;
            let value = bad.closed_form(coverage(f));
            assert!(value <= previous + 1e-12);
            previous = value;
        }
    }
}
