//! Validated model parameters.
//!
//! The model manipulates several quantities that are all "just numbers
//! between 0 and 1" — fault coverage `f`, yield `y`, field reject rate `r`.
//! Newtypes keep them from being interchanged by accident.

use crate::error::QualityError;
use std::fmt;

macro_rules! probability_newtype {
    ($(#[$doc:meta])* $name:ident, $param:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Creates the value, validating that it lies in `[0, 1]`.
            ///
            /// # Errors
            ///
            /// Returns [`QualityError::InvalidParameter`] if the value is not
            /// a finite number in `[0, 1]`.
            pub fn new(value: f64) -> Result<Self, QualityError> {
                if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                    return Err(QualityError::InvalidParameter {
                        name: $param,
                        value,
                        expected: "a finite value in [0, 1]",
                    });
                }
                Ok(Self(value))
            }

            /// The underlying fraction.
            pub fn value(self) -> f64 {
                self.0
            }

            /// The value expressed in percent.
            pub fn percent(self) -> f64 {
                self.0 * 100.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4}", self.0)
            }
        }

        impl TryFrom<f64> for $name {
            type Error = QualityError;

            fn try_from(value: f64) -> Result<Self, Self::Error> {
                Self::new(value)
            }
        }
    };
}

probability_newtype!(
    /// Single stuck-at fault coverage `f = m / N`.
    FaultCoverage,
    "fault_coverage"
);

probability_newtype!(
    /// Chip yield `y`: the probability that a manufactured chip is good.
    Yield,
    "yield"
);

probability_newtype!(
    /// Field reject rate `r`: bad chips among the chips that tested good.
    RejectRate,
    "reject_rate"
);

/// The two parameters that characterise the paper's model for one chip: its
/// yield `y` and the average number of faults on a defective chip `n0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    yield_fraction: Yield,
    n0: f64,
}

impl ModelParams {
    /// Creates a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidParameter`] if `n0 < 1` (a defective
    /// chip carries at least one fault) or is not finite.
    pub fn new(yield_fraction: Yield, n0: f64) -> Result<Self, QualityError> {
        if !n0.is_finite() || n0 < 1.0 {
            return Err(QualityError::InvalidParameter {
                name: "n0",
                value: n0,
                expected: "a finite value >= 1",
            });
        }
        Ok(ModelParams { yield_fraction, n0 })
    }

    /// The chip yield `y`.
    pub fn yield_fraction(&self) -> Yield {
        self.yield_fraction
    }

    /// The average number of faults on a defective chip, `n0`.
    pub fn n0(&self) -> f64 {
        self.n0
    }

    /// The average number of faults per manufactured chip, `n_av = (1−y)·n0`
    /// (eq. 2).
    pub fn average_faults_per_chip(&self) -> f64 {
        (1.0 - self.yield_fraction.value()) * self.n0
    }
}

impl fmt::Display for ModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.3}, n0 = {:.2}",
            self.yield_fraction.value(),
            self.n0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_newtypes_validate_range() {
        assert!(FaultCoverage::new(0.0).is_ok());
        assert!(FaultCoverage::new(1.0).is_ok());
        assert!(FaultCoverage::new(-0.01).is_err());
        assert!(Yield::new(1.01).is_err());
        assert!(RejectRate::new(f64::NAN).is_err());
        assert!(RejectRate::new(f64::INFINITY).is_err());
    }

    #[test]
    fn accessors_and_percent() {
        let coverage = FaultCoverage::new(0.85).expect("valid");
        assert_eq!(coverage.value(), 0.85);
        assert!((coverage.percent() - 85.0).abs() < 1e-12);
        assert_eq!(coverage.to_string(), "0.8500");
        let converted: Yield = 0.2f64.try_into().expect("valid");
        assert_eq!(converted.value(), 0.2);
    }

    #[test]
    fn model_params_validate_n0() {
        let y = Yield::new(0.07).expect("valid");
        assert!(ModelParams::new(y, 0.5).is_err());
        assert!(ModelParams::new(y, f64::NAN).is_err());
        let params = ModelParams::new(y, 8.0).expect("valid");
        assert_eq!(params.n0(), 8.0);
        assert_eq!(params.yield_fraction().value(), 0.07);
    }

    #[test]
    fn average_faults_matches_equation_two() {
        let params = ModelParams::new(Yield::new(0.2).expect("valid"), 10.0).expect("valid");
        assert!((params.average_faults_per_chip() - 8.0).abs() < 1e-12);
        assert!(params.to_string().contains("n0 = 10.00"));
    }
}
