//! Error type for the quality model.

use lsiq_stats::StatsError;
use std::fmt;

/// Error returned by the quality-model constructors and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum QualityError {
    /// A probability-like parameter was outside `[0, 1]` or otherwise out of
    /// domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
        /// Description of the valid domain.
        expected: &'static str,
    },
    /// Experimental data was empty or inconsistent.
    InvalidData {
        /// Description of the problem.
        message: String,
    },
    /// A numerical routine from `lsiq-stats` failed.
    Numerical(StatsError),
}

impl fmt::Display for QualityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "invalid parameter `{name}` = {value}; expected {expected}"
            ),
            QualityError::InvalidData { message } => write!(f, "invalid data: {message}"),
            QualityError::Numerical(inner) => write!(f, "numerical failure: {inner}"),
        }
    }
}

impl std::error::Error for QualityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QualityError::Numerical(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<StatsError> for QualityError {
    fn from(inner: StatsError) -> Self {
        QualityError::Numerical(inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let err = QualityError::InvalidParameter {
            name: "yield",
            value: 1.5,
            expected: "a probability",
        };
        assert!(err.to_string().contains("yield"));
        let err = QualityError::InvalidData {
            message: "empty table".to_string(),
        };
        assert!(err.to_string().contains("empty table"));
    }

    #[test]
    fn stats_errors_convert_and_chain() {
        use std::error::Error;
        let inner = StatsError::NoConvergence { iterations: 9 };
        let err: QualityError = inner.clone().into();
        assert!(err.to_string().contains("9"));
        assert!(err.source().is_some());
        assert_eq!(err, QualityError::Numerical(inner));
    }
}
