//! Chip-test tables (the experimental input of Section 5).
//!
//! A chip-test table records, for a sequence of cumulative-coverage
//! checkpoints, how many chips of a tested lot had failed by that point.  The
//! paper's Table 1 (277 chips, yield ≈ 7 %) is embedded as
//! [`ChipTestTable::paper_table_1`]; fresh tables can be produced from the
//! simulated production line in `lsiq-manufacturing`.

use crate::error::QualityError;

/// One row of a chip-test table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipTestRow {
    /// Cumulative fault coverage reached at this checkpoint (fraction).
    pub fault_coverage: f64,
    /// Cumulative number of chips that failed by this checkpoint.
    pub chips_failed: usize,
}

/// A cumulative chip-test table.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipTestTable {
    rows: Vec<ChipTestRow>,
    total_chips: usize,
}

impl ChipTestTable {
    /// Creates a table from rows and the total number of chips tested.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidData`] if the table is empty, a
    /// coverage value is outside `(0, 1]`, coverage or failure counts are not
    /// non-decreasing, or more chips failed than were tested.
    pub fn new(rows: Vec<ChipTestRow>, total_chips: usize) -> Result<Self, QualityError> {
        if rows.is_empty() || total_chips == 0 {
            return Err(QualityError::InvalidData {
                message: "a chip-test table needs at least one row and one chip".to_string(),
            });
        }
        let mut previous_coverage = 0.0;
        let mut previous_failed = 0usize;
        for row in &rows {
            if !(row.fault_coverage > 0.0 && row.fault_coverage <= 1.0) {
                return Err(QualityError::InvalidData {
                    message: format!("coverage {} outside (0, 1]", row.fault_coverage),
                });
            }
            if row.fault_coverage < previous_coverage {
                return Err(QualityError::InvalidData {
                    message: "coverage checkpoints must be non-decreasing".to_string(),
                });
            }
            if row.chips_failed < previous_failed {
                return Err(QualityError::InvalidData {
                    message: "cumulative failure counts must be non-decreasing".to_string(),
                });
            }
            if row.chips_failed > total_chips {
                return Err(QualityError::InvalidData {
                    message: format!(
                        "{} chips failed but only {total_chips} were tested",
                        row.chips_failed
                    ),
                });
            }
            previous_coverage = row.fault_coverage;
            previous_failed = row.chips_failed;
        }
        Ok(ChipTestTable { rows, total_chips })
    }

    /// Builds a table from `(coverage, cumulative fraction failed)` pairs,
    /// converting fractions to counts over `total_chips`.
    ///
    /// # Errors
    ///
    /// Same validation as [`ChipTestTable::new`].
    pub fn from_fractions(points: &[(f64, f64)], total_chips: usize) -> Result<Self, QualityError> {
        let rows = points
            .iter()
            .map(|&(coverage, fraction)| ChipTestRow {
                fault_coverage: coverage,
                chips_failed: (fraction * total_chips as f64).round() as usize,
            })
            .collect();
        ChipTestTable::new(rows, total_chips)
    }

    /// The paper's Table 1: 277 chips, yield estimated at about 7 percent.
    pub fn paper_table_1() -> ChipTestTable {
        const DATA: [(f64, usize); 10] = [
            (0.05, 113),
            (0.08, 134),
            (0.10, 144),
            (0.15, 186),
            (0.20, 209),
            (0.30, 226),
            (0.36, 242),
            (0.45, 251),
            (0.50, 256),
            (0.65, 257),
        ];
        let rows = DATA
            .iter()
            .map(|&(fault_coverage, chips_failed)| ChipTestRow {
                fault_coverage,
                chips_failed,
            })
            .collect();
        ChipTestTable::new(rows, 277).expect("the embedded paper table is valid")
    }

    /// The rows in checkpoint order.
    pub fn rows(&self) -> &[ChipTestRow] {
        &self.rows
    }

    /// Total number of chips tested.
    pub fn total_chips(&self) -> usize {
        self.total_chips
    }

    /// `(coverage, cumulative fraction failed)` pairs.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .map(|row| {
                (
                    row.fault_coverage,
                    row.chips_failed as f64 / self.total_chips as f64,
                )
            })
            .collect()
    }

    /// The final cumulative fraction of failed chips (a lower bound on the
    /// defective fraction `1 − y`).
    pub fn final_fraction_failed(&self) -> f64 {
        self.rows
            .last()
            .map(|row| row.chips_failed as f64 / self.total_chips as f64)
            .unwrap_or(0.0)
    }

    /// Renders the table in the layout of the paper's Table 1.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Total number of chips = {}\n", self.total_chips));
        out.push_str("Fault Coverage (percent) | Cumulative Chips Failed | Cumulative Fraction\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:>24.0} | {:>23} | {:>19.2}\n",
                row.fault_coverage * 100.0,
                row.chips_failed,
                row.chips_failed as f64 / self.total_chips as f64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_matches_published_values() {
        let table = ChipTestTable::paper_table_1();
        assert_eq!(table.total_chips(), 277);
        assert_eq!(table.rows().len(), 10);
        let fractions = table.fractions();
        // The paper lists 0.41 at 5 percent coverage and 0.93 at 65 percent.
        assert!((fractions[0].1 - 0.41).abs() < 0.005);
        assert!((fractions[9].1 - 0.93).abs() < 0.005);
        assert!((table.final_fraction_failed() - 0.93).abs() < 0.005);
    }

    #[test]
    fn validation_rejects_malformed_tables() {
        assert!(ChipTestTable::new(vec![], 100).is_err());
        assert!(ChipTestTable::new(
            vec![ChipTestRow {
                fault_coverage: 0.5,
                chips_failed: 10
            }],
            0
        )
        .is_err());
        assert!(ChipTestTable::new(
            vec![ChipTestRow {
                fault_coverage: 1.5,
                chips_failed: 10
            }],
            100
        )
        .is_err());
        // Decreasing coverage.
        assert!(ChipTestTable::new(
            vec![
                ChipTestRow {
                    fault_coverage: 0.5,
                    chips_failed: 10
                },
                ChipTestRow {
                    fault_coverage: 0.4,
                    chips_failed: 20
                },
            ],
            100
        )
        .is_err());
        // Decreasing failures.
        assert!(ChipTestTable::new(
            vec![
                ChipTestRow {
                    fault_coverage: 0.4,
                    chips_failed: 20
                },
                ChipTestRow {
                    fault_coverage: 0.5,
                    chips_failed: 10
                },
            ],
            100
        )
        .is_err());
        // More failures than chips.
        assert!(ChipTestTable::new(
            vec![ChipTestRow {
                fault_coverage: 0.4,
                chips_failed: 200
            }],
            100
        )
        .is_err());
    }

    #[test]
    fn from_fractions_round_trips() {
        let table = ChipTestTable::paper_table_1();
        let rebuilt =
            ChipTestTable::from_fractions(&table.fractions(), table.total_chips()).expect("valid");
        assert_eq!(rebuilt, table);
    }

    #[test]
    fn rendering_contains_the_published_rows() {
        let text = ChipTestTable::paper_table_1().to_table();
        assert!(text.contains("Total number of chips = 277"));
        assert!(text.contains("113"));
        assert!(text.contains("257"));
        assert_eq!(text.lines().count(), 12);
    }
}
