//! Estimation of the model parameter `n0` (Section 5).
//!
//! Two procedures are implemented, exactly as the paper describes them:
//!
//! * **curve fit** — overlay the `P(f)` family (one curve per candidate `n0`)
//!   on the experimental cumulative-reject points and pick the closest curve
//!   (implemented as a least-squares scan with golden-section refinement),
//! * **origin slope** — measure the slope of the experimental curve near the
//!   origin; by eq. 10 the slope is `(1 − y)·n0`, so `n0 = P′(0)/(1 − y)`,
//!   and `P′(0)` alone is a safe (pessimistic) stand-in for `n0` when the
//!   yield is unknown.

use crate::chip_test::ChipTestTable;
use crate::detection::rejected_fraction;
use crate::error::QualityError;
use crate::params::{FaultCoverage, ModelParams, Yield};
use lsiq_stats::fit::{linear_fit_through_origin, scan_minimize, sum_squared_residuals};

/// The result of estimating `n0` from a chip-test table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct N0Estimate {
    /// Best-fitting `n0` from the curve-fit procedure.
    pub curve_fit_n0: f64,
    /// Root-mean-square residual of the best fit (fraction of chips).
    pub curve_fit_rmse: f64,
    /// The measured origin slope `P′(0)`.
    pub origin_slope: f64,
    /// `n0` derived from the origin slope and the supplied yield
    /// (`P′(0)/(1 − y)`).
    pub slope_n0: f64,
    /// The yield used for both estimates.
    pub yield_fraction: Yield,
}

impl N0Estimate {
    /// Model parameters built from the curve-fit estimate.
    pub fn params(&self) -> Result<ModelParams, QualityError> {
        ModelParams::new(self.yield_fraction, self.curve_fit_n0)
    }
}

/// Configuration of the `n0` estimation procedures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct N0Estimator {
    /// Smallest candidate `n0` for the curve-fit scan.
    pub min_n0: f64,
    /// Largest candidate `n0` for the curve-fit scan.
    pub max_n0: f64,
    /// Number of scan steps across the candidate range.
    pub scan_steps: usize,
    /// Rows with coverage at or below this value are used for the origin
    /// slope (the paper uses the first line of its table).
    pub slope_window: f64,
}

impl Default for N0Estimator {
    fn default() -> Self {
        N0Estimator {
            min_n0: 1.0,
            max_n0: 30.0,
            scan_steps: 290,
            // The paper takes the slope from the first line of its table
            // (5 percent coverage); a tight window keeps the estimate close
            // to the true origin slope before the curve bends over.
            slope_window: 0.06,
        }
    }
}

impl N0Estimator {
    /// Runs both estimation procedures on a chip-test table.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidData`] if the table has no rows inside
    /// the slope window, or a numerical error if the scan range is invalid.
    pub fn estimate(
        &self,
        table: &ChipTestTable,
        yield_fraction: Yield,
    ) -> Result<N0Estimate, QualityError> {
        let points = table.fractions();
        let coverages: Vec<f64> = points.iter().map(|&(f, _)| f).collect();
        let fractions: Vec<f64> = points.iter().map(|&(_, p)| p).collect();

        // Curve fit: scan candidate n0 values, measuring the sum of squared
        // residuals of P(f; y, n0) against the experimental points.
        let objective = |n0: f64| {
            let candidate = match ModelParams::new(yield_fraction, n0.max(1.0)) {
                Ok(params) => params,
                Err(_) => return f64::INFINITY,
            };
            sum_squared_residuals(&coverages, &fractions, |f| {
                rejected_fraction(
                    &candidate,
                    FaultCoverage::new(f.clamp(0.0, 1.0)).expect("clamped"),
                )
            })
        };
        let scan = scan_minimize(objective, self.min_n0, self.max_n0, self.scan_steps.max(1))?;
        let curve_fit_n0 = scan.best_parameter;
        let curve_fit_rmse = (scan.best_objective / points.len() as f64).sqrt();

        // Origin slope: least-squares line through the origin over the
        // low-coverage rows.  When the first checkpoint already exceeds the
        // window (a strong pattern set covers a lot with its first vector),
        // fall back to the paper's own recipe of using just the first line of
        // the table.
        let mut low: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|&(f, _)| f <= self.slope_window)
            .collect();
        if low.is_empty() {
            low.push(*points.first().ok_or_else(|| QualityError::InvalidData {
                message: "chip-test table has no rows".to_string(),
            })?);
        }
        let low_coverage: Vec<f64> = low.iter().map(|&(f, _)| f).collect();
        let low_fraction: Vec<f64> = low.iter().map(|&(_, p)| p).collect();
        let origin_slope = linear_fit_through_origin(&low_coverage, &low_fraction)?;
        let denominator = (1.0 - yield_fraction.value()).max(f64::MIN_POSITIVE);
        let slope_n0 = origin_slope / denominator;

        Ok(N0Estimate {
            curve_fit_n0,
            curve_fit_rmse,
            origin_slope,
            slope_n0,
            yield_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip_test::ChipTestRow;

    #[test]
    fn paper_table_yields_n0_close_to_eight() {
        // Section 7: the experimental points closely match the n0 = 8 curve,
        // the first-row slope gives 8.2 and the corrected estimate 8.8.
        let table = ChipTestTable::paper_table_1();
        let estimate = N0Estimator::default()
            .estimate(&table, Yield::new(0.07).expect("valid"))
            .expect("estimates");
        assert!(
            (estimate.curve_fit_n0 - 8.0).abs() < 1.0,
            "curve fit n0 = {}",
            estimate.curve_fit_n0
        );
        assert!(
            (estimate.origin_slope - 8.2).abs() < 1.2,
            "origin slope = {}",
            estimate.origin_slope
        );
        assert!(
            (estimate.slope_n0 - 8.8).abs() < 1.3,
            "slope n0 = {}",
            estimate.slope_n0
        );
        assert!(estimate.curve_fit_rmse < 0.05);
        let params = estimate.params().expect("valid");
        assert!((params.n0() - estimate.curve_fit_n0).abs() < 1e-12);
    }

    #[test]
    fn low_n0_curves_disagree_with_the_paper_data() {
        // Section 7 argues n0 = 3 or 4 "disagrees significantly" with the
        // experimental curve: their residual must be clearly worse than the
        // best fit's.
        let table = ChipTestTable::paper_table_1();
        let yield_fraction = Yield::new(0.07).expect("valid");
        let estimate = N0Estimator::default()
            .estimate(&table, yield_fraction)
            .expect("estimates");
        let points = table.fractions();
        let coverages: Vec<f64> = points.iter().map(|&(f, _)| f).collect();
        let fractions: Vec<f64> = points.iter().map(|&(_, p)| p).collect();
        let residual_for = |n0: f64| {
            let params = ModelParams::new(yield_fraction, n0).expect("valid");
            sum_squared_residuals(&coverages, &fractions, |f| {
                rejected_fraction(&params, FaultCoverage::new(f).expect("valid"))
            })
        };
        let best = residual_for(estimate.curve_fit_n0);
        assert!(residual_for(3.0) > 4.0 * best);
        assert!(residual_for(4.0) > 2.0 * best);
    }

    #[test]
    fn estimator_recovers_known_n0_from_synthetic_data() {
        // Generate exact P(f) points for known parameters and check both
        // procedures recover them.
        let truth = ModelParams::new(Yield::new(0.25).expect("valid"), 6.0).expect("valid");
        let checkpoints = [0.02, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8];
        let rows: Vec<ChipTestRow> = checkpoints
            .iter()
            .map(|&f| ChipTestRow {
                fault_coverage: f,
                chips_failed: (rejected_fraction(&truth, FaultCoverage::new(f).expect("valid"))
                    * 10_000.0)
                    .round() as usize,
            })
            .collect();
        let table = ChipTestTable::new(rows, 10_000).expect("valid");
        let estimate = N0Estimator::default()
            .estimate(&table, truth.yield_fraction())
            .expect("estimates");
        assert!(
            (estimate.curve_fit_n0 - 6.0).abs() < 0.1,
            "curve fit {}",
            estimate.curve_fit_n0
        );
        // The slope estimate uses a finite window, so it is biased slightly
        // low but must be in the neighbourhood.
        assert!(
            (estimate.slope_n0 - 6.0).abs() < 1.0,
            "slope {}",
            estimate.slope_n0
        );
    }

    #[test]
    fn slope_falls_back_to_first_row_when_window_is_empty() {
        // The only row sits at 50 percent coverage, well outside the slope
        // window; the estimator must fall back to using that first row
        // rather than failing.
        let table = ChipTestTable::new(
            vec![ChipTestRow {
                fault_coverage: 0.5,
                chips_failed: 40,
            }],
            100,
        )
        .expect("valid");
        let estimator = N0Estimator {
            slope_window: 0.1,
            ..N0Estimator::default()
        };
        let estimate = estimator
            .estimate(&table, Yield::new(0.3).expect("valid"))
            .expect("falls back to the first row");
        assert!((estimate.origin_slope - 0.4 / 0.5).abs() < 1e-12);
    }

    #[test]
    fn slope_only_estimate_is_pessimistic_when_yield_ignored() {
        // Section 5: using P'(0) in place of n0 (i.e. assuming y = 0) gives a
        // smaller n0 and therefore a safe, higher coverage requirement.
        let table = ChipTestTable::paper_table_1();
        let with_yield = N0Estimator::default()
            .estimate(&table, Yield::new(0.07).expect("valid"))
            .expect("estimates");
        assert!(with_yield.origin_slope < with_yield.slope_n0);
    }
}
