//! The required-coverage solver (Section 6).
//!
//! Once `n0` is known, the coverage required for a specified field reject
//! rate follows from eq. 8.  The paper notes that solving eq. 8 for `f` is
//! "not very convenient" and plots eq. 11 instead (Figs. 2–4); here the
//! inversion is done numerically with a bracketing bisection, and the Figs.
//! 2–4 families can be regenerated directly.

use crate::error::QualityError;
use crate::params::{FaultCoverage, ModelParams, RejectRate, Yield};
use crate::reject::{field_reject_rate, yield_for_reject_target};
use lsiq_stats::roots::{bisect, RootOptions};

/// The smallest fault coverage that achieves field reject rate `target` for a
/// chip with the given parameters.
///
/// Returns coverage 0 when even an untested lot meets the target (high-yield
/// chips with loose targets), and coverage 1 exactly at the (unreachable in
/// practice) limit `r = 0`.
///
/// # Errors
///
/// Returns a numerical error only if the internal bisection fails to
/// converge, which cannot happen for valid parameters.
pub fn required_fault_coverage(
    params: &ModelParams,
    target: RejectRate,
) -> Result<FaultCoverage, QualityError> {
    let at_zero = field_reject_rate(params, FaultCoverage::new(0.0).expect("valid"));
    if at_zero.value() <= target.value() {
        return Ok(FaultCoverage::new(0.0).expect("valid"));
    }
    if target.value() == 0.0 {
        return Ok(FaultCoverage::new(1.0).expect("valid"));
    }
    // r(f) is continuous and strictly decreasing from r(0) > target to
    // r(1) = 0 < target, so the bracket always contains exactly one root.
    let root = bisect(
        |f| {
            let coverage = FaultCoverage::new(f.clamp(0.0, 1.0)).expect("clamped");
            field_reject_rate(params, coverage).value() - target.value()
        },
        0.0,
        1.0,
        RootOptions::default(),
    )?;
    Ok(FaultCoverage::new(root.clamp(0.0, 1.0)).expect("clamped"))
}

/// One point of a Figs. 2–4 style curve: for a yield `y`, the coverage
/// required to meet the reject target at the given `n0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequirementPoint {
    /// Chip yield.
    pub yield_fraction: f64,
    /// Required fault coverage (fraction).
    pub required_coverage: f64,
}

/// Generates a required-coverage-versus-yield curve for fixed `n0` and reject
/// target — one member of the family plotted in the paper's Figs. 2–4.
///
/// The curve is produced the way the paper does it: for a grid of coverages
/// `f`, eq. 11 gives the yield at which `f` is exactly sufficient; the pairs
/// are then returned sorted by yield.
///
/// # Errors
///
/// Returns [`QualityError::InvalidParameter`] if `n0 < 1`.
pub fn requirement_curve(
    n0: f64,
    target: RejectRate,
    points: usize,
) -> Result<Vec<RequirementPoint>, QualityError> {
    if !n0.is_finite() || n0 < 1.0 {
        return Err(QualityError::InvalidParameter {
            name: "n0",
            value: n0,
            expected: "a finite value >= 1",
        });
    }
    let steps = points.max(2) - 1;
    let mut curve: Vec<RequirementPoint> = (0..=steps)
        .map(|i| {
            let f = i as f64 / steps as f64;
            let coverage = FaultCoverage::new(f).expect("grid point is in range");
            let yield_fraction = yield_for_reject_target(n0, coverage, target).value();
            RequirementPoint {
                yield_fraction,
                required_coverage: f,
            }
        })
        .collect();
    curve.sort_by(|a, b| {
        a.yield_fraction
            .partial_cmp(&b.yield_fraction)
            .expect("yields are finite")
    });
    Ok(curve)
}

/// Interpolates a requirement curve at a specific yield.
///
/// # Errors
///
/// Returns the same errors as [`requirement_curve`].
pub fn required_coverage_at_yield(
    n0: f64,
    target: RejectRate,
    yield_fraction: Yield,
) -> Result<FaultCoverage, QualityError> {
    let params = ModelParams::new(yield_fraction, n0)?;
    required_fault_coverage(&params, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(y: f64, n0: f64) -> ModelParams {
        ModelParams::new(Yield::new(y).expect("valid"), n0).expect("valid")
    }

    fn reject(r: f64) -> RejectRate {
        RejectRate::new(r).expect("valid")
    }

    #[test]
    fn solver_inverts_the_reject_rate() {
        for &(y, n0, r) in &[(0.07, 8.0, 0.01), (0.2, 10.0, 0.005), (0.8, 2.0, 0.001)] {
            let p = params(y, n0);
            let coverage = required_fault_coverage(&p, reject(r)).expect("solves");
            let achieved = field_reject_rate(&p, coverage);
            assert!(
                (achieved.value() - r).abs() < 1e-9,
                "y={y} n0={n0} r={r}: achieved {}",
                achieved.value()
            );
        }
    }

    #[test]
    fn paper_section_seven_requirements() {
        // For the Section 7 chip (y = 0.07, n0 = 8): about 80 percent
        // coverage for a 1 percent reject rate and about 95 percent for
        // 1-in-1000.
        let p = params(0.07, 8.0);
        let at_one_percent = required_fault_coverage(&p, reject(0.01)).expect("solves");
        assert!(
            (at_one_percent.value() - 0.80).abs() < 0.04,
            "f = {}",
            at_one_percent.value()
        );
        let at_one_in_thousand = required_fault_coverage(&p, reject(0.001)).expect("solves");
        assert!(
            (at_one_in_thousand.value() - 0.95).abs() < 0.03,
            "f = {}",
            at_one_in_thousand.value()
        );
    }

    #[test]
    fn figure_four_spot_check() {
        // Section 6: "for yield y = 0.3 and n0 = 8, the fault coverage should
        // be about 85 percent" at r = 0.001.
        let coverage =
            required_coverage_at_yield(8.0, reject(0.001), Yield::new(0.3).expect("valid"))
                .expect("solves");
        assert!(
            (coverage.value() - 0.85).abs() < 0.03,
            "f = {}",
            coverage.value()
        );
    }

    #[test]
    fn loose_targets_need_no_testing() {
        // A 90 percent-yield chip already meets a 15 percent reject target
        // untested.
        let p = params(0.9, 3.0);
        let coverage = required_fault_coverage(&p, reject(0.15)).expect("solves");
        assert_eq!(coverage.value(), 0.0);
    }

    #[test]
    fn zero_reject_target_needs_full_coverage() {
        let p = params(0.5, 4.0);
        let coverage = required_fault_coverage(&p, reject(0.0)).expect("solves");
        assert_eq!(coverage.value(), 1.0);
    }

    #[test]
    fn requirement_decreases_with_yield_and_with_n0() {
        let target = reject(0.01);
        let low_yield = required_coverage_at_yield(5.0, target, Yield::new(0.1).expect("valid"))
            .expect("solves");
        let high_yield = required_coverage_at_yield(5.0, target, Yield::new(0.6).expect("valid"))
            .expect("solves");
        assert!(high_yield.value() < low_yield.value());
        let low_n0 = required_coverage_at_yield(2.0, target, Yield::new(0.2).expect("valid"))
            .expect("solves");
        let high_n0 = required_coverage_at_yield(10.0, target, Yield::new(0.2).expect("valid"))
            .expect("solves");
        assert!(high_n0.value() < low_n0.value());
    }

    #[test]
    fn requirement_curve_is_monotone_in_yield() {
        let curve = requirement_curve(8.0, reject(0.001), 101).expect("valid");
        assert_eq!(curve.len(), 101);
        for window in curve.windows(2) {
            assert!(window[0].yield_fraction <= window[1].yield_fraction);
            // Required coverage falls (weakly) as yield rises.
            assert!(window[1].required_coverage <= window[0].required_coverage + 1e-12);
        }
        assert!(requirement_curve(0.5, reject(0.01), 10).is_err());
    }

    #[test]
    fn curve_and_solver_agree() {
        let target = reject(0.005);
        let n0 = 6.0;
        let curve = requirement_curve(n0, target, 2_001).expect("valid");
        for &y in &[0.1, 0.3, 0.5, 0.7] {
            let solved = required_coverage_at_yield(n0, target, Yield::new(y).expect("valid"))
                .expect("solves");
            // Find the curve point with the nearest yield.
            let nearest = curve
                .iter()
                .min_by(|a, b| {
                    (a.yield_fraction - y)
                        .abs()
                        .partial_cmp(&(b.yield_fraction - y).abs())
                        .expect("finite")
                })
                .expect("curve is non-empty");
            assert!(
                (nearest.required_coverage - solved.value()).abs() < 0.02,
                "y={y}: curve {} vs solver {}",
                nearest.required_coverage,
                solved.value()
            );
        }
    }
}
