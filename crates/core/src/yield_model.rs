//! Chip-yield formulas.
//!
//! The paper calculates yield with the "power transformation" /
//! negative-binomial formula of Sredni and Stapper (eq. 3):
//!
//! ```text
//! y = (1 + λ·D0·A)^(−1/λ)
//! ```
//!
//! The classical alternatives (Poisson, Murphy, Seeds) are included both for
//! comparison benches and because the paper cites them as the prior art its
//! yield input may come from.

use crate::error::QualityError;
use crate::params::Yield;

/// A chip-yield model mapping average defect count `D0·A` to yield.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum YieldModel {
    /// Poisson statistics: `y = e^(−D0·A)`.
    Poisson,
    /// Murphy's model: `y = ((1 − e^(−D0·A)) / (D0·A))²`.
    Murphy,
    /// Seeds' model: `y = 1 / (1 + D0·A)`.
    Seeds,
    /// The paper's eq. 3 with clustering parameter `lambda` (variance of the
    /// defect density over its squared mean).
    NegativeBinomial {
        /// Clustering parameter `λ`.
        lambda: f64,
    },
}

impl YieldModel {
    /// Predicted yield for an average of `defects` (= `D0·A`) defects per
    /// chip.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidParameter`] if `defects` is negative or
    /// the clustering parameter is not finite and positive.
    pub fn yield_for_defects(&self, defects: f64) -> Result<Yield, QualityError> {
        if !defects.is_finite() || defects < 0.0 {
            return Err(QualityError::InvalidParameter {
                name: "defects",
                value: defects,
                expected: "a finite value >= 0",
            });
        }
        let value = match *self {
            YieldModel::Poisson => (-defects).exp(),
            YieldModel::Murphy => {
                if defects == 0.0 {
                    1.0
                } else {
                    let factor = (1.0 - (-defects).exp()) / defects;
                    factor * factor
                }
            }
            YieldModel::Seeds => 1.0 / (1.0 + defects),
            YieldModel::NegativeBinomial { lambda } => {
                if !lambda.is_finite() || lambda <= 0.0 {
                    return Err(QualityError::InvalidParameter {
                        name: "lambda",
                        value: lambda,
                        expected: "a finite value > 0",
                    });
                }
                (1.0 + lambda * defects).powf(-1.0 / lambda)
            }
        };
        Yield::new(value)
    }

    /// Inverts the model: the average defect count that produces
    /// `target_yield`.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidParameter`] if the target yield is 0 or
    /// the clustering parameter is invalid.  (Murphy's model is inverted
    /// numerically.)
    pub fn defects_for_yield(&self, target_yield: Yield) -> Result<f64, QualityError> {
        let y = target_yield.value();
        if y <= 0.0 {
            return Err(QualityError::InvalidParameter {
                name: "target_yield",
                value: y,
                expected: "a value > 0",
            });
        }
        match *self {
            YieldModel::Poisson => Ok(-y.ln()),
            YieldModel::Seeds => Ok(1.0 / y - 1.0),
            YieldModel::NegativeBinomial { lambda } => {
                if !lambda.is_finite() || lambda <= 0.0 {
                    return Err(QualityError::InvalidParameter {
                        name: "lambda",
                        value: lambda,
                        expected: "a finite value > 0",
                    });
                }
                Ok((y.powf(-lambda) - 1.0) / lambda)
            }
            YieldModel::Murphy => {
                if y >= 1.0 {
                    return Ok(0.0);
                }
                let root = lsiq_stats::roots::bisect(
                    |defects| {
                        self.yield_for_defects(defects)
                            .map(|predicted| predicted.value() - y)
                            .unwrap_or(f64::NAN)
                    },
                    1e-9,
                    1e6,
                    lsiq_stats::roots::RootOptions::default(),
                )?;
                Ok(root)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_defects_means_unit_yield() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::Seeds,
            YieldModel::NegativeBinomial { lambda: 0.5 },
        ] {
            let y = model.yield_for_defects(0.0).expect("valid");
            assert!((y.value() - 1.0).abs() < 1e-12, "{model:?}");
        }
    }

    #[test]
    fn yield_decreases_with_defect_count() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::Seeds,
            YieldModel::NegativeBinomial { lambda: 1.0 },
        ] {
            let mut previous = 1.0;
            for step in 1..20 {
                let defects = step as f64 * 0.5;
                let y = model.yield_for_defects(defects).expect("valid").value();
                assert!(y < previous, "{model:?} at {defects}");
                previous = y;
            }
        }
    }

    #[test]
    fn negative_binomial_matches_paper_equation_three() {
        let model = YieldModel::NegativeBinomial { lambda: 2.0 };
        let y = model.yield_for_defects(1.5).expect("valid").value();
        assert!((y - (1.0f64 + 2.0 * 1.5).powf(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn negative_binomial_approaches_poisson_for_small_lambda() {
        let nb = YieldModel::NegativeBinomial { lambda: 1e-6 };
        let poisson = YieldModel::Poisson;
        for &defects in &[0.5, 1.0, 2.0] {
            let a = nb.yield_for_defects(defects).expect("valid").value();
            let b = poisson.yield_for_defects(defects).expect("valid").value();
            assert!((a - b).abs() < 1e-4, "defects {defects}: {a} vs {b}");
        }
    }

    #[test]
    fn seeds_bound_below_poisson_bound_above_murphy_relation() {
        // For the same defect count the classical ordering is
        // Poisson <= Murphy <= Seeds.
        for &defects in &[0.5, 1.0, 3.0] {
            let poisson = YieldModel::Poisson
                .yield_for_defects(defects)
                .expect("valid");
            let murphy = YieldModel::Murphy
                .yield_for_defects(defects)
                .expect("valid");
            let seeds = YieldModel::Seeds.yield_for_defects(defects).expect("valid");
            assert!(poisson.value() <= murphy.value() + 1e-12);
            assert!(murphy.value() <= seeds.value() + 1e-12);
        }
    }

    #[test]
    fn inversion_round_trips() {
        let target = Yield::new(0.07).expect("valid");
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::Seeds,
            YieldModel::NegativeBinomial { lambda: 1.0 },
        ] {
            let defects = model.defects_for_yield(target).expect("invertible");
            let recovered = model.yield_for_defects(defects).expect("valid");
            assert!(
                (recovered.value() - 0.07).abs() < 1e-6,
                "{model:?}: {}",
                recovered.value()
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(YieldModel::Poisson.yield_for_defects(-1.0).is_err());
        assert!(YieldModel::NegativeBinomial { lambda: 0.0 }
            .yield_for_defects(1.0)
            .is_err());
        assert!(YieldModel::Poisson
            .defects_for_yield(Yield::new(0.0).expect("valid"))
            .is_err());
        assert!(YieldModel::NegativeBinomial { lambda: -1.0 }
            .defects_for_yield(Yield::new(0.5).expect("valid"))
            .is_err());
    }
}
