//! The field reject rate (eq. 8) and its inverse (eq. 11).

use crate::escape::BadChipYield;
use crate::params::{FaultCoverage, ModelParams, RejectRate, Yield};

/// Field reject rate `r(f)` for a chip with the given model parameters tested
/// to coverage `f` (eq. 8):
///
/// ```text
/// r(f) = (1−f)(1−y)e^(−(n0−1)f) / [ y + (1−f)(1−y)e^(−(n0−1)f) ]
/// ```
pub fn field_reject_rate(params: &ModelParams, coverage: FaultCoverage) -> RejectRate {
    let bad = BadChipYield::new(*params).closed_form(coverage);
    let y = params.yield_fraction().value();
    let value = if y + bad == 0.0 { 0.0 } else { bad / (y + bad) };
    RejectRate::new(value.clamp(0.0, 1.0)).expect("ratio of non-negative quantities is in [0,1]")
}

/// The yield required to meet field reject rate `r` at coverage `f` for a
/// given `n0` (eq. 11):
///
/// ```text
/// y = (1−r)(1−f)e^(−(n0−1)f) / [ r + (1−r)(1−f)e^(−(n0−1)f) ]
/// ```
///
/// This is the relation plotted in the paper's Figs. 2–4 (with `f` on the
/// vertical axis).
pub fn yield_for_reject_target(n0: f64, coverage: FaultCoverage, reject: RejectRate) -> Yield {
    let f = coverage.value();
    let r = reject.value();
    let kernel = (1.0 - r) * (1.0 - f) * (-(n0 - 1.0) * f).exp();
    let value = if r + kernel == 0.0 {
        1.0
    } else {
        kernel / (r + kernel)
    };
    Yield::new(value.clamp(0.0, 1.0)).expect("ratio of non-negative quantities is in [0,1]")
}

/// Sweeps `r(f)` over a uniform grid of coverages, returning `(f, r)` pairs —
/// one curve of the paper's Fig. 1.
pub fn reject_rate_curve(params: &ModelParams, points: usize) -> Vec<(f64, f64)> {
    let steps = points.max(2) - 1;
    (0..=steps)
        .map(|i| {
            let f = i as f64 / steps as f64;
            let coverage = FaultCoverage::new(f).expect("grid point is in range");
            (f, field_reject_rate(params, coverage).value())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(y: f64, n0: f64) -> ModelParams {
        ModelParams::new(Yield::new(y).expect("valid"), n0).expect("valid")
    }

    fn coverage(f: f64) -> FaultCoverage {
        FaultCoverage::new(f).expect("valid")
    }

    #[test]
    fn zero_coverage_reject_rate_is_defective_fraction() {
        // With no testing, every bad chip ships: r(0) = 1 - y.
        let p = params(0.8, 2.0);
        let r = field_reject_rate(&p, coverage(0.0));
        assert!((r.value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_reject_rate_is_zero() {
        let p = params(0.07, 8.0);
        assert!(field_reject_rate(&p, coverage(1.0)).value() < 1e-12);
    }

    #[test]
    fn reject_rate_is_monotone_decreasing_in_coverage() {
        let p = params(0.2, 10.0);
        let curve = reject_rate_curve(&p, 101);
        for window in curve.windows(2) {
            assert!(window[1].1 <= window[0].1 + 1e-12);
        }
        assert_eq!(curve.len(), 101);
    }

    #[test]
    fn figure_one_reference_points() {
        // Section 4: for y = 0.80 a reject rate of 0.5 percent needs about
        // 95 percent coverage when n0 = 2 but only about 38 percent when
        // n0 = 10.
        let n0_2 = params(0.8, 2.0);
        let n0_10 = params(0.8, 10.0);
        assert!(field_reject_rate(&n0_2, coverage(0.95)).value() <= 0.005 + 3e-4);
        assert!(field_reject_rate(&n0_2, coverage(0.90)).value() > 0.005);
        assert!(field_reject_rate(&n0_10, coverage(0.40)).value() <= 0.005 + 3e-4);
        assert!(field_reject_rate(&n0_10, coverage(0.30)).value() > 0.005);
        // And for y = 0.20: roughly 99 percent (n0 = 2) versus about
        // 63 percent (n0 = 10).  The 99-percent figure is a log-scale graph
        // reading in the paper; the exact root lies just above it, so check
        // that the n0 = 2 curve still needs north of 99 percent while the
        // n0 = 10 curve is already through the target near 63 percent.
        let low_yield_2 = params(0.2, 2.0);
        let low_yield_10 = params(0.2, 10.0);
        assert!(field_reject_rate(&low_yield_2, coverage(0.99)).value() < 0.02);
        assert!(field_reject_rate(&low_yield_2, coverage(0.95)).value() > 0.02);
        assert!(field_reject_rate(&low_yield_10, coverage(0.65)).value() <= 0.005 + 3e-4);
        assert!(field_reject_rate(&low_yield_10, coverage(0.55)).value() > 0.005);
    }

    #[test]
    fn higher_n0_needs_less_coverage_for_the_same_reject_rate() {
        let f = coverage(0.6);
        let low = field_reject_rate(&params(0.2, 2.0), f);
        let high = field_reject_rate(&params(0.2, 10.0), f);
        assert!(high.value() < low.value());
    }

    #[test]
    fn equation_eleven_inverts_equation_eight() {
        // For any (y, n0, f), computing r then feeding it to eq. 11 must give
        // back the yield.
        for &(y, n0) in &[(0.07, 8.0), (0.3, 5.0), (0.8, 2.0)] {
            let p = params(y, n0);
            for &f in &[0.1, 0.5, 0.9] {
                let r = field_reject_rate(&p, coverage(f));
                let recovered = yield_for_reject_target(n0, coverage(f), r);
                assert!(
                    (recovered.value() - y).abs() < 1e-9,
                    "y={y} n0={n0} f={f}: recovered {}",
                    recovered.value()
                );
            }
        }
    }

    #[test]
    fn yield_for_reject_target_handles_extremes() {
        let full =
            yield_for_reject_target(8.0, coverage(1.0), RejectRate::new(0.01).expect("valid"));
        // At full coverage any yield meets any reject target; the formula
        // degenerates to 0/r = 0.
        assert!(full.value() < 1e-12);
        let no_reject =
            yield_for_reject_target(8.0, coverage(0.5), RejectRate::new(0.0).expect("valid"));
        assert!((no_reject.value() - 1.0).abs() < 1e-12);
    }
}
