//! Baseline defect-level models the paper compares against.
//!
//! * **Wadsack (1978)** — the model of the paper's reference \[5\]:
//!   `r = (1 − y)(1 − f)`.  Section 7 shows it demands 99 percent and
//!   99.9 percent coverage for the example chip where the paper's model
//!   needs about 80 and 95 percent.
//! * **Williams–Brown (1981)** — the contemporaneous defect-level formula
//!   `DL = 1 − y^(1 − f)`, included as an additional comparison point for the
//!   ablation benches.  For low-yield chips it is even more demanding than
//!   Wadsack; both call for far higher coverage than the paper's model.

use crate::error::QualityError;
use crate::params::{FaultCoverage, RejectRate, Yield};

/// The Wadsack model: `r(f) = (1 − y)(1 − f)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WadsackModel {
    yield_fraction: Yield,
}

impl WadsackModel {
    /// Creates the model for a chip with the given yield.
    pub fn new(yield_fraction: Yield) -> Self {
        WadsackModel { yield_fraction }
    }

    /// The predicted field reject rate at coverage `f`.
    pub fn field_reject_rate(&self, coverage: FaultCoverage) -> RejectRate {
        let value = (1.0 - self.yield_fraction.value()) * (1.0 - coverage.value());
        RejectRate::new(value.clamp(0.0, 1.0)).expect("product of fractions is in [0,1]")
    }

    /// The coverage required for reject rate `target`:
    /// `f = 1 − r / (1 − y)`.
    pub fn required_fault_coverage(
        &self,
        target: RejectRate,
    ) -> Result<FaultCoverage, QualityError> {
        let defective = 1.0 - self.yield_fraction.value();
        if defective <= 0.0 {
            // A perfect-yield chip needs no testing at all.
            return FaultCoverage::new(0.0);
        }
        let value = 1.0 - target.value() / defective;
        FaultCoverage::new(value.clamp(0.0, 1.0))
    }
}

/// The Williams–Brown model: `DL(f) = 1 − y^(1 − f)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilliamsBrownModel {
    yield_fraction: Yield,
}

impl WilliamsBrownModel {
    /// Creates the model for a chip with the given yield.
    pub fn new(yield_fraction: Yield) -> Self {
        WilliamsBrownModel { yield_fraction }
    }

    /// The predicted defect level (field reject rate) at coverage `f`.
    pub fn defect_level(&self, coverage: FaultCoverage) -> RejectRate {
        let y = self.yield_fraction.value();
        let value = if y == 0.0 {
            // A zero-yield line ships only bad parts unless coverage is full.
            if coverage.value() >= 1.0 {
                0.0
            } else {
                1.0
            }
        } else {
            1.0 - y.powf(1.0 - coverage.value())
        };
        RejectRate::new(value.clamp(0.0, 1.0)).expect("defect level is a fraction")
    }

    /// The coverage required for defect level `target`:
    /// `f = 1 − ln(1 − DL)/ln(y)`.
    ///
    /// # Errors
    ///
    /// Returns [`QualityError::InvalidParameter`] for a zero or perfect yield
    /// where the formula degenerates.
    pub fn required_fault_coverage(
        &self,
        target: RejectRate,
    ) -> Result<FaultCoverage, QualityError> {
        let y = self.yield_fraction.value();
        if y <= 0.0 || y >= 1.0 {
            return Err(QualityError::InvalidParameter {
                name: "yield",
                value: y,
                expected: "a yield strictly between 0 and 1",
            });
        }
        let value = 1.0 - (1.0 - target.value()).ln() / y.ln();
        FaultCoverage::new(value.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage_requirement::required_fault_coverage;
    use crate::params::ModelParams;

    fn coverage(f: f64) -> FaultCoverage {
        FaultCoverage::new(f).expect("valid")
    }

    fn reject(r: f64) -> RejectRate {
        RejectRate::new(r).expect("valid")
    }

    #[test]
    fn wadsack_matches_section_seven_numbers() {
        // r = 0.01, y = 0.07  ->  f = 99 percent; r = 0.001 -> 99.9 percent.
        let model = WadsackModel::new(Yield::new(0.07).expect("valid"));
        let at_one_percent = model.required_fault_coverage(reject(0.01)).expect("valid");
        assert!((at_one_percent.value() - 0.989).abs() < 0.002);
        let at_one_in_thousand = model.required_fault_coverage(reject(0.001)).expect("valid");
        assert!((at_one_in_thousand.value() - 0.9989).abs() < 0.0005);
    }

    #[test]
    fn wadsack_reject_rate_round_trips() {
        let model = WadsackModel::new(Yield::new(0.3).expect("valid"));
        let f = model.required_fault_coverage(reject(0.05)).expect("valid");
        let r = model.field_reject_rate(f);
        assert!((r.value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn wadsack_perfect_yield_needs_no_testing() {
        let model = WadsackModel::new(Yield::new(1.0).expect("valid"));
        assert_eq!(
            model
                .required_fault_coverage(reject(0.001))
                .expect("valid")
                .value(),
            0.0
        );
        assert_eq!(model.field_reject_rate(coverage(0.0)).value(), 0.0);
    }

    #[test]
    fn williams_brown_limits() {
        let model = WilliamsBrownModel::new(Yield::new(0.07).expect("valid"));
        assert!((model.defect_level(coverage(1.0)).value()).abs() < 1e-12);
        assert!((model.defect_level(coverage(0.0)).value() - 0.93).abs() < 1e-12);
        let zero_yield = WilliamsBrownModel::new(Yield::new(0.0).expect("valid"));
        assert_eq!(zero_yield.defect_level(coverage(0.5)).value(), 1.0);
        assert_eq!(zero_yield.defect_level(coverage(1.0)).value(), 0.0);
        assert!(zero_yield.required_fault_coverage(reject(0.01)).is_err());
    }

    #[test]
    fn williams_brown_round_trips() {
        let model = WilliamsBrownModel::new(Yield::new(0.2).expect("valid"));
        let f = model.required_fault_coverage(reject(0.01)).expect("valid");
        let dl = model.defect_level(f);
        assert!((dl.value() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn baselines_demand_more_coverage_than_the_paper_model() {
        // For the Section 7 chip the paper's model (n0 = 8) requires far less
        // coverage than either baseline for the same reject rate; at 7 percent
        // yield both baselines sit at 99 percent or more.
        let y = Yield::new(0.07).expect("valid");
        let params = ModelParams::new(y, 8.0).expect("valid");
        let target = reject(0.01);
        let paper = required_fault_coverage(&params, target).expect("solves");
        let wadsack = WadsackModel::new(y)
            .required_fault_coverage(target)
            .expect("valid");
        let williams_brown = WilliamsBrownModel::new(y)
            .required_fault_coverage(target)
            .expect("valid");
        assert!(paper.value() < wadsack.value() - 0.1);
        assert!(paper.value() < williams_brown.value() - 0.1);
        assert!(wadsack.value() > 0.98);
        assert!(williams_brown.value() > 0.98);
    }
}
