//! A shared cache of good-machine (fault-free) chunk evaluations.
//!
//! Every fault-simulation pass begins the same way: evaluate the fault-free
//! circuit over each packed pattern chunk.  A test-suite build re-simulates
//! its growing pattern prefix once per chunk of new patterns, a BIST sweep
//! re-folds the same responses per signature width, and reverse-order
//! compaction replays single patterns the initial pass already evaluated —
//! all of them recomputing identical good-machine images.
//!
//! [`GoodMachineCache`] memoizes those images.  A lookup is keyed by
//!
//! * a structural fingerprint of the circuit (gate kinds, fanins, primary
//!   inputs and outputs),
//! * the lane width `L` of the chunk, and
//! * the packed input chunk itself (its words and valid-pattern count),
//!
//! so any pass over the same circuit and the same pattern window — whichever
//! subsystem issues it — shares one evaluation.  Keys are content hashes,
//! verified against the stored inputs on every hit, so a hash collision
//! degrades to a miss instead of a wrong answer.  The cache is internally
//! synchronized; engines running on the worker pool may consult it
//! concurrently.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::levelized::CompiledCircuit;
use crate::packed::PackedBlock;
use lsiq_netlist::circuit::Circuit;
use lsiq_obs::Counter;

/// Registry mirrors of the per-cache accessor counters below: lookups
/// answered from a resident image, and lookups that evaluated the circuit.
/// Both are invariant across worker counts and lane schedules (the lookup
/// sequence is a property of the workload), which the determinism suite
/// relies on.
static CACHE_HITS: Counter = Counter::new("cache.good_machine.hits");
static CACHE_MISSES: Counter = Counter::new("cache.good_machine.misses");

/// A structural fingerprint of a circuit: gate kinds and fanins in id order,
/// plus the primary input/output lists.  Two circuits with the same
/// fingerprint simulate identically (up to the 64-bit hash), which is all
/// the cache needs — stored inputs are verified on every hit anyway.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let mut hasher = DefaultHasher::new();
    circuit.gate_count().hash(&mut hasher);
    for gate in circuit.gates() {
        gate.kind().hash(&mut hasher);
        for &fanin in gate.fanin() {
            fanin.index().hash(&mut hasher);
        }
        usize::MAX.hash(&mut hasher); // fanin-list terminator
    }
    for &input in circuit.primary_inputs() {
        input.index().hash(&mut hasher);
    }
    for &output in circuit.primary_outputs() {
        output.index().hash(&mut hasher);
    }
    hasher.finish()
}

/// One cached good-machine image: the evaluated per-gate chunks together
/// with the exact inputs they were computed from (for hit verification).
struct CachedChunk<const L: usize> {
    inputs: Vec<PackedBlock<L>>,
    count: usize,
    words: Vec<PackedBlock<L>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    circuit: u64,
    lanes: u32,
    inputs: u64,
}

/// A bounded, thread-safe memo of good-machine chunk evaluations, shared
/// across the suite builder, the BIST sweep and compaction (see the module
/// docs).
///
/// ```
/// use lsiq_netlist::library;
/// use lsiq_sim::cache::GoodMachineCache;
/// use lsiq_sim::levelized::CompiledCircuit;
/// use lsiq_sim::pattern::{Pattern, PatternSet};
///
/// let circuit = library::c17();
/// let compiled = CompiledCircuit::new(&circuit);
/// let patterns: PatternSet = (0..40).map(|i| Pattern::from_integer(i, 5)).collect();
/// let (inputs, count) = patterns.pack_chunk::<1>(5, 0);
///
/// let cache = GoodMachineCache::new();
/// let first = cache.node_chunks(&compiled, &inputs, count);
/// let again = cache.node_chunks(&compiled, &inputs, count);
/// assert_eq!(first, again);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
pub struct GoodMachineCache {
    entries: Mutex<HashMap<CacheKey, Arc<dyn Any + Send + Sync>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Default bound on resident entries; at the reproduction's scale one entry
/// is `gate_count × L` words, so even 50k-gate chunks stay in the tens of
/// megabytes.
const DEFAULT_CAPACITY: usize = 256;

impl GoodMachineCache {
    /// Creates a cache with the default entry capacity.
    pub fn new() -> GoodMachineCache {
        GoodMachineCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a cache bounded to `capacity` resident chunk images.  When
    /// full, the next insertion evicts the whole generation (the access
    /// patterns here are whole-pass sweeps, for which LRU bookkeeping buys
    /// nothing over wholesale turnover).
    pub fn with_capacity(capacity: usize) -> GoodMachineCache {
        GoodMachineCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to evaluate the circuit.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of resident chunk images.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Returns `true` if no chunk image is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident image (the counters survive).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// The good-machine image of one input chunk: one evaluated
    /// [`PackedBlock`] per gate, indexed by gate id — exactly
    /// [`CompiledCircuit::node_chunks`], memoized.
    ///
    /// `count` is the number of valid patterns in the chunk; it participates
    /// in the key so a full chunk and a partial prefix of it (whose packed
    /// words may coincide) stay distinct entries.
    pub fn node_chunks<const L: usize>(
        &self,
        compiled: &CompiledCircuit<'_>,
        inputs: &[PackedBlock<L>],
        count: usize,
    ) -> Arc<Vec<PackedBlock<L>>> {
        self.node_chunks_keyed(
            circuit_fingerprint(compiled.circuit()),
            compiled,
            inputs,
            count,
        )
    }

    /// Like [`node_chunks`](GoodMachineCache::node_chunks) with the circuit
    /// fingerprint precomputed — callers that sweep many chunks of one
    /// circuit hash its structure once instead of per chunk.
    pub fn node_chunks_keyed<const L: usize>(
        &self,
        fingerprint: u64,
        compiled: &CompiledCircuit<'_>,
        inputs: &[PackedBlock<L>],
        count: usize,
    ) -> Arc<Vec<PackedBlock<L>>> {
        let key = CacheKey {
            circuit: fingerprint,
            lanes: L as u32,
            inputs: hash_inputs(inputs, count),
        };
        if let Some(entry) = self.lock().get(&key) {
            if let Some(cached) = entry
                .clone()
                .downcast::<CachedChunk<L>>()
                .ok()
                .filter(|cached| cached.count == count && cached.inputs == inputs)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                CACHE_HITS.incr();
                return Arc::new(cached.words.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISSES.incr();
        let words = compiled.node_chunks(inputs);
        let entry = Arc::new(CachedChunk {
            inputs: inputs.to_vec(),
            count,
            words: words.clone(),
        });
        let mut entries = self.lock();
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            entries.clear();
        }
        entries.insert(key, entry);
        Arc::new(words)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Arc<dyn Any + Send + Sync>>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Default for GoodMachineCache {
    fn default() -> GoodMachineCache {
        GoodMachineCache::new()
    }
}

impl std::fmt::Debug for GoodMachineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoodMachineCache")
            .field("entries", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

fn hash_inputs<const L: usize>(inputs: &[PackedBlock<L>], count: usize) -> u64 {
    let mut hasher = DefaultHasher::new();
    count.hash(&mut hasher);
    inputs.len().hash(&mut hasher);
    for chunk in inputs {
        chunk.0.hash(&mut hasher);
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Pattern, PatternSet};
    use lsiq_netlist::library;

    fn patterns(count: u64, width: usize) -> PatternSet {
        (0..count)
            .map(|i| Pattern::from_integer(i.wrapping_mul(0x9E37_79B9), width))
            .collect()
    }

    #[test]
    fn cached_and_uncached_images_are_identical() {
        let circuit = library::alu4();
        let compiled = CompiledCircuit::new(&circuit);
        let width = circuit.primary_inputs().len();
        let set = patterns(150, width);
        let cache = GoodMachineCache::new();
        for chunk in 0..set.chunk_count(1) {
            let (inputs, count) = set.pack_chunk::<1>(width, chunk);
            let cached = cache.node_chunks(&compiled, &inputs, count);
            let direct = compiled.node_chunks(&inputs);
            assert_eq!(*cached, direct, "chunk {chunk}");
        }
        assert_eq!(cache.misses(), set.chunk_count(1) as u64);
        assert_eq!(cache.hits(), 0);
        // The second pass is answered from the cache, with identical words.
        for chunk in 0..set.chunk_count(1) {
            let (inputs, count) = set.pack_chunk::<1>(width, chunk);
            let cached = cache.node_chunks(&compiled, &inputs, count);
            assert_eq!(*cached, compiled.node_chunks(&inputs), "chunk {chunk}");
        }
        assert_eq!(cache.hits(), set.chunk_count(1) as u64);
        assert_eq!(cache.misses(), set.chunk_count(1) as u64);
    }

    #[test]
    fn lane_widths_and_circuits_do_not_collide() {
        let alu = library::alu4();
        let c17 = library::c17();
        assert_ne!(circuit_fingerprint(&alu), circuit_fingerprint(&c17));
        let compiled = CompiledCircuit::new(&alu);
        let width = alu.primary_inputs().len();
        let set = patterns(64, width);
        let cache = GoodMachineCache::new();
        let (inputs1, count1) = set.pack_chunk::<1>(width, 0);
        let (inputs4, count4) = set.pack_chunk::<4>(width, 0);
        let narrow = cache.node_chunks(&compiled, &inputs1, count1);
        let wide = cache.node_chunks(&compiled, &inputs4, count4);
        assert_eq!(cache.misses(), 2, "different lane widths are distinct keys");
        for (gate, chunk) in wide.iter().enumerate() {
            assert_eq!(chunk.0[0], narrow[gate].0[0]);
        }
    }

    #[test]
    fn capacity_bound_evicts_rather_than_grows() {
        let circuit = library::c17();
        let compiled = CompiledCircuit::new(&circuit);
        let cache = GoodMachineCache::with_capacity(2);
        // A full splitmix64 mix per pattern so every 64-pattern chunk packs
        // differently (weaker mixers leave colliding chunks).
        let set: PatternSet = (0..64u64 * 5)
            .map(|i| {
                let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Pattern::from_integer(z ^ (z >> 31), 5)
            })
            .collect();
        for chunk in 0..5 {
            let (inputs, count) = set.pack_chunk::<1>(5, chunk);
            let _ = cache.node_chunks(&compiled, &inputs, count);
        }
        assert!(cache.len() <= 2, "{} entries resident", cache.len());
        assert_eq!(cache.misses(), 5);
        cache.clear();
        assert!(cache.is_empty());
        assert!(format!("{cache:?}").contains("capacity"));
    }

    #[test]
    fn distinct_pattern_counts_are_distinct_entries() {
        // A full chunk and a shorter prefix can pack to the same words (the
        // tail patterns may be all-zero); the count keeps them apart.
        let circuit = library::c17();
        let compiled = CompiledCircuit::new(&circuit);
        let cache = GoodMachineCache::new();
        let zeros: PatternSet = (0..64).map(|_| Pattern::zeros(5)).collect();
        let (inputs, _) = zeros.pack_chunk::<1>(5, 0);
        let _ = cache.node_chunks(&compiled, &inputs, 64);
        let _ = cache.node_chunks(&compiled, &inputs, 10);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }
}
