//! Gate-function evaluation over scalar, three-valued and packed operands.

use crate::logic::Value3;
use crate::packed::PackedBlock;
use lsiq_netlist::GateKind;

/// Evaluates a gate over two-valued scalar inputs.
///
/// Source kinds ([`GateKind::Input`], constants) take no inputs; `Input`
/// evaluates to `false` here because its value is supplied externally by the
/// simulator, never computed.  A [`GateKind::Dff`] holds state, not a
/// combinational function: one evaluation step reads it at its reset state
/// (0).  Sequential devices are tested through scan
/// (`lsiq_netlist::scan`), whose expanded test view replaces every
/// flip-flop with a pseudo-primary input before simulation.
pub fn eval_bool(kind: GateKind, inputs: &[bool]) -> bool {
    match kind {
        GateKind::Input => false,
        GateKind::Dff => false,
        GateKind::Const0 => false,
        GateKind::Const1 => true,
        GateKind::Buf => inputs[0],
        GateKind::Not => !inputs[0],
        GateKind::And => inputs.iter().all(|&v| v),
        GateKind::Nand => !inputs.iter().all(|&v| v),
        GateKind::Or => inputs.iter().any(|&v| v),
        GateKind::Nor => !inputs.iter().any(|&v| v),
        GateKind::Xor => inputs.iter().filter(|&&v| v).count() % 2 == 1,
        GateKind::Xnor => inputs.iter().filter(|&&v| v).count() % 2 == 0,
    }
}

/// Evaluates a gate over three-valued inputs.
pub fn eval_value3(kind: GateKind, inputs: &[Value3]) -> Value3 {
    match kind {
        GateKind::Input => Value3::Unknown,
        GateKind::Dff => Value3::Unknown,
        GateKind::Const0 => Value3::Zero,
        GateKind::Const1 => Value3::One,
        GateKind::Buf => inputs[0],
        GateKind::Not => inputs[0].not(),
        GateKind::And => inputs.iter().copied().fold(Value3::One, Value3::and),
        GateKind::Nand => inputs.iter().copied().fold(Value3::One, Value3::and).not(),
        GateKind::Or => inputs.iter().copied().fold(Value3::Zero, Value3::or),
        GateKind::Nor => inputs.iter().copied().fold(Value3::Zero, Value3::or).not(),
        GateKind::Xor => inputs.iter().copied().fold(Value3::Zero, Value3::xor),
        GateKind::Xnor => inputs.iter().copied().fold(Value3::Zero, Value3::xor).not(),
    }
}

/// Evaluates a gate over 64-way bit-packed operands (bit `i` of each word is
/// pattern `i`).
pub fn eval_packed(kind: GateKind, inputs: &[u64]) -> u64 {
    match kind {
        GateKind::Input => 0,
        GateKind::Dff => 0,
        GateKind::Const0 => 0,
        GateKind::Const1 => u64::MAX,
        GateKind::Buf => inputs[0],
        GateKind::Not => !inputs[0],
        GateKind::And => inputs.iter().fold(u64::MAX, |acc, &v| acc & v),
        GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &v| acc & v),
        GateKind::Or => inputs.iter().fold(0, |acc, &v| acc | v),
        GateKind::Nor => !inputs.iter().fold(0, |acc, &v| acc | v),
        GateKind::Xor => inputs.iter().fold(0, |acc, &v| acc ^ v),
        GateKind::Xnor => !inputs.iter().fold(0, |acc, &v| acc ^ v),
    }
}

/// Evaluates a gate over lane-wide packed chunks (`64 × L` patterns per
/// operand; see [`PackedBlock`]).
///
/// Lane `l` of the result depends only on lane `l` of every input, so this
/// is exactly [`eval_packed`] applied per lane — monomorphized over `L` so
/// the folds compile to straight-line vectorizable loops.
#[inline]
pub fn eval_chunk<const L: usize>(kind: GateKind, inputs: &[PackedBlock<L>]) -> PackedBlock<L> {
    match kind {
        GateKind::Input => PackedBlock::ZERO,
        GateKind::Dff => PackedBlock::ZERO,
        GateKind::Const0 => PackedBlock::ZERO,
        GateKind::Const1 => PackedBlock::ONES,
        GateKind::Buf => inputs[0],
        GateKind::Not => !inputs[0],
        GateKind::And => inputs.iter().fold(PackedBlock::ONES, |acc, &v| acc & v),
        GateKind::Nand => !inputs.iter().fold(PackedBlock::ONES, |acc, &v| acc & v),
        GateKind::Or => inputs.iter().fold(PackedBlock::ZERO, |acc, &v| acc | v),
        GateKind::Nor => !inputs.iter().fold(PackedBlock::ZERO, |acc, &v| acc | v),
        GateKind::Xor => inputs.iter().fold(PackedBlock::ZERO, |acc, &v| acc ^ v),
        GateKind::Xnor => !inputs.iter().fold(PackedBlock::ZERO, |acc, &v| acc ^ v),
    }
}

/// The value a gate's output takes when input `pin` is the controlling value
/// for the gate, or `None` if the kind has no controlling value (XOR family,
/// buffers).  Used by the PODEM backtrace heuristics.
pub fn controlling_value(kind: GateKind) -> Option<bool> {
    match kind {
        GateKind::And | GateKind::Nand => Some(false),
        GateKind::Or | GateKind::Nor => Some(true),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TWO_INPUT_KINDS: [GateKind; 6] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    #[test]
    fn two_input_truth_tables() {
        let cases: [(GateKind, [bool; 4]); 6] = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expected) in cases {
            for (index, &want) in expected.iter().enumerate() {
                let a = index & 1 == 1;
                let b = index & 2 == 2;
                assert_eq!(eval_bool(kind, &[a, b]), want, "{kind} {a} {b}");
            }
        }
    }

    #[test]
    fn unary_and_source_kinds() {
        assert!(eval_bool(GateKind::Buf, &[true]));
        assert!(!eval_bool(GateKind::Not, &[true]));
        assert!(eval_bool(GateKind::Const1, &[]));
        assert!(!eval_bool(GateKind::Const0, &[]));
        assert!(!eval_bool(GateKind::Input, &[]));
    }

    #[test]
    fn multi_input_xor_is_parity() {
        assert!(eval_bool(GateKind::Xor, &[true, true, true]));
        assert!(!eval_bool(GateKind::Xor, &[true, true, true, true]));
        assert!(!eval_bool(GateKind::Xnor, &[true, false, false]));
    }

    #[test]
    fn packed_matches_scalar_for_every_kind() {
        for kind in TWO_INPUT_KINDS {
            for a in [false, true] {
                for b in [false, true] {
                    let word_a = if a { u64::MAX } else { 0 };
                    let word_b = if b { u64::MAX } else { 0 };
                    let packed = eval_packed(kind, &[word_a, word_b]);
                    let scalar = eval_bool(kind, &[a, b]);
                    let expected = if scalar { u64::MAX } else { 0 };
                    assert_eq!(packed, expected, "{kind} {a} {b}");
                }
            }
        }
        assert_eq!(eval_packed(GateKind::Not, &[0]), u64::MAX);
        assert_eq!(eval_packed(GateKind::Buf, &[7]), 7);
        assert_eq!(eval_packed(GateKind::Const1, &[]), u64::MAX);
    }

    #[test]
    fn packed_evaluates_each_bit_independently() {
        // Patterns 0..3 of a 2-input AND: a = 0101, b = 0011 -> and = 0001.
        let a = 0b0101u64;
        let b = 0b0011u64;
        assert_eq!(eval_packed(GateKind::And, &[a, b]) & 0xF, 0b0001);
        assert_eq!(eval_packed(GateKind::Xor, &[a, b]) & 0xF, 0b0110);
    }

    #[test]
    fn chunk_eval_matches_per_lane_packed_eval() {
        const ALL_KINDS: [GateKind; 12] = [
            GateKind::Input,
            GateKind::Dff,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        let a = PackedBlock::<4>([0x0123, 0x4567, 0x89AB, 0xCDEF]);
        let b = PackedBlock::<4>([0xFFFF, 0x0F0F, 0x00FF, 0xAAAA]);
        let c = PackedBlock::<4>([0x1111, 0x2222, 0x4444, 0x8888]);
        for kind in ALL_KINDS {
            let arity = match kind {
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => 0,
                GateKind::Buf | GateKind::Not => 1,
                _ => 3,
            };
            let inputs = [a, b, c];
            let chunk = eval_chunk(kind, &inputs[..arity]);
            for lane in 0..4 {
                let lane_inputs: Vec<u64> =
                    inputs[..arity].iter().map(|block| block.0[lane]).collect();
                assert_eq!(
                    chunk.0[lane],
                    eval_packed(kind, &lane_inputs),
                    "{kind} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn value3_matches_bool_on_known_inputs() {
        for kind in TWO_INPUT_KINDS {
            for a in [false, true] {
                for b in [false, true] {
                    let v = eval_value3(kind, &[Value3::from_bool(a), Value3::from_bool(b)]);
                    assert_eq!(v.to_bool(), Some(eval_bool(kind, &[a, b])), "{kind}");
                }
            }
        }
    }

    #[test]
    fn value3_unknown_handling() {
        // A controlling value decides the output even with an X present.
        assert_eq!(
            eval_value3(GateKind::And, &[Value3::Zero, Value3::Unknown]),
            Value3::Zero
        );
        assert_eq!(
            eval_value3(GateKind::Nor, &[Value3::One, Value3::Unknown]),
            Value3::Zero
        );
        // Without a controlling value the output is unknown.
        assert_eq!(
            eval_value3(GateKind::And, &[Value3::One, Value3::Unknown]),
            Value3::Unknown
        );
        assert_eq!(
            eval_value3(GateKind::Xor, &[Value3::One, Value3::Unknown]),
            Value3::Unknown
        );
        assert_eq!(eval_value3(GateKind::Input, &[]), Value3::Unknown);
        assert_eq!(eval_value3(GateKind::Const0, &[]), Value3::Zero);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(controlling_value(GateKind::And), Some(false));
        assert_eq!(controlling_value(GateKind::Nand), Some(false));
        assert_eq!(controlling_value(GateKind::Or), Some(true));
        assert_eq!(controlling_value(GateKind::Nor), Some(true));
        assert_eq!(controlling_value(GateKind::Xor), None);
        assert_eq!(controlling_value(GateKind::Buf), None);
    }
}
