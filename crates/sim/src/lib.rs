//! Logic simulation substrate.
//!
//! Provides the gate evaluation primitives and whole-circuit simulators that
//! the fault simulator (`lsiq-fault`), the test generator (`lsiq-tpg`)
//! and the production-line tester (`lsiq-manufacturing`) are built on:
//!
//! * [`logic`] — two-valued and three-valued (0/1/X) scalar values,
//! * [`eval`] — evaluation of a [`GateKind`](lsiq_netlist::GateKind) over
//!   scalar, three-valued, 64-way bit-packed and lane-wide chunk operands,
//! * [`packed`] — packed-word helpers and the lane-generic
//!   [`PackedBlock`] chunk (`u64 × 1/4/8`),
//! * [`pattern`] — input pattern containers and packing,
//! * [`levelized`] — a compiled, levelised full-circuit simulator (scalar,
//!   64-pattern-parallel and lane-wide chunk variants),
//! * [`cache`] — the shared [`GoodMachineCache`]
//!   memoizing fault-free chunk evaluations across passes,
//! * [`event`] — an event-driven incremental simulator.
//!
//! # Quick example
//!
//! ```
//! use lsiq_netlist::library;
//! use lsiq_sim::levelized::CompiledCircuit;
//! use lsiq_sim::pattern::Pattern;
//!
//! let circuit = library::c17();
//! let sim = CompiledCircuit::new(&circuit);
//! let response = sim.outputs(&Pattern::from_bits([true, false, true, false, true]));
//! assert_eq!(response.len(), 2);
//! ```

pub mod cache;
pub mod eval;
pub mod event;
pub mod levelized;
pub mod logic;
pub mod packed;
pub mod pattern;

pub use cache::GoodMachineCache;
pub use levelized::CompiledCircuit;
pub use logic::Value3;
pub use packed::PackedBlock;
pub use pattern::{Pattern, PatternSet};
