//! Scalar logic values.
//!
//! Two-valued simulation uses plain `bool`; three-valued simulation (needed
//! by the PODEM test generator for unassigned inputs) uses [`Value3`].

use std::fmt;

/// A three-valued logic value: 0, 1 or unknown (X).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value3 {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown / unassigned.
    #[default]
    Unknown,
}

impl Value3 {
    /// Converts a known boolean into a three-valued value.
    pub fn from_bool(value: bool) -> Value3 {
        if value {
            Value3::One
        } else {
            Value3::Zero
        }
    }

    /// Converts to a boolean when the value is known.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Value3::Zero => Some(false),
            Value3::One => Some(true),
            Value3::Unknown => None,
        }
    }

    /// Returns `true` when the value is known (not X).
    pub fn is_known(self) -> bool {
        self != Value3::Unknown
    }

    /// Three-valued inversion.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Value3 {
        match self {
            Value3::Zero => Value3::One,
            Value3::One => Value3::Zero,
            Value3::Unknown => Value3::Unknown,
        }
    }

    /// Three-valued AND.
    pub fn and(self, other: Value3) -> Value3 {
        match (self, other) {
            (Value3::Zero, _) | (_, Value3::Zero) => Value3::Zero,
            (Value3::One, Value3::One) => Value3::One,
            _ => Value3::Unknown,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: Value3) -> Value3 {
        match (self, other) {
            (Value3::One, _) | (_, Value3::One) => Value3::One,
            (Value3::Zero, Value3::Zero) => Value3::Zero,
            _ => Value3::Unknown,
        }
    }

    /// Three-valued XOR.
    pub fn xor(self, other: Value3) -> Value3 {
        match (self, other) {
            (Value3::Unknown, _) | (_, Value3::Unknown) => Value3::Unknown,
            (a, b) if a == b => Value3::Zero,
            _ => Value3::One,
        }
    }
}

impl From<bool> for Value3 {
    fn from(value: bool) -> Self {
        Value3::from_bool(value)
    }
}

impl fmt::Display for Value3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbol = match self {
            Value3::Zero => '0',
            Value3::One => '1',
            Value3::Unknown => 'X',
        };
        write!(f, "{symbol}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Value3; 3] = [Value3::Zero, Value3::One, Value3::Unknown];

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value3::from_bool(true), Value3::One);
        assert_eq!(Value3::from_bool(false), Value3::Zero);
        assert_eq!(Value3::One.to_bool(), Some(true));
        assert_eq!(Value3::Zero.to_bool(), Some(false));
        assert_eq!(Value3::Unknown.to_bool(), None);
        assert_eq!(Value3::from(true), Value3::One);
    }

    #[test]
    fn not_truth_table() {
        assert_eq!(Value3::Zero.not(), Value3::One);
        assert_eq!(Value3::One.not(), Value3::Zero);
        assert_eq!(Value3::Unknown.not(), Value3::Unknown);
    }

    #[test]
    fn and_controls_on_zero() {
        for v in ALL {
            assert_eq!(Value3::Zero.and(v), Value3::Zero);
            assert_eq!(v.and(Value3::Zero), Value3::Zero);
        }
        assert_eq!(Value3::One.and(Value3::One), Value3::One);
        assert_eq!(Value3::One.and(Value3::Unknown), Value3::Unknown);
    }

    #[test]
    fn or_controls_on_one() {
        for v in ALL {
            assert_eq!(Value3::One.or(v), Value3::One);
            assert_eq!(v.or(Value3::One), Value3::One);
        }
        assert_eq!(Value3::Zero.or(Value3::Zero), Value3::Zero);
        assert_eq!(Value3::Zero.or(Value3::Unknown), Value3::Unknown);
    }

    #[test]
    fn xor_propagates_unknown() {
        assert_eq!(Value3::One.xor(Value3::Zero), Value3::One);
        assert_eq!(Value3::One.xor(Value3::One), Value3::Zero);
        assert_eq!(Value3::Unknown.xor(Value3::One), Value3::Unknown);
        assert_eq!(Value3::Zero.xor(Value3::Unknown), Value3::Unknown);
    }

    #[test]
    fn consistency_with_bool_logic_on_known_values() {
        for a in [false, true] {
            for b in [false, true] {
                let va = Value3::from_bool(a);
                let vb = Value3::from_bool(b);
                assert_eq!(va.and(vb).to_bool(), Some(a && b));
                assert_eq!(va.or(vb).to_bool(), Some(a || b));
                assert_eq!(va.xor(vb).to_bool(), Some(a ^ b));
                assert_eq!(va.not().to_bool(), Some(!a));
            }
        }
    }

    #[test]
    fn default_is_unknown_and_display_works() {
        assert_eq!(Value3::default(), Value3::Unknown);
        assert_eq!(Value3::Zero.to_string(), "0");
        assert_eq!(Value3::One.to_string(), "1");
        assert_eq!(Value3::Unknown.to_string(), "X");
    }
}
