//! Helpers for 64-way bit-parallel simulation words.
//!
//! A packed word carries one bit per pattern: bit `i` of every signal's word
//! is that signal's value under pattern `i` of the current 64-pattern block.

/// Number of patterns carried by one packed word.
pub const PATTERNS_PER_WORD: usize = 64;

/// A mask with the low `count` bits set, selecting the valid patterns of a
/// partially filled block.
///
/// # Panics
///
/// Panics if `count` exceeds [`PATTERNS_PER_WORD`].
pub fn valid_mask(count: usize) -> u64 {
    assert!(
        count <= PATTERNS_PER_WORD,
        "a block holds at most {PATTERNS_PER_WORD} patterns"
    );
    if count == PATTERNS_PER_WORD {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Expands a single boolean into a full packed word (all patterns equal).
pub fn broadcast(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// Extracts the bit for pattern `slot` from a packed word.
///
/// # Panics
///
/// Panics if `slot` is 64 or more.
pub fn bit(word: u64, slot: usize) -> bool {
    assert!(slot < PATTERNS_PER_WORD, "pattern slot out of range");
    (word >> slot) & 1 == 1
}

/// The bits of pattern slot `slot` across a slice of packed words, one per
/// signal, in signal order.
///
/// This is the column view of the 64-pattern block layout: where
/// [`bit`] asks "what is signal `s` under pattern `i`", `gather_slot`
/// re-assembles the whole response of pattern `i` — the per-pattern word a
/// signature compactor folds one cycle at a time.
///
/// # Panics
///
/// Panics if `slot` is 64 or more.
pub fn gather_slot(words: &[u64], slot: usize) -> impl Iterator<Item = bool> + '_ {
    assert!(slot < PATTERNS_PER_WORD, "pattern slot out of range");
    words.iter().map(move |&word| (word >> slot) & 1 == 1)
}

/// The pattern slots (indices) at which two packed response words differ,
/// restricted to the `valid` mask.  This is how the fault simulator turns a
/// word-level mismatch into per-pattern detections.
pub fn differing_slots(good: u64, faulty: u64, valid: u64) -> Vec<usize> {
    let mut diff = (good ^ faulty) & valid;
    let mut slots = Vec::new();
    while diff != 0 {
        let slot = diff.trailing_zeros() as usize;
        slots.push(slot);
        diff &= diff - 1;
    }
    slots
}

/// The earliest differing pattern slot, if any, restricted to `valid`.
pub fn first_differing_slot(good: u64, faulty: u64, valid: u64) -> Option<usize> {
    let diff = (good ^ faulty) & valid;
    if diff == 0 {
        None
    } else {
        Some(diff.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mask_edges() {
        assert_eq!(valid_mask(0), 0);
        assert_eq!(valid_mask(1), 1);
        assert_eq!(valid_mask(3), 0b111);
        assert_eq!(valid_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_mask_panics() {
        let _ = valid_mask(65);
    }

    #[test]
    fn broadcast_and_bit() {
        assert_eq!(broadcast(true), u64::MAX);
        assert_eq!(broadcast(false), 0);
        assert!(bit(0b100, 2));
        assert!(!bit(0b100, 1));
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn bit_slot_out_of_range_panics() {
        let _ = bit(0, 64);
    }

    #[test]
    fn gather_slot_transposes_the_block() {
        let words = [0b101u64, 0b010, 0b111];
        let column: Vec<bool> = gather_slot(&words, 0).collect();
        assert_eq!(column, [true, false, true]);
        let column: Vec<bool> = gather_slot(&words, 1).collect();
        assert_eq!(column, [false, true, true]);
        assert!(gather_slot(&[], 5).next().is_none());
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn gather_slot_out_of_range_panics() {
        let _ = gather_slot(&[0], 64).count();
    }

    #[test]
    fn differing_slots_lists_all_mismatches() {
        let good = 0b1010_1010;
        let faulty = 0b1010_0110;
        assert_eq!(differing_slots(good, faulty, u64::MAX), vec![2, 3]);
        // Restricting the valid mask hides mismatches outside it.
        assert_eq!(differing_slots(good, faulty, 0b0111), vec![2]);
        assert!(differing_slots(good, good, u64::MAX).is_empty());
    }

    #[test]
    fn first_differing_slot_matches_list_head() {
        let good = 0b1000;
        let faulty = 0b0010;
        assert_eq!(first_differing_slot(good, faulty, u64::MAX), Some(1));
        assert_eq!(first_differing_slot(good, good, u64::MAX), None);
        assert_eq!(first_differing_slot(good, faulty, 0b1000), Some(3));
    }
}
