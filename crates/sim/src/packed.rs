//! Helpers for bit-parallel simulation words and lane-wide chunks.
//!
//! A packed word carries one bit per pattern: bit `i` of every signal's word
//! is that signal's value under pattern `i` of the current 64-pattern block.
//!
//! A [`PackedBlock<L>`] widens that layout to `L` words — one *chunk* of
//! `64 × L` patterns — laid out lane-major: lane `l` of a chunk holds
//! patterns `l * 64 ..= l * 64 + 63`, so pattern slot `s` lives at bit
//! `s % 64` of lane `s / 64`.  Every lane operation is a straight-line loop
//! over the `[u64; L]` array, which the autovectorizer turns into 256-bit
//! (`L = 4`) or 512-bit (`L = 8`) vector ops on hardware that has them; on
//! hardware that does not, the loop is still `L` independent scalar ops with
//! one shared loop/dispatch overhead, which is most of the win.

use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// Number of patterns carried by one packed word.
pub const PATTERNS_PER_WORD: usize = 64;

/// A mask with the low `count` bits set, selecting the valid patterns of a
/// partially filled block.
///
/// # Panics
///
/// Panics if `count` exceeds [`PATTERNS_PER_WORD`].
pub fn valid_mask(count: usize) -> u64 {
    assert!(
        count <= PATTERNS_PER_WORD,
        "a block holds at most {PATTERNS_PER_WORD} patterns"
    );
    if count == PATTERNS_PER_WORD {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Expands a single boolean into a full packed word (all patterns equal).
pub fn broadcast(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// Extracts the bit for pattern `slot` from a packed word.
///
/// # Panics
///
/// Panics if `slot` is 64 or more.
pub fn bit(word: u64, slot: usize) -> bool {
    assert!(slot < PATTERNS_PER_WORD, "pattern slot out of range");
    (word >> slot) & 1 == 1
}

/// The bits of pattern slot `slot` across a slice of packed words, one per
/// signal, in signal order.
///
/// This is the column view of the 64-pattern block layout: where
/// [`bit`] asks "what is signal `s` under pattern `i`", `gather_slot`
/// re-assembles the whole response of pattern `i` — the per-pattern word a
/// signature compactor folds one cycle at a time.
///
/// # Panics
///
/// Panics if `slot` is 64 or more.
pub fn gather_slot(words: &[u64], slot: usize) -> impl Iterator<Item = bool> + '_ {
    assert!(slot < PATTERNS_PER_WORD, "pattern slot out of range");
    words.iter().map(move |&word| (word >> slot) & 1 == 1)
}

/// The pattern slots (indices) at which two packed response words differ,
/// restricted to the `valid` mask, in ascending order.  This is how the
/// fault simulator turns a word-level mismatch into per-pattern detections.
///
/// Returns a lazy iterator — the detection hot path peels slots one at a
/// time without allocating a `Vec` per word.
pub fn differing_slots(good: u64, faulty: u64, valid: u64) -> DifferingSlots {
    DifferingSlots {
        diff: (good ^ faulty) & valid,
    }
}

/// Iterator over the set bit positions of a masked difference word, ascending.
///
/// Produced by [`differing_slots`]; also usable directly on any detection
/// word via [`DifferingSlots::of_word`].
#[derive(Debug, Clone)]
pub struct DifferingSlots {
    diff: u64,
}

impl DifferingSlots {
    /// Iterates the set bit positions of an arbitrary word.
    pub fn of_word(word: u64) -> DifferingSlots {
        DifferingSlots { diff: word }
    }
}

impl Iterator for DifferingSlots {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.diff == 0 {
            None
        } else {
            let slot = self.diff.trailing_zeros() as usize;
            self.diff &= self.diff - 1;
            Some(slot)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let exact = self.diff.count_ones() as usize;
        (exact, Some(exact))
    }
}

impl ExactSizeIterator for DifferingSlots {}

/// The earliest differing pattern slot, if any, restricted to `valid`.
pub fn first_differing_slot(good: u64, faulty: u64, valid: u64) -> Option<usize> {
    let diff = (good ^ faulty) & valid;
    if diff == 0 {
        None
    } else {
        Some(diff.trailing_zeros() as usize)
    }
}

/// One simulation chunk of `L` packed words: `64 × L` patterns carried per
/// signal, lane-major (pattern slot `s` is bit `s % 64` of lane `s / 64`).
///
/// `L = 1` is the classic single-word block; `L = 4` and `L = 8` are the
/// SIMD-wide variants the engines monomorphize over (`LSIQ_LANES`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct PackedBlock<const L: usize>(pub [u64; L]);

impl<const L: usize> PackedBlock<L> {
    /// Patterns carried by one chunk.
    pub const PATTERNS: usize = PATTERNS_PER_WORD * L;

    /// The all-zero chunk (every pattern 0).
    pub const ZERO: PackedBlock<L> = PackedBlock([0; L]);

    /// The all-one chunk (every pattern 1).
    pub const ONES: PackedBlock<L> = PackedBlock([u64::MAX; L]);

    /// Expands a single boolean into a full chunk (all patterns equal).
    #[inline]
    pub fn splat(value: bool) -> PackedBlock<L> {
        if value {
            PackedBlock::ONES
        } else {
            PackedBlock::ZERO
        }
    }

    /// A mask with the low `count` pattern slots set, selecting the valid
    /// patterns of a partially filled chunk.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds [`PackedBlock::PATTERNS`].
    pub fn valid_mask(count: usize) -> PackedBlock<L> {
        assert!(
            count <= Self::PATTERNS,
            "a chunk holds at most {} patterns",
            Self::PATTERNS
        );
        let mut mask = PackedBlock::ZERO;
        for (lane, word) in mask.0.iter_mut().enumerate() {
            let filled = count.saturating_sub(lane * PATTERNS_PER_WORD);
            *word = valid_mask(filled.min(PATTERNS_PER_WORD));
        }
        mask
    }

    /// Extracts the bit for pattern `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is [`PackedBlock::PATTERNS`] or more.
    #[inline]
    pub fn bit(self, slot: usize) -> bool {
        assert!(slot < Self::PATTERNS, "pattern slot out of range");
        (self.0[slot / PATTERNS_PER_WORD] >> (slot % PATTERNS_PER_WORD)) & 1 == 1
    }

    /// Returns `true` if no pattern bit is set.
    #[inline]
    pub fn is_zero(self) -> bool {
        let mut or = 0u64;
        for &word in &self.0 {
            or |= word;
        }
        or == 0
    }

    /// The lowest set pattern slot, if any — lanes are scanned in lane
    /// order, so this is the earliest pattern in application order.
    #[inline]
    pub fn first_set_slot(self) -> Option<usize> {
        for (lane, &word) in self.0.iter().enumerate() {
            if word != 0 {
                return Some(lane * PATTERNS_PER_WORD + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the set pattern slots in ascending order (the chunk-wide
    /// analogue of [`differing_slots`] applied to a precomputed difference).
    pub fn set_slots(self) -> SetSlots<L> {
        SetSlots {
            words: self.0,
            lane: 0,
        }
    }
}

impl<const L: usize> Default for PackedBlock<L> {
    fn default() -> PackedBlock<L> {
        PackedBlock::ZERO
    }
}

impl<const L: usize> Not for PackedBlock<L> {
    type Output = PackedBlock<L>;

    #[inline]
    fn not(self) -> PackedBlock<L> {
        let mut out = self;
        for word in &mut out.0 {
            *word = !*word;
        }
        out
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $assign_op:tt) => {
        impl<const L: usize> $trait for PackedBlock<L> {
            type Output = PackedBlock<L>;

            #[inline]
            fn $method(self, rhs: PackedBlock<L>) -> PackedBlock<L> {
                let mut out = self;
                for (word, &other) in out.0.iter_mut().zip(&rhs.0) {
                    *word $assign_op other;
                }
                out
            }
        }

        impl<const L: usize> $assign_trait for PackedBlock<L> {
            #[inline]
            fn $assign_method(&mut self, rhs: PackedBlock<L>) {
                for (word, &other) in self.0.iter_mut().zip(&rhs.0) {
                    *word $assign_op other;
                }
            }
        }
    };
}

lane_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
lane_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
lane_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

/// Iterator over the set pattern slots of a chunk, ascending.
#[derive(Debug, Clone)]
pub struct SetSlots<const L: usize> {
    words: [u64; L],
    lane: usize,
}

impl<const L: usize> Iterator for SetSlots<L> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.lane < L {
            let word = self.words[self.lane];
            if word != 0 {
                let slot = self.lane * PATTERNS_PER_WORD + word.trailing_zeros() as usize;
                self.words[self.lane] &= word - 1;
                return Some(slot);
            }
            self.lane += 1;
        }
        None
    }
}

/// The bits of pattern slot `slot` across a slice of chunks, one per signal,
/// in signal order — the chunk-wide analogue of [`gather_slot`].
///
/// # Panics
///
/// Panics if `slot` is [`PackedBlock::PATTERNS`] or more.
pub fn gather_chunk_slot<const L: usize>(
    chunks: &[PackedBlock<L>],
    slot: usize,
) -> impl Iterator<Item = bool> + '_ {
    assert!(
        slot < PackedBlock::<L>::PATTERNS,
        "pattern slot out of range"
    );
    let lane = slot / PATTERNS_PER_WORD;
    let bit = slot % PATTERNS_PER_WORD;
    chunks
        .iter()
        .map(move |chunk| (chunk.0[lane] >> bit) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mask_edges() {
        assert_eq!(valid_mask(0), 0);
        assert_eq!(valid_mask(1), 1);
        assert_eq!(valid_mask(3), 0b111);
        assert_eq!(valid_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_mask_panics() {
        let _ = valid_mask(65);
    }

    #[test]
    fn broadcast_and_bit() {
        assert_eq!(broadcast(true), u64::MAX);
        assert_eq!(broadcast(false), 0);
        assert!(bit(0b100, 2));
        assert!(!bit(0b100, 1));
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn bit_slot_out_of_range_panics() {
        let _ = bit(0, 64);
    }

    #[test]
    fn gather_slot_transposes_the_block() {
        let words = [0b101u64, 0b010, 0b111];
        let column: Vec<bool> = gather_slot(&words, 0).collect();
        assert_eq!(column, [true, false, true]);
        let column: Vec<bool> = gather_slot(&words, 1).collect();
        assert_eq!(column, [false, true, true]);
        assert!(gather_slot(&[], 5).next().is_none());
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn gather_slot_out_of_range_panics() {
        let _ = gather_slot(&[0], 64).count();
    }

    #[test]
    fn differing_slots_lists_all_mismatches() {
        let good = 0b1010_1010;
        let faulty = 0b1010_0110;
        let slots: Vec<usize> = differing_slots(good, faulty, u64::MAX).collect();
        assert_eq!(slots, vec![2, 3]);
        // Restricting the valid mask hides mismatches outside it.
        let masked: Vec<usize> = differing_slots(good, faulty, 0b0111).collect();
        assert_eq!(masked, vec![2]);
        assert_eq!(differing_slots(good, good, u64::MAX).count(), 0);
    }

    /// The pre-iterator reference implementation, kept verbatim so the lazy
    /// iterator can be pinned against it.
    fn differing_slots_reference(good: u64, faulty: u64, valid: u64) -> Vec<usize> {
        let mut diff = (good ^ faulty) & valid;
        let mut slots = Vec::new();
        while diff != 0 {
            let slot = diff.trailing_zeros() as usize;
            slots.push(slot);
            diff &= diff - 1;
        }
        slots
    }

    #[test]
    fn differing_slots_iterator_agrees_with_the_old_list_on_edge_masks() {
        let words = [
            0u64,
            1,
            u64::MAX,
            0x8000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA,
            0x5555_5555_5555_5555,
            0x0123_4567_89AB_CDEF,
        ];
        let masks = [
            0u64,
            1,
            valid_mask(1),
            valid_mask(17),
            valid_mask(63),
            valid_mask(64),
            0x8000_0000_0000_0001,
        ];
        for &good in &words {
            for &faulty in &words {
                for &valid in &masks {
                    let lazy: Vec<usize> = differing_slots(good, faulty, valid).collect();
                    let reference = differing_slots_reference(good, faulty, valid);
                    assert_eq!(
                        lazy, reference,
                        "good={good:#x} faulty={faulty:#x} valid={valid:#x}"
                    );
                    // The iterator is exact-size: len() must match up front.
                    assert_eq!(differing_slots(good, faulty, valid).len(), reference.len());
                }
            }
        }
    }

    #[test]
    fn first_differing_slot_matches_list_head() {
        let good = 0b1000;
        let faulty = 0b0010;
        assert_eq!(first_differing_slot(good, faulty, u64::MAX), Some(1));
        assert_eq!(first_differing_slot(good, good, u64::MAX), None);
        assert_eq!(first_differing_slot(good, faulty, 0b1000), Some(3));
    }

    #[test]
    fn chunk_valid_mask_covers_partial_lanes() {
        let mask = PackedBlock::<4>::valid_mask(130);
        assert_eq!(mask.0, [u64::MAX, u64::MAX, 0b11, 0]);
        assert_eq!(PackedBlock::<4>::valid_mask(0), PackedBlock::ZERO);
        assert_eq!(PackedBlock::<4>::valid_mask(256), PackedBlock::ONES);
        assert_eq!(PackedBlock::<1>::valid_mask(5).0, [valid_mask(5)]);
    }

    #[test]
    #[should_panic(expected = "at most 256")]
    fn oversized_chunk_mask_panics() {
        let _ = PackedBlock::<4>::valid_mask(257);
    }

    #[test]
    fn chunk_bit_and_splat() {
        let mut chunk = PackedBlock::<2>::ZERO;
        chunk.0[1] = 0b100;
        assert!(chunk.bit(66));
        assert!(!chunk.bit(2));
        assert_eq!(PackedBlock::<2>::splat(true), PackedBlock::ONES);
        assert_eq!(PackedBlock::<2>::splat(false), PackedBlock::ZERO);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn chunk_bit_out_of_range_panics() {
        let _ = PackedBlock::<2>::ZERO.bit(128);
    }

    #[test]
    fn chunk_first_set_slot_scans_lanes_in_order() {
        let mut chunk = PackedBlock::<4>::ZERO;
        assert_eq!(chunk.first_set_slot(), None);
        assert!(chunk.is_zero());
        chunk.0[2] = 0b1000;
        chunk.0[3] = 1;
        assert_eq!(chunk.first_set_slot(), Some(2 * 64 + 3));
        assert!(!chunk.is_zero());
        let slots: Vec<usize> = chunk.set_slots().collect();
        assert_eq!(slots, vec![131, 192]);
    }

    #[test]
    fn chunk_bit_ops_work_per_lane() {
        let a = PackedBlock::<2>([0b1100, 0b1010]);
        let b = PackedBlock::<2>([0b1010, 0b0110]);
        assert_eq!((a & b).0, [0b1000, 0b0010]);
        assert_eq!((a | b).0, [0b1110, 0b1110]);
        assert_eq!((a ^ b).0, [0b0110, 0b1100]);
        assert_eq!((!PackedBlock::<2>::ZERO), PackedBlock::ONES);
        let mut acc = a;
        acc &= b;
        assert_eq!(acc, a & b);
        acc = a;
        acc |= b;
        assert_eq!(acc, a | b);
        acc = a;
        acc ^= b;
        assert_eq!(acc, a ^ b);
    }

    #[test]
    fn gather_chunk_slot_transposes_across_lanes() {
        let chunks = [PackedBlock::<2>([0b1, 0b10]), PackedBlock::<2>([0b0, 0b11])];
        let slot0: Vec<bool> = gather_chunk_slot(&chunks, 0).collect();
        assert_eq!(slot0, [true, false]);
        let slot65: Vec<bool> = gather_chunk_slot(&chunks, 65).collect();
        assert_eq!(slot65, [true, true]);
        let slot64: Vec<bool> = gather_chunk_slot(&chunks, 64).collect();
        assert_eq!(slot64, [false, true]);
    }
}
