//! Compiled, levelised full-circuit simulation.

use crate::eval::{eval_bool, eval_chunk, eval_packed, eval_value3};
use crate::logic::Value3;
use crate::packed::PackedBlock;
use crate::pattern::Pattern;
use lsiq_netlist::circuit::{Circuit, GateId};
use lsiq_netlist::levelize::{levelize, Levelization};
use lsiq_netlist::GateKind;

/// A circuit prepared for repeated simulation: the topological order is
/// computed once and reused for every pattern.
///
/// Three evaluation modes are offered:
///
/// * scalar two-valued ([`node_values`](CompiledCircuit::node_values),
///   [`outputs`](CompiledCircuit::outputs)),
/// * 64-pattern bit-parallel ([`node_words`](CompiledCircuit::node_words),
///   [`output_words`](CompiledCircuit::output_words)), and
/// * three-valued for partially assigned inputs
///   ([`node_values3`](CompiledCircuit::node_values3)).
#[derive(Debug, Clone)]
pub struct CompiledCircuit<'c> {
    circuit: &'c Circuit,
    levelization: Levelization,
}

impl<'c> CompiledCircuit<'c> {
    /// Prepares `circuit` for simulation.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a combinational cycle, which validated
    /// circuits cannot.
    pub fn new(circuit: &'c Circuit) -> Self {
        let levelization = levelize(circuit).expect("validated circuits are acyclic");
        CompiledCircuit {
            circuit,
            levelization,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Gates in the topological evaluation order.
    pub fn order(&self) -> &[GateId] {
        self.levelization.order()
    }

    /// The levelisation computed at construction.
    pub fn levelization(&self) -> &Levelization {
        &self.levelization
    }

    /// Simulates one pattern and returns the value of every gate, indexed by
    /// gate id.  Pattern bits are matched to primary inputs positionally;
    /// missing bits default to 0 and extra bits are ignored.
    pub fn node_values(&self, pattern: &Pattern) -> Vec<bool> {
        let mut values = Vec::new();
        self.node_values_into(pattern, &mut values);
        values
    }

    /// Like [`node_values`](CompiledCircuit::node_values), but reuses a
    /// caller-owned buffer so repeated single-pattern sweeps (the deductive
    /// fault simulator evaluates one good machine per pattern) allocate
    /// nothing after the first call.
    pub fn node_values_into(&self, pattern: &Pattern, values: &mut Vec<bool>) {
        values.clear();
        values.resize(self.circuit.gate_count(), false);
        for (position, &input) in self.circuit.primary_inputs().iter().enumerate() {
            values[input.index()] = position < pattern.width() && pattern.bit(position);
        }
        let mut fanin_values = Vec::new();
        for &id in self.levelization.order() {
            let gate = self.circuit.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            fanin_values.clear();
            fanin_values.extend(gate.fanin().iter().map(|&d| values[d.index()]));
            values[id.index()] = eval_bool(gate.kind(), &fanin_values);
        }
    }

    /// Simulates one pattern and returns only the primary-output response, in
    /// output declaration order.
    pub fn outputs(&self, pattern: &Pattern) -> Vec<bool> {
        let values = self.node_values(pattern);
        self.circuit
            .primary_outputs()
            .iter()
            .map(|&out| values[out.index()])
            .collect()
    }

    /// Simulates a block of up to 64 patterns bit-parallel.
    ///
    /// `input_words` holds one word per primary input (positional); missing
    /// words default to all-zero.  Returns one word per gate, indexed by gate
    /// id.
    pub fn node_words(&self, input_words: &[u64]) -> Vec<u64> {
        let mut words = Vec::new();
        self.node_words_into(input_words, &mut words);
        words
    }

    /// Like [`node_words`](CompiledCircuit::node_words), but reuses a
    /// caller-owned buffer so per-block sweeps allocate nothing after the
    /// first call.
    pub fn node_words_into(&self, input_words: &[u64], words: &mut Vec<u64>) {
        words.clear();
        words.resize(self.circuit.gate_count(), 0);
        for (position, &input) in self.circuit.primary_inputs().iter().enumerate() {
            words[input.index()] = input_words.get(position).copied().unwrap_or(0);
        }
        let mut fanin_words = Vec::new();
        for &id in self.levelization.order() {
            let gate = self.circuit.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            fanin_words.clear();
            fanin_words.extend(gate.fanin().iter().map(|&d| words[d.index()]));
            words[id.index()] = eval_packed(gate.kind(), &fanin_words);
        }
    }

    /// Simulates a block of up to 64 patterns and returns only the primary
    /// output words.
    pub fn output_words(&self, input_words: &[u64]) -> Vec<u64> {
        let words = self.node_words(input_words);
        self.circuit
            .primary_outputs()
            .iter()
            .map(|&out| words[out.index()])
            .collect()
    }

    /// Simulates one lane-wide chunk of up to `64 × L` patterns bit-parallel.
    ///
    /// `input_chunks` holds one [`PackedBlock`] per primary input
    /// (positional); missing chunks default to all-zero.  Returns one chunk
    /// per gate, indexed by gate id.
    pub fn node_chunks<const L: usize>(
        &self,
        input_chunks: &[PackedBlock<L>],
    ) -> Vec<PackedBlock<L>> {
        let mut chunks = Vec::new();
        self.node_chunks_into(input_chunks, &mut chunks);
        chunks
    }

    /// Like [`node_chunks`](CompiledCircuit::node_chunks), but reuses a
    /// caller-owned buffer so per-chunk sweeps allocate nothing after the
    /// first call.
    pub fn node_chunks_into<const L: usize>(
        &self,
        input_chunks: &[PackedBlock<L>],
        chunks: &mut Vec<PackedBlock<L>>,
    ) {
        chunks.clear();
        chunks.resize(self.circuit.gate_count(), PackedBlock::ZERO);
        for (position, &input) in self.circuit.primary_inputs().iter().enumerate() {
            chunks[input.index()] = input_chunks
                .get(position)
                .copied()
                .unwrap_or(PackedBlock::ZERO);
        }
        let mut fanin_chunks = Vec::new();
        for &id in self.levelization.order() {
            let gate = self.circuit.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            fanin_chunks.clear();
            fanin_chunks.extend(gate.fanin().iter().map(|&d| chunks[d.index()]));
            chunks[id.index()] = eval_chunk(gate.kind(), &fanin_chunks);
        }
    }

    /// Simulates one lane-wide chunk and returns only the primary output
    /// chunks.
    pub fn output_chunks<const L: usize>(
        &self,
        input_chunks: &[PackedBlock<L>],
    ) -> Vec<PackedBlock<L>> {
        let chunks = self.node_chunks(input_chunks);
        self.circuit
            .primary_outputs()
            .iter()
            .map(|&out| chunks[out.index()])
            .collect()
    }

    /// Simulates a (possibly partial) three-valued input assignment.
    ///
    /// `assignment` holds one value per primary input (positional); missing
    /// entries are treated as unknown.
    pub fn node_values3(&self, assignment: &[Value3]) -> Vec<Value3> {
        let mut values = vec![Value3::Unknown; self.circuit.gate_count()];
        for (position, &input) in self.circuit.primary_inputs().iter().enumerate() {
            values[input.index()] = assignment.get(position).copied().unwrap_or(Value3::Unknown);
        }
        let mut fanin_values = Vec::new();
        for &id in self.levelization.order() {
            let gate = self.circuit.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            fanin_values.clear();
            fanin_values.extend(gate.fanin().iter().map(|&d| values[d.index()]));
            values[id.index()] = eval_value3(gate.kind(), &fanin_values);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsiq_netlist::library;

    /// Reference model of c17: straight translation of its six NAND gates.
    fn c17_reference(inputs: [bool; 5]) -> [bool; 2] {
        let [g1, g2, g3, g6, g7] = inputs;
        let g10 = !(g1 && g3);
        let g11 = !(g3 && g6);
        let g16 = !(g2 && g11);
        let g19 = !(g11 && g7);
        let g22 = !(g10 && g16);
        let g23 = !(g16 && g19);
        [g22, g23]
    }

    #[test]
    fn c17_matches_reference_exhaustively() {
        let circuit = library::c17();
        let sim = CompiledCircuit::new(&circuit);
        for value in 0u64..32 {
            let pattern = Pattern::from_integer(value, 5);
            let expected = c17_reference([
                pattern.bit(0),
                pattern.bit(1),
                pattern.bit(2),
                pattern.bit(3),
                pattern.bit(4),
            ]);
            assert_eq!(sim.outputs(&pattern), expected.to_vec(), "pattern {value}");
        }
    }

    #[test]
    fn adder_computes_sums() {
        let circuit = library::adder4();
        let sim = CompiledCircuit::new(&circuit);
        for a in 0u64..16 {
            for b in [0u64, 3, 9, 15] {
                for cin in [0u64, 1] {
                    // Inputs are declared a0..a3, b0..b3, cin.
                    let value = a | (b << 4) | (cin << 8);
                    let pattern = Pattern::from_integer(value, 9);
                    let outputs = sim.outputs(&pattern);
                    let sum: u64 = outputs[..4]
                        .iter()
                        .enumerate()
                        .map(|(bit, &v)| (v as u64) << bit)
                        .sum::<u64>()
                        + ((outputs[4] as u64) << 4);
                    assert_eq!(sum, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn packed_simulation_matches_scalar() {
        let circuit = library::c17();
        let sim = CompiledCircuit::new(&circuit);
        // Pack the 32 exhaustive patterns into one block.
        let mut input_words = vec![0u64; 5];
        for value in 0u64..32 {
            for (input, word) in input_words.iter_mut().enumerate() {
                if (value >> input) & 1 == 1 {
                    *word |= 1u64 << value;
                }
            }
        }
        let output_words = sim.output_words(&input_words);
        for value in 0u64..32 {
            let pattern = Pattern::from_integer(value, 5);
            let scalar = sim.outputs(&pattern);
            for (out, &word) in output_words.iter().enumerate() {
                assert_eq!(
                    (word >> value) & 1 == 1,
                    scalar[out],
                    "pattern {value} output {out}"
                );
            }
        }
    }

    #[test]
    fn chunk_simulation_matches_word_simulation_per_lane() {
        use crate::pattern::PatternSet;
        let circuit = library::adder4();
        let sim = CompiledCircuit::new(&circuit);
        let width = circuit.primary_inputs().len();
        let patterns: PatternSet = (0..200u64)
            .map(|i| Pattern::from_integer(i.wrapping_mul(0x2545_F491), width))
            .collect();
        for chunk in 0..patterns.chunk_count(4) {
            let (input_chunks, _) = patterns.pack_chunk::<4>(width, chunk);
            let node_chunks = sim.node_chunks(&input_chunks);
            let output_chunks = sim.output_chunks(&input_chunks);
            for lane in 0..4 {
                let (input_words, _) = patterns.pack_block(width, chunk * 4 + lane);
                let node_words = sim.node_words(&input_words);
                for (gate, chunk_value) in node_chunks.iter().enumerate() {
                    assert_eq!(
                        chunk_value.0[lane], node_words[gate],
                        "chunk {chunk} lane {lane} gate {gate}"
                    );
                }
                let output_words = sim.output_words(&input_words);
                for (out, chunk_value) in output_chunks.iter().enumerate() {
                    assert_eq!(chunk_value.0[lane], output_words[out]);
                }
            }
        }
    }

    #[test]
    fn three_valued_simulation_agrees_on_fully_assigned_patterns() {
        let circuit = library::full_adder();
        let sim = CompiledCircuit::new(&circuit);
        for value in 0u64..8 {
            let pattern = Pattern::from_integer(value, 3);
            let assignment: Vec<Value3> = pattern
                .bits()
                .iter()
                .map(|&b| Value3::from_bool(b))
                .collect();
            let scalar = sim.node_values(&pattern);
            let ternary = sim.node_values3(&assignment);
            for (id, (&b, &v)) in scalar.iter().zip(ternary.iter()).enumerate() {
                assert_eq!(Value3::from_bool(b), v, "gate {id} pattern {value}");
            }
        }
    }

    #[test]
    fn unassigned_inputs_produce_unknowns_where_needed() {
        let circuit = library::half_adder();
        let sim = CompiledCircuit::new(&circuit);
        // a = 0, b unknown: carry = 0 (controlled), sum unknown.
        let values = sim.node_values3(&[Value3::Zero]);
        let sum = circuit.find_signal("sum").expect("exists");
        let carry = circuit.find_signal("carry").expect("exists");
        assert_eq!(values[sum.index()], Value3::Unknown);
        assert_eq!(values[carry.index()], Value3::Zero);
    }

    #[test]
    fn short_patterns_default_missing_inputs_to_zero() {
        let circuit = library::c17();
        let sim = CompiledCircuit::new(&circuit);
        let short = sim.outputs(&Pattern::from_bits([true, true]));
        let padded = sim.outputs(&Pattern::from_bits([true, true, false, false, false]));
        assert_eq!(short, padded);
    }

    #[test]
    fn order_and_accessors() {
        let circuit = library::c17();
        let sim = CompiledCircuit::new(&circuit);
        assert_eq!(sim.order().len(), circuit.gate_count());
        assert_eq!(sim.circuit().name(), "c17");
        assert_eq!(sim.levelization().depth(), 3);
    }
}
