//! Input pattern containers.

use std::fmt;

/// One test pattern: a logic value for every primary input, in the order the
/// circuit declares its primary inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    bits: Vec<bool>,
}

impl Pattern {
    /// Creates a pattern from an iterator of bits (primary-input order).
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        Pattern {
            bits: bits.into_iter().collect(),
        }
    }

    /// Creates the all-zero pattern of the given width.
    pub fn zeros(width: usize) -> Self {
        Pattern {
            bits: vec![false; width],
        }
    }

    /// Creates a pattern from the low `width` bits of `value`
    /// (bit 0 drives the first primary input).
    pub fn from_integer(value: u64, width: usize) -> Self {
        Pattern {
            bits: (0..width).map(|bit| (value >> bit) & 1 == 1).collect(),
        }
    }

    /// The pattern width (number of primary inputs covered).
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the pattern has no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit for primary input `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn bit(&self, index: usize) -> bool {
        self.bits[index]
    }

    /// All bits in primary-input order.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Sets the bit for primary input `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        self.bits[index] = value;
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &bit in &self.bits {
            write!(f, "{}", u8::from(bit))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for Pattern {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Pattern::from_bits(iter)
    }
}

/// An ordered collection of patterns, applied to the chip in order exactly as
/// the paper's tester applies its preliminary test sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
}

impl PatternSet {
    /// Creates an empty pattern set.
    pub fn new() -> Self {
        PatternSet::default()
    }

    /// Creates a pattern set from a vector of patterns.
    pub fn from_patterns(patterns: Vec<Pattern>) -> Self {
        PatternSet { patterns }
    }

    /// Appends a pattern at the end of the ordered set.
    pub fn push(&mut self, pattern: Pattern) {
        self.patterns.push(pattern);
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The pattern at position `index`.
    pub fn get(&self, index: usize) -> Option<&Pattern> {
        self.patterns.get(index)
    }

    /// Iterates over patterns in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, Pattern> {
        self.patterns.iter()
    }

    /// All patterns as a slice.
    pub fn as_slice(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Packs patterns `block * 64 ..` into one `u64` word per primary input:
    /// bit `i` of word `j` is the value input `j` takes in pattern
    /// `block * 64 + i`.  The second element of the returned pair is the
    /// number of valid patterns in the block (1..=64), or 0 when the block
    /// index is past the end.
    pub fn pack_block(&self, width: usize, block: usize) -> (Vec<u64>, usize) {
        let start = block * 64;
        if start >= self.patterns.len() {
            return (vec![0; width], 0);
        }
        let end = (start + 64).min(self.patterns.len());
        let mut words = vec![0u64; width];
        for (slot, pattern) in self.patterns[start..end].iter().enumerate() {
            for (input, word) in words.iter_mut().enumerate() {
                if input < pattern.width() && pattern.bit(input) {
                    *word |= 1u64 << slot;
                }
            }
        }
        (words, end - start)
    }

    /// Number of 64-pattern blocks needed to cover the whole set.
    pub fn block_count(&self) -> usize {
        self.patterns.len().div_ceil(64)
    }

    /// Packs patterns `chunk * 64 * L ..` into one lane-wide
    /// [`PackedBlock`](crate::packed::PackedBlock) per primary input: pattern
    /// slot `i` of the chunk (bit `i % 64` of lane `i / 64`) is the value
    /// input `j` takes in pattern `chunk * 64 * L + i`.  The second element
    /// of the returned pair is the number of valid patterns in the chunk
    /// (1..=`64 * L`), or 0 when the chunk index is past the end.
    pub fn pack_chunk<const L: usize>(
        &self,
        width: usize,
        chunk: usize,
    ) -> (Vec<crate::packed::PackedBlock<L>>, usize) {
        use crate::packed::PackedBlock;
        let start = chunk * PackedBlock::<L>::PATTERNS;
        if start >= self.patterns.len() {
            return (vec![PackedBlock::ZERO; width], 0);
        }
        let end = (start + PackedBlock::<L>::PATTERNS).min(self.patterns.len());
        let mut words = vec![PackedBlock::<L>::ZERO; width];
        for (slot, pattern) in self.patterns[start..end].iter().enumerate() {
            let lane = slot / 64;
            let bit = slot % 64;
            for (input, word) in words.iter_mut().enumerate() {
                if input < pattern.width() && pattern.bit(input) {
                    word.0[lane] |= 1u64 << bit;
                }
            }
        }
        (words, end - start)
    }

    /// Number of `64 * lanes`-pattern chunks needed to cover the whole set.
    pub fn chunk_count(&self, lanes: usize) -> usize {
        self.patterns.len().div_ceil(64 * lanes)
    }
}

impl FromIterator<Pattern> for PatternSet {
    fn from_iter<I: IntoIterator<Item = Pattern>>(iter: I) -> Self {
        PatternSet {
            patterns: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PatternSet {
    type Item = &'a Pattern;
    type IntoIter = std::slice::Iter<'a, Pattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_constructors() {
        let p = Pattern::from_integer(0b1011, 5);
        assert_eq!(p.width(), 5);
        assert!(p.bit(0) && p.bit(1) && !p.bit(2) && p.bit(3) && !p.bit(4));
        assert_eq!(Pattern::zeros(3).bits(), &[false, false, false]);
        let collected: Pattern = [true, false].into_iter().collect();
        assert_eq!(collected.width(), 2);
        assert!(!Pattern::from_bits([true]).is_empty());
    }

    #[test]
    fn pattern_mutation_and_display() {
        let mut p = Pattern::zeros(4);
        p.set_bit(2, true);
        assert_eq!(p.to_string(), "0010");
    }

    #[test]
    fn pattern_set_basics() {
        let mut set = PatternSet::new();
        assert!(set.is_empty());
        set.push(Pattern::from_integer(1, 3));
        set.push(Pattern::from_integer(2, 3));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(0).expect("exists").to_string(), "100");
        assert!(set.get(5).is_none());
        assert_eq!(set.iter().count(), 2);
        let from_vec = PatternSet::from_patterns(vec![Pattern::zeros(3)]);
        assert_eq!(from_vec.len(), 1);
    }

    #[test]
    fn pack_block_transposes_patterns() {
        // Three patterns over two inputs.
        let set: PatternSet = [
            Pattern::from_bits([true, false]),
            Pattern::from_bits([false, true]),
            Pattern::from_bits([true, true]),
        ]
        .into_iter()
        .collect();
        let (words, count) = set.pack_block(2, 0);
        assert_eq!(count, 3);
        // Input 0 takes values 1,0,1 across patterns 0..2 -> bits 0b101.
        assert_eq!(words[0] & 0b111, 0b101);
        // Input 1 takes values 0,1,1 -> bits 0b110.
        assert_eq!(words[1] & 0b111, 0b110);
    }

    #[test]
    fn pack_block_past_end_is_empty() {
        let set: PatternSet = (0..70).map(|i| Pattern::from_integer(i, 4)).collect();
        assert_eq!(set.block_count(), 2);
        let (_, count0) = set.pack_block(4, 0);
        let (_, count1) = set.pack_block(4, 1);
        let (_, count2) = set.pack_block(4, 2);
        assert_eq!(count0, 64);
        assert_eq!(count1, 6);
        assert_eq!(count2, 0);
    }

    #[test]
    fn pack_chunk_agrees_with_pack_block_lane_by_lane() {
        let set: PatternSet = (0..300u64)
            .map(|i| Pattern::from_integer(i.wrapping_mul(0x9E37), 7))
            .collect();
        assert_eq!(set.chunk_count(4), 2);
        assert_eq!(set.chunk_count(1), set.block_count());
        for chunk in 0..3 {
            let (words, count) = set.pack_chunk::<4>(7, chunk);
            let mut expected_count = 0;
            for lane in 0..4 {
                let (block_words, block_count) = set.pack_block(7, chunk * 4 + lane);
                expected_count += block_count;
                for (input, word) in words.iter().enumerate() {
                    assert_eq!(
                        word.0[lane], block_words[input],
                        "chunk {chunk} lane {lane}"
                    );
                }
            }
            assert_eq!(count, expected_count, "chunk {chunk}");
        }
        // The tail chunk is partial; past the end: zero words, zero count.
        let (_, tail_count) = set.pack_chunk::<4>(7, 1);
        assert_eq!(tail_count, 300 - 256);
        let (past, past_count) = set.pack_chunk::<4>(7, 5);
        assert_eq!(past_count, 0);
        assert!(past.iter().all(|w| w.is_zero()));
    }

    #[test]
    fn pack_block_handles_narrow_patterns() {
        // A pattern narrower than the requested width leaves missing inputs 0.
        let set: PatternSet = [Pattern::from_bits([true])].into_iter().collect();
        let (words, count) = set.pack_block(3, 0);
        assert_eq!(count, 1);
        assert_eq!(words[0] & 1, 1);
        assert_eq!(words[1], 0);
        assert_eq!(words[2], 0);
    }
}
