//! Event-driven incremental simulation.
//!
//! Where the compiled simulator re-evaluates every gate for every pattern,
//! the event-driven simulator only re-evaluates gates whose inputs actually
//! changed.  It is used by the serial fault simulator, where consecutive
//! patterns (and good/faulty circuit pairs) differ in only a few signals, and
//! it doubles as an independent implementation to cross-check the compiled
//! simulator.

use crate::eval::eval_bool;
use crate::pattern::Pattern;
use lsiq_netlist::circuit::{Circuit, GateId};
use lsiq_netlist::levelize::{levelize, Levelization};
use lsiq_netlist::GateKind;
use std::collections::BTreeSet;

/// An event-driven two-valued simulator holding the current state of every
/// signal.
#[derive(Debug, Clone)]
pub struct EventSim<'c> {
    circuit: &'c Circuit,
    levelization: Levelization,
    values: Vec<bool>,
    /// Gates awaiting re-evaluation, ordered by (level, id) so each gate is
    /// evaluated at most once per stabilisation pass.
    pending: BTreeSet<(usize, GateId)>,
    evaluations: u64,
}

impl<'c> EventSim<'c> {
    /// Creates a simulator with every signal initialised by a full evaluation
    /// of the all-zero input pattern.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains a combinational cycle, which validated
    /// circuits cannot.
    pub fn new(circuit: &'c Circuit) -> Self {
        let levelization = levelize(circuit).expect("validated circuits are acyclic");
        let mut sim = EventSim {
            circuit,
            levelization,
            values: vec![false; circuit.gate_count()],
            pending: BTreeSet::new(),
            evaluations: 0,
        };
        sim.full_evaluate();
        sim
    }

    /// Re-evaluates every gate from scratch (used at construction and after
    /// bulk input changes).
    fn full_evaluate(&mut self) {
        let order: Vec<GateId> = self.levelization.order().to_vec();
        for id in order {
            let gate = self.circuit.gate(id);
            if gate.kind() == GateKind::Input {
                continue;
            }
            let fanin: Vec<bool> = gate
                .fanin()
                .iter()
                .map(|&d| self.values[d.index()])
                .collect();
            self.values[id.index()] = eval_bool(gate.kind(), &fanin);
            self.evaluations += 1;
        }
        self.pending.clear();
    }

    /// The current value of signal `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the circuit.
    pub fn value(&self, id: GateId) -> bool {
        self.values[id.index()]
    }

    /// The current primary-output response in declaration order.
    pub fn outputs(&self) -> Vec<bool> {
        self.circuit
            .primary_outputs()
            .iter()
            .map(|&out| self.values[out.index()])
            .collect()
    }

    /// Total number of gate evaluations performed so far (a measure of
    /// simulation work).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Sets primary input `position` (in declaration order) to `value` and
    /// schedules affected gates.  Call [`stabilize`](EventSim::stabilize) to
    /// propagate.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not a valid primary-input position.
    pub fn set_input(&mut self, position: usize, value: bool) {
        let input = self.circuit.primary_inputs()[position];
        if self.values[input.index()] != value {
            self.values[input.index()] = value;
            self.schedule_fanout(input);
        }
    }

    /// Applies a whole pattern (positionally, like the compiled simulator)
    /// and schedules affected gates.
    pub fn apply_pattern(&mut self, pattern: &Pattern) {
        for position in 0..self.circuit.primary_inputs().len() {
            let value = position < pattern.width() && pattern.bit(position);
            self.set_input(position, value);
        }
    }

    fn schedule_fanout(&mut self, id: GateId) {
        for &load in self.circuit.fanout(id) {
            self.pending.insert((self.levelization.level(load), load));
        }
    }

    /// Propagates all scheduled events until the circuit is stable and
    /// returns the number of gate evaluations performed.
    pub fn stabilize(&mut self) -> u64 {
        let before = self.evaluations;
        while let Some(&(level, id)) = self.pending.iter().next() {
            self.pending.remove(&(level, id));
            let gate = self.circuit.gate(id);
            let fanin: Vec<bool> = gate
                .fanin()
                .iter()
                .map(|&d| self.values[d.index()])
                .collect();
            let new_value = eval_bool(gate.kind(), &fanin);
            self.evaluations += 1;
            if new_value != self.values[id.index()] {
                self.values[id.index()] = new_value;
                self.schedule_fanout(id);
            }
        }
        self.evaluations - before
    }

    /// Convenience: applies a pattern, stabilises and returns the outputs.
    pub fn simulate(&mut self, pattern: &Pattern) -> Vec<bool> {
        self.apply_pattern(pattern);
        self.stabilize();
        self.outputs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelized::CompiledCircuit;
    use lsiq_netlist::library;

    #[test]
    fn event_sim_matches_compiled_sim_on_c17() {
        let circuit = library::c17();
        let compiled = CompiledCircuit::new(&circuit);
        let mut event = EventSim::new(&circuit);
        for value in 0u64..32 {
            let pattern = Pattern::from_integer(value, 5);
            assert_eq!(
                event.simulate(&pattern),
                compiled.outputs(&pattern),
                "pattern {value}"
            );
        }
    }

    #[test]
    fn event_sim_matches_compiled_sim_on_alu() {
        let circuit = library::alu4();
        let compiled = CompiledCircuit::new(&circuit);
        let mut event = EventSim::new(&circuit);
        // Walk a deterministic but varied sequence of patterns.
        for step in 0u64..200 {
            let value = step.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20;
            let pattern = Pattern::from_integer(value, 10);
            assert_eq!(event.simulate(&pattern), compiled.outputs(&pattern));
        }
    }

    #[test]
    fn unchanged_inputs_cause_no_work() {
        let circuit = library::c17();
        let mut event = EventSim::new(&circuit);
        let pattern = Pattern::from_integer(0b10101, 5);
        event.simulate(&pattern);
        let before = event.evaluations();
        // Applying the identical pattern again schedules nothing.
        event.simulate(&pattern);
        assert_eq!(event.evaluations(), before);
    }

    #[test]
    fn single_input_change_does_less_work_than_full_pass() {
        let circuit = library::alu4();
        let mut event = EventSim::new(&circuit);
        event.simulate(&Pattern::zeros(10));
        let logic_gates = circuit.gate_count() - circuit.primary_inputs().len();
        // Flip one operand bit; only its cone should be re-evaluated.
        event.set_input(0, true);
        let work = event.stabilize();
        assert!(work > 0);
        assert!(
            (work as usize) < logic_gates,
            "event-driven work {work} should beat full pass of {logic_gates}"
        );
    }

    #[test]
    fn values_are_queryable_per_signal() {
        let circuit = library::half_adder();
        let mut event = EventSim::new(&circuit);
        event.simulate(&Pattern::from_bits([true, true]));
        let sum = circuit.find_signal("sum").expect("exists");
        let carry = circuit.find_signal("carry").expect("exists");
        assert!(!event.value(sum));
        assert!(event.value(carry));
    }
}
