//! Seeded property tests for the packed-word and lane-chunk layer.
//!
//! In the workspace's in-tree proptest-replacement style: deterministic
//! seeded loops draw random words, chunks, pattern counts and gate
//! evaluations, and pin every lane width (`u64 × 1/4/8`) against a scalar
//! one-pattern-at-a-time reference — `valid_mask` / `broadcast` / `bit` /
//! `gather_slot` / `differing_slots` / `first_differing_slot` and full-chunk
//! gate evaluation, including partial-chunk tail masks at pattern counts
//! 1..=512.

use lsiq_netlist::library;
use lsiq_netlist::GateKind;
use lsiq_sim::eval::{eval_bool, eval_chunk, eval_packed};
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::{
    bit, broadcast, differing_slots, first_differing_slot, gather_chunk_slot, gather_slot,
    valid_mask, PackedBlock, PATTERNS_PER_WORD,
};
use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, SplitMix64};

const CASES: u64 = 200;

/// Scalar reference for the set-slot list of a masked difference: walk every
/// slot one at a time.
fn reference_differing_slots(good: u64, faulty: u64, valid: u64) -> Vec<usize> {
    (0..PATTERNS_PER_WORD)
        .filter(|&slot| {
            let g = (good >> slot) & 1;
            let f = (faulty >> slot) & 1;
            let v = (valid >> slot) & 1;
            v == 1 && g != f
        })
        .collect()
}

#[test]
fn scalar_word_helpers_match_the_bit_at_a_time_reference() {
    let mut rng = SplitMix64::seed_from_u64(0x51D_0001);
    for case in 0..CASES {
        let good = rng.next_u64();
        let faulty = rng.next_u64();
        let count = 1 + (rng.next_u64() % PATTERNS_PER_WORD as u64) as usize;
        let valid = valid_mask(count);

        // valid_mask: exactly the low `count` slots.
        for slot in 0..PATTERNS_PER_WORD {
            assert_eq!(bit(valid, slot), slot < count, "case {case} slot {slot}");
        }

        // broadcast: every slot equals the splatted value.
        for value in [false, true] {
            for slot in 0..PATTERNS_PER_WORD {
                assert_eq!(bit(broadcast(value), slot), value);
            }
        }

        // differing_slots and first_differing_slot against the slot walk.
        let lazy: Vec<usize> = differing_slots(good, faulty, valid).collect();
        let reference = reference_differing_slots(good, faulty, valid);
        assert_eq!(lazy, reference, "case {case}");
        assert_eq!(
            first_differing_slot(good, faulty, valid),
            reference.first().copied(),
            "case {case}"
        );

        // gather_slot transposes: signal s at slot i is bit i of word s.
        let words: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        for slot in [0, count - 1, count.min(63)] {
            let column: Vec<bool> = gather_slot(&words, slot).collect();
            let reference: Vec<bool> = words.iter().map(|&w| bit(w, slot)).collect();
            assert_eq!(column, reference, "case {case} slot {slot}");
        }
    }
}

/// One seeded sweep of the chunk-level helpers at lane width `L`.
fn chunk_helpers_property<const L: usize>(seed: u64) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let random_chunk = |rng: &mut SplitMix64| {
        let mut chunk = PackedBlock::<L>::ZERO;
        for word in &mut chunk.0 {
            *word = rng.next_u64();
        }
        chunk
    };
    for case in 0..CASES {
        // Tail masks at every possible pattern count 1..=64*L.
        let count = 1 + (rng.next_u64() % PackedBlock::<L>::PATTERNS as u64) as usize;
        let valid = PackedBlock::<L>::valid_mask(count);
        for slot in 0..PackedBlock::<L>::PATTERNS {
            assert_eq!(
                valid.bit(slot),
                slot < count,
                "L={L} case {case} slot {slot}"
            );
        }
        for value in [false, true] {
            let splat = PackedBlock::<L>::splat(value);
            assert_eq!(splat.bit(0), value);
            assert_eq!(splat.bit(PackedBlock::<L>::PATTERNS - 1), value);
        }

        let good = random_chunk(&mut rng);
        let faulty = random_chunk(&mut rng);
        let diff = (good ^ faulty) & valid;

        // Chunk slot list against the per-lane scalar reference.
        let slots: Vec<usize> = diff.set_slots().collect();
        let mut reference = Vec::new();
        for lane in 0..L {
            for slot in reference_differing_slots(good.0[lane], faulty.0[lane], valid.0[lane]) {
                reference.push(lane * PATTERNS_PER_WORD + slot);
            }
        }
        assert_eq!(slots, reference, "L={L} case {case}");
        assert_eq!(diff.first_set_slot(), reference.first().copied());
        assert_eq!(diff.is_zero(), reference.is_empty());

        // bit() agrees with the lane/bit decomposition.
        for &slot in reference.iter().take(4) {
            assert!(diff.bit(slot));
            assert_eq!(
                diff.bit(slot),
                bit(diff.0[slot / PATTERNS_PER_WORD], slot % PATTERNS_PER_WORD)
            );
        }

        // gather_chunk_slot transposes across lanes.
        let signals: Vec<PackedBlock<L>> = (0..4).map(|_| random_chunk(&mut rng)).collect();
        for slot in [0, count - 1] {
            let column: Vec<bool> = gather_chunk_slot(&signals, slot).collect();
            let reference: Vec<bool> = signals.iter().map(|chunk| chunk.bit(slot)).collect();
            assert_eq!(column, reference, "L={L} case {case} slot {slot}");
        }
    }
}

#[test]
fn chunk_helpers_match_the_scalar_reference_at_every_lane_width() {
    chunk_helpers_property::<1>(0x51D_1001);
    chunk_helpers_property::<4>(0x51D_1004);
    chunk_helpers_property::<8>(0x51D_1008);
}

/// One seeded sweep of single-gate chunk evaluation at lane width `L`:
/// every kind, random arities, every valid slot checked against
/// `eval_bool` on the gathered scalar operands.
fn gate_eval_property<const L: usize>(seed: u64) {
    const KINDS: [GateKind; 12] = [
        GateKind::Input,
        GateKind::Dff,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let mut rng = SplitMix64::seed_from_u64(seed);
    for case in 0..CASES {
        let kind = KINDS[(rng.next_u64() % KINDS.len() as u64) as usize];
        let arity = match kind {
            GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2 + (rng.next_u64() % 3) as usize,
        };
        let mut inputs = vec![PackedBlock::<L>::ZERO; arity];
        for chunk in &mut inputs {
            for word in &mut chunk.0 {
                *word = rng.next_u64();
            }
        }
        let count = 1 + (rng.next_u64() % PackedBlock::<L>::PATTERNS as u64) as usize;
        let result = eval_chunk(kind, &inputs);
        // Chunk evaluation is exactly per-lane word evaluation…
        for lane in 0..L {
            let lane_inputs: Vec<u64> = inputs.iter().map(|chunk| chunk.0[lane]).collect();
            assert_eq!(
                result.0[lane],
                eval_packed(kind, &lane_inputs),
                "L={L} case {case} {kind} lane {lane}"
            );
        }
        // …and per-slot scalar evaluation on every valid pattern, including
        // the partial tail.
        for slot in (0..count).step_by(7).chain([count - 1]) {
            let scalar_inputs: Vec<bool> = gather_chunk_slot(&inputs, slot).collect();
            assert_eq!(
                result.bit(slot),
                eval_bool(kind, &scalar_inputs),
                "L={L} case {case} {kind} slot {slot}"
            );
        }
    }
}

#[test]
fn gate_evaluation_matches_scalar_at_every_lane_width() {
    gate_eval_property::<1>(0x51D_2001);
    gate_eval_property::<4>(0x51D_2004);
    gate_eval_property::<8>(0x51D_2008);
}

/// Whole-circuit chunk simulation at lane width `L` against the scalar
/// one-pattern-at-a-time simulator, across pattern counts that exercise
/// partial tails from 1 pattern up to beyond one full chunk.
fn circuit_eval_property<const L: usize>(seed: u64) {
    let circuits = [library::c17(), library::alu4(), library::full_adder()];
    let mut rng = SplitMix64::seed_from_u64(seed);
    for circuit in &circuits {
        let compiled = CompiledCircuit::new(circuit);
        let width = circuit.primary_inputs().len();
        for _ in 0..6 {
            // 1..=64*L+17 patterns: partial tails on both sides of a chunk.
            let pattern_count =
                1 + (rng.next_u64() % (PackedBlock::<L>::PATTERNS as u64 + 17)) as usize;
            let patterns: PatternSet = (0..pattern_count)
                .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_u64() & 1 == 1)))
                .collect();
            for chunk in 0..patterns.chunk_count(L) {
                let (input_chunks, count) = patterns.pack_chunk::<L>(width, chunk);
                let node_chunks = compiled.node_chunks(&input_chunks);
                let output_chunks = compiled.output_chunks(&input_chunks);
                for slot in 0..count {
                    let pattern = patterns
                        .get(chunk * PackedBlock::<L>::PATTERNS + slot)
                        .expect("valid slot");
                    let scalar = compiled.node_values(pattern);
                    for (gate, value) in scalar.iter().enumerate() {
                        assert_eq!(
                            node_chunks[gate].bit(slot),
                            *value,
                            "{} L={L} chunk {chunk} slot {slot} gate {gate}",
                            circuit.name()
                        );
                    }
                    let scalar_outputs = compiled.outputs(pattern);
                    for (out, value) in scalar_outputs.iter().enumerate() {
                        assert_eq!(output_chunks[out].bit(slot), *value);
                    }
                }
            }
        }
    }
}

#[test]
fn circuit_chunk_simulation_matches_scalar_at_every_lane_width() {
    circuit_eval_property::<1>(0x51D_3001);
    circuit_eval_property::<4>(0x51D_3004);
    circuit_eval_property::<8>(0x51D_3008);
}
