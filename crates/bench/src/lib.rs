//! Shared helpers for the reproduction harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper —
//! `table1` (the Section 7 chip-test experiment), `fig1`–`fig6`, the
//! Section 7 worked example, the baseline comparison of Section 3, the
//! ablations (`ablation_lot_size`, `ablation_clustering`,
//! `ablation_threads`) and the BIST quality sweep (`bist_sweep`, defect
//! level vs self-test length × signature width, with and without the
//! aliasing correction).  They all route their configuration through the
//! typed [`Session`] of the facade crate — one [`RunConfig`] (engine,
//! workers, base seed) plus one persistent worker pool per process:
//!
//! * [`session_from_env`] — builds the [`Session`] from the `LSIQ_*`
//!   environment knobs, exiting gracefully with the
//!   [`ConfigError`](lsiq_exec::ConfigError) message on a bad value,
//! * [`run_line_experiment`] — the full Section 7 production-line pass
//!   ([`Session::run_production_line`]) with an explicit lot seed,
//! * [`engine_from_env`] / [`reproduction_circuit`] — thin compatibility
//!   shims over [`RunConfig::from_env`] and
//!   [`Session::reproduction_circuit`].

use lsiq_exec::{EngineKind, MetricsMode, RunConfig};
use lsiq_netlist::circuit::Circuit;

pub use lsi_quality::session::{LineExperiment, LineSpec, Session};

/// Prints a named `(x, y)` series in a gnuplot-friendly two-column layout.
pub fn print_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("# {title}");
    println!("# {x_label:>12}  {y_label:>12}");
    for (x, y) in points {
        println!("{x:>14.6}  {y:>12.6}");
    }
    println!();
}

/// The circuit every production-line reproduction uses — see
/// [`Session::reproduction_circuit`].
pub fn reproduction_circuit(full: bool) -> Circuit {
    Session::reproduction_circuit(full)
}

/// Reads the `LSIQ_*` knobs into a [`RunConfig`], exiting the process with
/// the [`ConfigError`](lsiq_exec::ConfigError) message (status 2, no panic
/// backtrace) on an invalid value — the graceful path the CI smoke job
/// asserts.
pub fn run_config_from_env() -> RunConfig {
    unwrap_or_exit(RunConfig::from_env())
}

/// Unwraps a fallible configuration step, exiting the process with the
/// [`ConfigError`](lsiq_exec::ConfigError) message (status 2, no panic
/// backtrace) on failure — the graceful path the CI smoke job asserts.
/// Used both for the `LSIQ_*` parse and for session runs that validate
/// their spec (scan plans, sweep grids) at run time.
pub fn unwrap_or_exit<T>(result: Result<T, lsiq_exec::ConfigError>) -> T {
    match result {
        Ok(value) => value,
        Err(error) => {
            eprintln!("lsiq: {error}");
            std::process::exit(2);
        }
    }
}

/// Opens a [`Session`] from the environment via [`run_config_from_env`],
/// with the same graceful exit on a bad knob.
pub fn session_from_env() -> Session {
    Session::new(run_config_from_env())
}

/// Prints the session's metrics report ([`Session::metrics_report`]) to
/// **stderr** when the session was opened under `LSIQ_METRICS=tree` — and
/// does nothing otherwise, so every binary's *stdout* stays byte-identical
/// in every metrics mode (the CI differential jobs diff it).  Call this at
/// the end of `main`, after the reproduction work.
pub fn print_metrics_report(session: &Session) {
    if session.config().metrics() == MetricsMode::Tree {
        eprintln!("{}", session.metrics_report());
    }
}

/// The fault-simulation engine selected by the environment.
///
/// Compatibility shim over [`RunConfig::from_env`] (the single
/// `LSIQ_*`-parsing site); prefer [`session_from_env`] and
/// [`Session::config`].  Exits with the
/// [`ConfigError`](lsiq_exec::ConfigError) message when any `LSIQ_*`
/// variable is invalid.
pub fn engine_from_env() -> EngineKind {
    run_config_from_env().engine()
}

/// Runs the standard Section 7 style line experiment with an explicit lot
/// seed: a [`Session`] is opened from the environment (engine and worker
/// knobs apply; the seed argument overrides `LSIQ_SEED` because each caller
/// pins its own reference run) and [`Session::run_production_line`] does the
/// rest on the session's persistent pool.
pub fn run_line_experiment(
    chips: usize,
    yield_fraction: f64,
    n0: f64,
    seed: u64,
    full_size: bool,
) -> LineExperiment {
    let session = Session::new(run_config_from_env().with_base_seed(seed));
    unwrap_or_exit(session.run_production_line(&LineSpec {
        chips,
        yield_fraction,
        n0,
        full_size,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduction_circuit_is_lsi_scale() {
        let circuit = reproduction_circuit(false);
        assert!(circuit.transistor_estimate() >= 9_000);
        assert!(!circuit.primary_outputs().is_empty());
    }

    #[test]
    fn line_experiment_produces_consistent_tables() {
        let line = run_line_experiment(150, 0.3, 4.0, 7, false);
        assert_eq!(line.experiment.total_chips(), 150);
        assert!(line.suite.coverage() > 0.5);
        assert!(line.universe_size > 1_000);
        assert!((line.observed_yield - 0.3).abs() < 0.15);
        assert!(line.observed_n0 >= 1.0);
        let rows = line.experiment.rows();
        assert_eq!(rows.len(), line.coverage.pattern_count());
    }
}
