//! Shared helpers for the reproduction harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper —
//! `table1` (the Section 7 chip-test experiment), `fig1`–`fig6`, the
//! Section 7 worked example, the baseline comparison of Section 3, and the
//! ablations (`ablation_lot_size`, `ablation_clustering`,
//! `ablation_threads`).  The helpers here keep their output format
//! consistent and centralise the slightly expensive "build a chip, a
//! pattern suite and a tested lot" pipeline several experiments share:
//!
//! * [`reproduction_circuit`] — the LSI-class device standing in for the
//!   paper's 25 000-transistor chip,
//! * [`run_line_experiment`] — the full Section 7 production-line pass,
//!   sharded across threads by [`ParallelLotRunner`],
//! * [`engine_from_env`] — the `LSIQ_ENGINE` fault-simulation knob
//!   ([`EngineKind`]); the lot-side twin `LSIQ_LOT_THREADS` is read by
//!   [`ParallelLotRunner::new`].

use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::simulator::EngineKind;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::experiment::RejectExperiment;
use lsiq_manufacturing::lot::ModelLotConfig;
use lsiq_manufacturing::pipeline::ParallelLotRunner;
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::library::{lsi_class, LsiClassConfig};
use lsiq_tpg::suite::{TestSuite, TestSuiteBuilder};

/// Prints a named `(x, y)` series in a gnuplot-friendly two-column layout.
pub fn print_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) {
    println!("# {title}");
    println!("# {x_label:>12}  {y_label:>12}");
    for (x, y) in points {
        println!("{x:>14.6}  {y:>12.6}");
    }
    println!();
}

/// The circuit every production-line reproduction uses: an LSI-class
/// composite.  The transistor target is reduced from the paper's 25 000 to
/// keep the harness runtime in seconds; pass `full = true` for the
/// full-size device.
pub fn reproduction_circuit(full: bool) -> Circuit {
    let target = if full { 25_000 } else { 10_000 };
    lsi_class(LsiClassConfig {
        target_transistors: target,
        seed: 1981,
    })
}

/// A production-line experiment bundle: the device, its fault universe, the
/// ordered pattern suite, and the tested lot's reject table.
pub struct LineExperiment {
    /// The device under test.
    pub circuit: Circuit,
    /// Size of the uncollapsed fault universe.
    pub universe_size: usize,
    /// The ordered pattern suite applied by the tester.
    pub suite: TestSuite,
    /// Cumulative-coverage curve of the suite.
    pub coverage: CoverageCurve,
    /// The tested lot's cumulative-reject experiment.
    pub experiment: RejectExperiment,
    /// The lot's observed yield.
    pub observed_yield: f64,
    /// The lot's observed mean fault count over defective chips.
    pub observed_n0: f64,
}

/// The fault-simulation engine the reproduction binaries use, selectable via
/// the `LSIQ_ENGINE` environment variable (`serial`, `ppsfp`, `deductive` or
/// `parallel`; default `parallel`).  This lets every figure/table binary —
/// and the CI bench-smoke job — pit the engines against each other on
/// identical inputs without recompiling.
///
/// # Panics
///
/// Panics with the list of valid names when `LSIQ_ENGINE` is set to an
/// unknown engine, since silently falling back would invalidate an intended
/// comparison.
pub fn engine_from_env() -> EngineKind {
    match std::env::var("LSIQ_ENGINE") {
        Ok(name) => name
            .parse()
            .unwrap_or_else(|message: String| panic!("LSIQ_ENGINE: {message}")),
        Err(std::env::VarError::NotPresent) => EngineKind::default(),
        Err(error @ std::env::VarError::NotUnicode(_)) => panic!("LSIQ_ENGINE: {error}"),
    }
}

/// Runs the standard Section 7 style line experiment: an LSI-class device, a
/// random+PODEM pattern suite, and a lot of `chips` chips drawn from the
/// statistical model with the given ground truth.  The fault-simulation
/// engine is chosen by [`engine_from_env`]; the lot generation, wafer test
/// and reject tabulation run on a [`ParallelLotRunner`], whose worker count
/// follows `LSIQ_LOT_THREADS` — the results are byte-identical at any
/// thread count, so the knob only changes wall-clock time.
pub fn run_line_experiment(
    chips: usize,
    yield_fraction: f64,
    n0: f64,
    seed: u64,
    full_size: bool,
) -> LineExperiment {
    let circuit = reproduction_circuit(full_size);
    let universe = FaultUniverse::full(&circuit);
    let suite = TestSuiteBuilder {
        seed: 1981,
        chunk: 64,
        max_random_patterns: 192,
        target_coverage: 0.95,
        podem_top_up: false,
        engine: engine_from_env(),
        ..TestSuiteBuilder::default()
    }
    .build(&circuit, &universe);
    let coverage = CoverageCurve::from_fault_list(&suite.fault_list, suite.patterns.len());
    let dictionary = FaultDictionary::from_fault_list(&suite.fault_list);
    let runner = ParallelLotRunner::new();
    let lot = runner.generate_model_lot(&ModelLotConfig {
        chips,
        yield_fraction,
        n0,
        fault_universe_size: universe.len(),
        seed,
    });
    let records = runner.test_lot(&dictionary, &lot);
    let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
    let experiment = runner.experiment(&records, &coverage, &checkpoints);
    LineExperiment {
        universe_size: universe.len(),
        suite,
        coverage,
        experiment,
        observed_yield: lot.observed_yield(),
        observed_n0: lot.observed_n0(),
        circuit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduction_circuit_is_lsi_scale() {
        let circuit = reproduction_circuit(false);
        assert!(circuit.transistor_estimate() >= 9_000);
        assert!(!circuit.primary_outputs().is_empty());
    }

    #[test]
    fn line_experiment_produces_consistent_tables() {
        let line = run_line_experiment(150, 0.3, 4.0, 7, false);
        assert_eq!(line.experiment.total_chips(), 150);
        assert!(line.suite.coverage() > 0.5);
        assert!(line.universe_size > 1_000);
        assert!((line.observed_yield - 0.3).abs() < 0.15);
        assert!(line.observed_n0 >= 1.0);
        let rows = line.experiment.rows();
        assert_eq!(rows.len(), line.coverage.pattern_count());
    }
}
