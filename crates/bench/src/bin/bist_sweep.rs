//! BIST quality sweep: defect level versus self-test length and signature
//! width, with and without the aliasing correction.
//!
//! The paper's model turns a fault coverage `f` into a field defect level
//! (eq. 8).  Under built-in self-test the tester observes MISR signatures,
//! not responses, so the coverage the model should consume is the
//! *effective* one — raw coverage minus the faults the compactor aliases.
//! This binary sweeps test length × signature width on the reproduction
//! device and prints both defect levels per grid cell; the gap between them
//! is the quality price of the signature width.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin bist_sweep`
//!
//! Knobs: `LSIQ_SEED` (pattern-source seed, default 1981),
//! `LSIQ_LOT_THREADS` (worker pool), `LSIQ_TEST_MODE` (parsed for
//! validation like every binary; this sweep is BIST by definition).

use lsi_quality::BistSweepSpec;
use lsiq_bench::{print_metrics_report, session_from_env, unwrap_or_exit};

fn main() {
    let session = session_from_env();
    let spec = BistSweepSpec::reference();
    println!("=== BIST sweep: defect level vs test length x signature width ===");
    println!("run config: {}", session.config());
    println!(
        "model: y = {}, n0 = {}; sessions of {} patterns; STUMPS channels = {}",
        spec.yield_fraction, spec.n0, spec.session_len, spec.channels
    );

    let sweep = unwrap_or_exit(session.run_bist_sweep(&spec));
    println!("fault universe: {} stuck-at faults", sweep.universe_size);
    println!();
    println!(
        "{:>7} | {:>5} | {:>8} | {:>9} | {:>7} | {:>12} | {:>12} | {:>9}",
        "length", "k", "raw f", "eff f", "aliased", "DL (raw)", "DL (eff)", "DL ratio"
    );
    println!("{}", "-".repeat(90));
    for row in &sweep.rows {
        let ratio = if row.defect_level_raw > 0.0 {
            row.defect_level_effective / row.defect_level_raw
        } else {
            1.0
        };
        println!(
            "{:>7} | {:>5} | {:>8.4} | {:>9.4} | {:>7} | {:>12.6} | {:>12.6} | {:>9.3}",
            row.test_length,
            row.signature_width,
            row.raw_coverage,
            row.effective_coverage,
            row.aliased,
            row.defect_level_raw,
            row.defect_level_effective,
            ratio
        );
    }
    println!();
    println!(
        "(effective coverage <= raw coverage by construction; the two defect \
         levels converge as k grows -- the 2^-k aliasing estimate per cell is \
         printed by the library's AliasingReport)"
    );

    // Under LSIQ_METRICS=tree the span/counter report goes to stderr; the
    // sweep table above (stdout) is byte-identical in every metrics mode.
    print_metrics_report(&session);
}
