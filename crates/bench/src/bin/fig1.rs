//! Figure 1: field reject rate versus fault coverage for yields of 80 and
//! 20 percent, each at n0 = 2 and n0 = 10.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin fig1`

use lsiq_bench::print_series;
use lsiq_core::params::{ModelParams, Yield};
use lsiq_core::reject::reject_rate_curve;

fn main() {
    println!("Reproduction of Fig. 1 — field reject rate r(f)\n");
    for (yield_fraction, n0) in [(0.80, 2.0), (0.80, 10.0), (0.20, 2.0), (0.20, 10.0)] {
        let params = ModelParams::new(Yield::new(yield_fraction).expect("valid yield"), n0)
            .expect("valid parameters");
        let curve = reject_rate_curve(&params, 51);
        print_series(
            &format!("y = {yield_fraction}, n0 = {n0}"),
            "fault coverage f",
            "field reject r",
            &curve,
        );
    }
    println!("Paper reference points (Section 4): at r <= 0.005,");
    println!("  y = 0.80 needs f ~ 0.95 (n0 = 2) or ~0.38 (n0 = 10);");
    println!("  y = 0.20 needs f ~ 0.99 (n0 = 2) or ~0.63 (n0 = 10).");
}
