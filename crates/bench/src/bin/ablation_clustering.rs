//! Ablation: defect clustering and faults-per-defect versus the emergent
//! model parameters.
//!
//! The paper's Concluding Remarks argue that denser (fine-line) layouts raise
//! n0 because one physical defect produces several logical faults, which in
//! turn *lowers* the required coverage.  This ablation runs the physical
//! pipeline across a grid of clustering parameters and faults-per-defect
//! means and reports the emergent yield, n0 and the resulting coverage
//! requirement at r = 0.001.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin ablation_clustering`

use lsiq_core::coverage_requirement::required_fault_coverage;
use lsiq_core::params::{ModelParams, RejectRate, Yield};
use lsiq_manufacturing::defect::DefectModel;
use lsiq_manufacturing::lot::{ChipLot, PhysicalLotConfig};

fn main() {
    println!("Ablation — clustering (lambda) and faults per defect versus emergent (y, n0)\n");
    println!("lambda | faults/defect | emergent yield | emergent n0 | required f @ r=0.001");
    println!("-------|---------------|----------------|-------------|---------------------");
    let target = RejectRate::new(0.001).expect("valid reject rate");
    for &lambda in &[0.25, 1.0, 4.0] {
        for &extra in &[0.0, 3.0, 9.0] {
            let defect_model = DefectModel::new(2.66, lambda).expect("valid defect model");
            let lot = ChipLot::from_physical(&PhysicalLotConfig {
                chips: 5_000,
                defect_model,
                extra_faults_per_defect: extra,
                fault_universe_size: 20_000,
                seed: 7,
            });
            let emergent_yield = lot.observed_yield().clamp(0.001, 0.999);
            let emergent_n0 = lot.observed_n0().max(1.0);
            let params = ModelParams::new(Yield::new(emergent_yield).expect("valid"), emergent_n0)
                .expect("valid parameters");
            let required = required_fault_coverage(&params, target).expect("solves");
            println!(
                "{:>6.2} | {:>13.1} | {:>14.3} | {:>11.1} | {:>20.1}%",
                lambda,
                1.0 + extra,
                emergent_yield,
                emergent_n0,
                required.percent()
            );
        }
    }
    println!();
    println!("Expectation: more faults per defect raise n0 and lower the required");
    println!("coverage; stronger clustering (larger lambda) raises yield at the same");
    println!("defect density.");
}
