//! Figure 5: determination of n0 — the P(f) family for n0 = 1..12 overlaid
//! with experimental cumulative-reject points, both the paper's Table 1 and a
//! freshly simulated 277-chip lot at ~7 percent yield.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin fig5`

use lsiq_bench::{print_series, run_line_experiment};
use lsiq_core::chip_test::ChipTestTable;
use lsiq_core::detection::rejected_fraction_curve;
use lsiq_core::estimate::N0Estimator;
use lsiq_core::params::{ModelParams, Yield};

fn main() {
    println!("Reproduction of Fig. 5 — determination of n0\n");

    // The theoretical family P(f) for y = 0.07 and n0 = 1..12.
    let chip_yield = Yield::new(0.07).expect("valid yield");
    for n0 in 1..=12 {
        let params = ModelParams::new(chip_yield, n0 as f64).expect("valid parameters");
        print_series(
            &format!("P(f) for n0 = {n0}"),
            "fault coverage f",
            "fraction rejected",
            &rejected_fraction_curve(&params, 21),
        );
    }

    // Experimental points 1: the paper's own Table 1.
    let paper = ChipTestTable::paper_table_1();
    print_series(
        "experimental points (paper Table 1, 277 chips)",
        "fault coverage f",
        "fraction rejected",
        &paper.fractions(),
    );
    let paper_estimate = N0Estimator::default()
        .estimate(&paper, chip_yield)
        .expect("estimation succeeds");
    println!(
        "paper data: best-fit n0 = {:.1} (paper: 8), slope n0 = {:.1} (paper: 8.8)\n",
        paper_estimate.curve_fit_n0, paper_estimate.slope_n0
    );

    // Experimental points 2: a fresh 277-chip lot from the simulated line
    // with ground-truth n0 = 8 and yield 7 percent.
    let line = run_line_experiment(277, 0.07, 8.0, 11, false);
    print_series(
        "experimental points (simulated lot, 277 chips, true n0 = 8)",
        "fault coverage f",
        "fraction rejected",
        &line.experiment.coverage_vs_fraction(),
    );
    let simulated_table = ChipTestTable::from_fractions(
        &line.experiment.coverage_vs_fraction(),
        line.experiment.total_chips(),
    )
    .expect("valid table");
    let simulated_estimate = N0Estimator::default()
        .estimate(
            &simulated_table,
            Yield::new(line.observed_yield.clamp(0.001, 0.999)).expect("valid"),
        )
        .expect("estimation succeeds");
    println!(
        "simulated lot: observed y = {:.3}, observed n0 = {:.1}, best-fit n0 = {:.1}",
        line.observed_yield, line.observed_n0, simulated_estimate.curve_fit_n0
    );
}
