//! Baseline comparison: required coverage versus yield for the paper's model
//! (n0 = 4 and 8) against the Wadsack and Williams–Brown formulas at a
//! 1-in-1000 field reject target.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin baseline_comparison`

use lsiq_bench::print_series;
use lsiq_core::baseline::{WadsackModel, WilliamsBrownModel};
use lsiq_core::coverage_requirement::required_coverage_at_yield;
use lsiq_core::params::{RejectRate, Yield};

fn main() {
    println!("Baseline comparison — required coverage at r = 0.001\n");
    let target = RejectRate::new(0.001).expect("valid reject rate");
    let yields: Vec<f64> = (1..=19).map(|i| i as f64 * 0.05).collect();

    for n0 in [4.0, 8.0] {
        let points: Vec<(f64, f64)> = yields
            .iter()
            .map(|&y| {
                let coverage =
                    required_coverage_at_yield(n0, target, Yield::new(y).expect("valid"))
                        .expect("solves");
                (y, coverage.value())
            })
            .collect();
        print_series(
            &format!("this paper, n0 = {n0}"),
            "yield y",
            "required coverage f",
            &points,
        );
    }

    let wadsack: Vec<(f64, f64)> = yields
        .iter()
        .map(|&y| {
            let coverage = WadsackModel::new(Yield::new(y).expect("valid"))
                .required_fault_coverage(target)
                .expect("valid");
            (y, coverage.value())
        })
        .collect();
    print_series("Wadsack (1978)", "yield y", "required coverage f", &wadsack);

    let williams_brown: Vec<(f64, f64)> = yields
        .iter()
        .map(|&y| {
            let coverage = WilliamsBrownModel::new(Yield::new(y).expect("valid"))
                .required_fault_coverage(target)
                .expect("valid");
            (y, coverage.value())
        })
        .collect();
    print_series(
        "Williams-Brown (1981)",
        "yield y",
        "required coverage f",
        &williams_brown,
    );

    println!("Expectation: both baselines sit near 99-100% across the LSI yield range,");
    println!("while the paper's model relaxes sharply as n0 grows.");
}
