//! Ablation: how many chips does the n0 estimation procedure need?
//!
//! The paper recommends testing "a sufficiently large number of chips (say
//! 100 to 200)".  This ablation sweeps the lot size and reports the curve-fit
//! estimate against the ground truth n0 = 8, quantifying that advice.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin ablation_lot_size`

use lsiq_bench::run_line_experiment;
use lsiq_core::chip_test::ChipTestTable;
use lsiq_core::estimate::N0Estimator;
use lsiq_core::params::Yield;

fn main() {
    println!("Ablation — n0 estimate versus lot size (ground truth n0 = 8, y = 0.07)\n");
    println!("lot size | observed yield | estimated n0 | error");
    println!("---------|----------------|--------------|------");
    for &chips in &[50usize, 100, 200, 277, 500, 1_000] {
        let line = run_line_experiment(chips, 0.07, 8.0, 42 + chips as u64, false);
        let table = ChipTestTable::from_fractions(
            &line.experiment.coverage_vs_fraction(),
            line.experiment.total_chips(),
        )
        .expect("valid table");
        let estimate = N0Estimator::default()
            .estimate(
                &table,
                Yield::new(line.observed_yield.clamp(0.001, 0.999)).expect("valid"),
            )
            .expect("estimation succeeds");
        println!(
            "{:>8} | {:>14.3} | {:>12.2} | {:>+5.2}",
            chips,
            line.observed_yield,
            estimate.curve_fit_n0,
            estimate.curve_fit_n0 - 8.0
        );
    }
    println!();
    println!("Expectation (paper): 100-200 chips give a usable estimate; smaller lots");
    println!("scatter, larger lots converge on the true value.");
}
