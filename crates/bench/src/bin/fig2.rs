//! Figure 2: fault coverage required for a field reject rate of 1-in-100, as
//! a function of yield, for n0 = 1..12.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin fig2`

use lsiq_bench::print_series;
use lsiq_core::coverage_requirement::requirement_curve;
use lsiq_core::params::RejectRate;

fn main() {
    println!("Reproduction of Fig. 2 — required coverage for r = 0.01\n");
    let target = RejectRate::new(0.01).expect("valid reject rate");
    for n0 in 1..=12 {
        let curve = requirement_curve(n0 as f64, target, 41).expect("valid n0");
        let points: Vec<(f64, f64)> = curve
            .iter()
            .map(|point| (point.yield_fraction, point.required_coverage))
            .collect();
        print_series(
            &format!("n0 = {n0}"),
            "yield y",
            "required coverage f",
            &points,
        );
    }
}
