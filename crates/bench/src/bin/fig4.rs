//! Figure 4: fault coverage required for a field reject rate of 1-in-1000, as
//! a function of yield, for n0 = 1..12, with the paper's spot check
//! (y = 0.3, n0 = 8 → f ≈ 0.85).
//!
//! Run with: `cargo run --release -p lsiq-bench --bin fig4`

use lsiq_bench::print_series;
use lsiq_core::coverage_requirement::{required_coverage_at_yield, requirement_curve};
use lsiq_core::params::{RejectRate, Yield};

fn main() {
    println!("Reproduction of Fig. 4 — required coverage for r = 0.001\n");
    let target = RejectRate::new(0.001).expect("valid reject rate");
    for n0 in 1..=12 {
        let curve = requirement_curve(n0 as f64, target, 41).expect("valid n0");
        let points: Vec<(f64, f64)> = curve
            .iter()
            .map(|point| (point.yield_fraction, point.required_coverage))
            .collect();
        print_series(
            &format!("n0 = {n0}"),
            "yield y",
            "required coverage f",
            &points,
        );
    }
    let spot = required_coverage_at_yield(8.0, target, Yield::new(0.3).expect("valid yield"))
        .expect("solves");
    println!(
        "Spot check (paper, Section 6): y = 0.3, n0 = 8 -> f = {:.1}% (paper: about 85%)",
        spot.percent()
    );
}
