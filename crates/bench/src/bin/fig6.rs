//! Figure 6: the three approximations for the escape probability `q0(n)`
//! (exact A.1, corrected A.2, simple power A.3) for N = 1000.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin fig6`

use lsiq_bench::print_series;
use lsiq_core::escape::{EscapeApproximation, EscapeProbability};

fn main() {
    println!("Reproduction of Fig. 6 — approximations for q0(n), N = 1000\n");
    let universe = 1_000u64;
    for n in [2u64, 4, 8, 16, 32] {
        for (label, approximation) in [
            ("A.1 exact", EscapeApproximation::Exact),
            ("A.2 corrected", EscapeApproximation::Corrected),
            ("A.3 (1-f)^n", EscapeApproximation::SimplePower),
        ] {
            let points: Vec<(f64, f64)> = (0..=20)
                .map(|step| {
                    let covered = universe * step / 20;
                    let escape =
                        EscapeProbability::new(universe, covered).expect("covered <= universe");
                    (
                        escape.coverage(),
                        escape.escape(n, approximation).expect("valid"),
                    )
                })
                .collect();
            print_series(
                &format!("n = {n}, {label}"),
                "coverage f = m/N",
                "q0(n)",
                &points,
            );
        }
    }
    println!("Paper observation: for n <= 4 all three coincide; A.2 tracks the exact");
    println!("value for larger n while A.3 shows a small visible error.");
}
