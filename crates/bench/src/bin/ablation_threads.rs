//! Ablation: thread-scaling of the production-line pipeline.
//!
//! The lot workload is embarrassingly parallel — every chip draws from its
//! own RNG stream and is tested independently — so the pipeline should scale
//! with cores until memory bandwidth intervenes.  This ablation measures the
//! full per-lot pipeline (generate a 10 000-chip lot through both the
//! physical-defect and statistical-model generators, wafer-test it, tabulate
//! the full-resolution reject table) at increasing worker counts, checking
//! at each count that the results stay byte-identical to the serial path,
//! and then repeats the exercise one level up: a `(y, n0)` grid sweep of
//! whole 10k-chip lots fanned across threads by `LotSweep`.
//!
//! Configuration routes through the typed `Session` (the `LSIQ_ENGINE`
//! knob picks the fault-simulation engine that builds the test programme);
//! each rung of the worker-count ladder gets its own persistent
//! `ExecutionContext`, created once and reused across every repetition and
//! every pipeline stage of that rung — the worker-count ladder itself is
//! explicit, so `LSIQ_LOT_THREADS` is deliberately ignored here.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin ablation_threads`

use lsiq_bench::session_from_env;
use lsiq_exec::ExecutionContext;
use lsiq_fault::coverage::CoverageCurve;
use lsiq_fault::dictionary::FaultDictionary;
use lsiq_fault::universe::FaultUniverse;
use lsiq_manufacturing::defect::DefectModel;
use lsiq_manufacturing::lot::{ModelLotConfig, PhysicalLotConfig};
use lsiq_manufacturing::pipeline::{LotSweep, ParallelLotRunner};
use lsiq_tpg::suite::TestSuiteBuilder;
use std::time::Instant;

/// Repetitions per measurement; the best (minimum) time is reported, the
/// usual way to suppress scheduler noise in scaling curves.
const REPS: usize = 3;

fn best_of<T>(mut run: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let value = run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(value);
    }
    (best, result.expect("REPS > 0"))
}

fn main() {
    let session = session_from_env();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Ablation — production-line pipeline thread scaling ({cores} hardware threads, {})\n",
        session.config()
    );

    // The test programme, built once on the session's engine and pool: an
    // LSI-class device and its suite.
    let circuit = lsiq_bench::reproduction_circuit(false);
    let universe = FaultUniverse::full(&circuit);
    let suite = TestSuiteBuilder {
        seed: 1981,
        chunk: 64,
        max_random_patterns: 192,
        target_coverage: 0.95,
        podem_top_up: false,
        ..TestSuiteBuilder::default()
    }
    .with_run_config(session.config())
    .build_in(session.context(), &circuit, &universe);
    let coverage = CoverageCurve::from_fault_list(&suite.fault_list, suite.patterns.len());
    let dictionary = FaultDictionary::from_fault_list(&suite.fault_list);
    println!(
        "device: {} gates, {} faults; programme: {} patterns, coverage {:.1}%",
        circuit.gate_count(),
        universe.len(),
        suite.patterns.len(),
        suite.coverage() * 100.0
    );

    // One persistent pool per ladder rung, shared by every repetition and
    // every stage measured on that rung.
    let contexts: Vec<ExecutionContext> = thread_counts(cores)
        .into_iter()
        .map(ExecutionContext::new)
        .collect();

    // Level 1: one lot of 10k chips, chips sharded across threads.  The
    // physical defect pipeline is the heavy generator (clustered
    // negative-binomial defect counts, each defect mapped to several logical
    // faults), so this measures real per-chip work, not spawn overhead.
    let physical_config = PhysicalLotConfig {
        chips: 10_000,
        defect_model: DefectModel::for_target_yield(0.07, 1.0).expect("valid"),
        extra_faults_per_defect: 2.0,
        fault_universe_size: universe.len(),
        seed: 1981,
    };
    let model_config = ModelLotConfig {
        chips: 10_000,
        yield_fraction: 0.07,
        n0: 8.0,
        fault_universe_size: universe.len(),
        seed: 1981,
    };
    let checkpoints: Vec<usize> = (1..=coverage.pattern_count()).collect();
    let run_lot = |runner: &ParallelLotRunner| {
        let physical = runner.generate_physical_lot(&physical_config);
        let records = runner.test_lot(&dictionary, &physical);
        let experiment = runner.experiment(&records, &coverage, &checkpoints);
        let model = runner.run_model_line(&model_config, &dictionary, &coverage);
        (physical, records, experiment, model)
    };
    let reference = run_lot(&ParallelLotRunner::with_context(&contexts[0]));
    println!("\n10k-chip lot (physical + model pipelines): generate + wafer-test + reject table");
    println!("threads | seconds | speedup | identical to serial");
    println!("--------|---------|---------|--------------------");
    let mut serial_seconds = 0.0;
    for context in &contexts {
        let threads = context.workers();
        let runner = ParallelLotRunner::with_context(context);
        let (seconds, outcome) = best_of(|| run_lot(&runner));
        if threads == 1 {
            serial_seconds = seconds;
        }
        println!(
            "{:>7} | {:>7.3} | {:>6.2}x | {}",
            threads,
            seconds,
            serial_seconds / seconds,
            outcome == reference
        );
        assert!(outcome == reference, "thread count changed the results");
    }

    // Level 2: a (y, n0) grid of whole lots fanned across threads — every
    // point of a sweep reuses the rung's parked workers.
    let points = LotSweep::grid(&[0.03, 0.07, 0.15, 0.30], &[2.0, 4.0, 8.0]);
    let sweep = |context| {
        LotSweep {
            chips: 10_000,
            fault_universe_size: universe.len(),
            base_seed: 1981,
            threads: 0,
            context: None,
        }
        .with_context(context)
    };
    let reference = sweep(&contexts[0]).run(&dictionary, &coverage, &points);
    println!(
        "\nlot sweep: {} (y, n0) points x 10k chips, lots fanned across threads",
        points.len()
    );
    println!("threads | seconds | speedup | identical to serial");
    println!("--------|---------|---------|--------------------");
    let mut serial_seconds = 0.0;
    for context in &contexts {
        let threads = context.workers();
        let (seconds, results) = best_of(|| sweep(context).run(&dictionary, &coverage, &points));
        if threads == 1 {
            serial_seconds = seconds;
        }
        println!(
            "{:>7} | {:>7.3} | {:>6.2}x | {}",
            threads,
            seconds,
            serial_seconds / seconds,
            results == reference
        );
        assert!(results == reference, "thread count changed the results");
    }

    println!("\nmean field reject rate across the sweep grid (sanity readout):");
    for result in &reference {
        println!(
            "  y = {:.2}, n0 = {:>4.1}: observed y {:.3}, field reject {:.3}%",
            result.point.yield_fraction,
            result.point.n0,
            result.outcome.observed_yield,
            result.outcome.outcome.field_reject_rate() * 100.0
        );
    }
}

/// The ladder of worker counts to measure: powers of two up to the hardware,
/// plus one oversubscribed point to show the plateau.
fn thread_counts(cores: usize) -> Vec<usize> {
    let mut counts = vec![1usize];
    let mut n = 2;
    while n <= cores {
        counts.push(n);
        n *= 2;
    }
    if counts.last() != Some(&cores) {
        counts.push(cores);
    }
    counts.push(cores * 2);
    counts.dedup();
    counts
}
