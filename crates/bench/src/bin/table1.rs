//! Table 1: result of chip test — 277 chips, yield ≈ 0.07, cumulative chips
//! failed at ten fault-coverage checkpoints.
//!
//! Prints the paper's published table and then regenerates the same table
//! from the simulated production line (LSI-class device, random pattern set,
//! 277-chip lot with ground-truth n0 = 8).
//!
//! Run with: `cargo run --release -p lsiq-bench --bin table1`

use lsiq_bench::{print_metrics_report, session_from_env, unwrap_or_exit};
use lsiq_core::chip_test::ChipTestTable;

fn main() {
    println!("=== Paper Table 1 (published data) ===");
    println!("Yield ~= 0.07");
    println!("{}", ChipTestTable::paper_table_1().to_table());

    println!("=== Regenerated Table 1 (simulated production line) ===");
    // One typed session per run: LSIQ_ENGINE / LSIQ_LOT_THREADS / LSIQ_SEED
    // flow through Session::from_env; the historical 1981 lot seed applies
    // unless LSIQ_SEED overrides it.
    let session = session_from_env();
    let line = unwrap_or_exit(session.reproduce_table1());
    println!(
        "device: {} gates (~{} transistors), {} stuck-at faults",
        line.circuit.gate_count(),
        line.circuit.transistor_estimate(),
        line.universe_size
    );
    println!(
        "pattern set: {} patterns, final coverage {:.1}%",
        line.suite.patterns.len(),
        line.suite.coverage() * 100.0
    );
    println!(
        "lot: 277 chips, observed yield {:.2}, observed n0 {:.1}",
        line.observed_yield, line.observed_n0
    );
    println!();

    // Down-sample the full-resolution experiment at the paper's coverage
    // checkpoints (5, 8, 10, ... 65 percent).  The random pattern set ramps
    // its coverage much faster than the 1981 functional sequence did (a
    // single random vector already detects a third of the faults of a
    // combinational LSI block), so the first row that *reaches* a checkpoint
    // may sit well above it; the actual coverage of the reported row is
    // printed so the (coverage, fraction-failed) pairs remain faithful.
    let checkpoints = [0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.36, 0.45, 0.50, 0.65];
    println!("Fault Coverage (percent) | Cumulative Chips Failed | Cumulative Fraction");
    println!("-------------------------|-------------------------|--------------------");
    let mut last_reported = f64::NEG_INFINITY;
    for &target in &checkpoints {
        // First experiment row whose coverage reaches the checkpoint.
        if let Some(row) = line
            .experiment
            .rows()
            .iter()
            .find(|row| row.fault_coverage >= target)
        {
            if row.fault_coverage <= last_reported {
                continue;
            }
            last_reported = row.fault_coverage;
            println!(
                "{:>24.1} | {:>23} | {:>19.2}",
                row.fault_coverage * 100.0,
                row.chips_failed,
                row.fraction_failed
            );
        }
    }

    // Under LSIQ_METRICS=tree the span/counter report goes to stderr; the
    // table above (stdout) is byte-identical in every metrics mode.
    print_metrics_report(&session);
}
