//! Section 7 worked example: estimate n0 from Table 1, derive the required
//! fault coverage for 1 percent and 0.1 percent field reject rates, and
//! compare with the Wadsack and Williams–Brown baselines.
//!
//! Run with: `cargo run --release -p lsiq-bench --bin example_section7`

use lsiq_core::baseline::{WadsackModel, WilliamsBrownModel};
use lsiq_core::chip_test::ChipTestTable;
use lsiq_core::coverage_requirement::required_fault_coverage;
use lsiq_core::estimate::N0Estimator;
use lsiq_core::params::{ModelParams, RejectRate, Yield};

fn main() {
    let table = ChipTestTable::paper_table_1();
    let chip_yield = Yield::new(0.07).expect("valid yield");
    let estimate = N0Estimator::default()
        .estimate(&table, chip_yield)
        .expect("estimation succeeds");

    println!("=== Section 7 worked example ===");
    println!("chip: ~25,000 transistors, yield ~ 7%, 277 chips tested\n");
    println!("n0 estimation:");
    println!(
        "  curve fit        : n0 = {:.1}   (paper: 8)",
        estimate.curve_fit_n0
    );
    println!(
        "  origin slope     : P'(0) = {:.1} (paper: 0.41/0.05 = 8.2)",
        estimate.origin_slope
    );
    println!(
        "  slope / (1 - y)  : n0 = {:.1}   (paper: 8.2/0.93 = 8.8)",
        estimate.slope_n0
    );
    println!();

    let params = ModelParams::new(chip_yield, 8.0).expect("valid parameters");
    println!("required single-stuck-at coverage (n0 = 8, y = 0.07):");
    println!("  target r   | this model | Wadsack [5] | Williams-Brown");
    for target in [0.01, 0.001] {
        let reject = RejectRate::new(target).expect("valid reject rate");
        let ours = required_fault_coverage(&params, reject).expect("solves");
        let wadsack = WadsackModel::new(chip_yield)
            .required_fault_coverage(reject)
            .expect("valid");
        let williams_brown = WilliamsBrownModel::new(chip_yield)
            .required_fault_coverage(reject)
            .expect("valid");
        println!(
            "  {:>10.3} | {:>9.1}% | {:>10.1}% | {:>13.1}%",
            target,
            ours.percent(),
            wadsack.percent(),
            williams_brown.percent()
        );
    }
    println!();
    println!("paper: this model needs about 80% (r = 0.01) and 95% (r = 0.001);");
    println!("       the Wadsack formula demands 99% and 99.9%, \"almost unachievable\".");
}
