//! Micro-benchmark: spawning OS threads per fork-join call
//! (`std::thread::scope`, the pre-Session design) versus reusing the
//! persistent `ExecutionContext` worker pool.
//!
//! The workload is deliberately small — a handful of short jobs per call,
//! like one sweep point of a small lot — because that is exactly the regime
//! where per-call thread spawn/teardown dominated the old pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsiq_exec::ExecutionContext;

/// Jobs per fork-join call (one per shard in the real pipeline).
const JOBS: usize = 8;
/// Per-job work: a short arithmetic spin standing in for a small shard.
const SPIN: u64 = 2_000;

fn job(seed: u64) -> u64 {
    let mut acc = seed;
    for i in 0..SPIN {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

fn spawn_per_call() -> u64 {
    let mut slots = [0u64; JOBS];
    std::thread::scope(|scope| {
        for (index, slot) in slots.iter_mut().enumerate() {
            scope.spawn(move || *slot = job(index as u64));
        }
    });
    slots.iter().fold(0, |acc, &v| acc ^ v)
}

fn persistent_pool(context: &ExecutionContext) -> u64 {
    let mut slots = [0u64; JOBS];
    context.scope(|scope| {
        for (index, slot) in slots.iter_mut().enumerate() {
            scope.spawn(move || *slot = job(index as u64));
        }
    });
    slots.iter().fold(0, |acc, &v| acc ^ v)
}

fn bench_pool_reuse(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(JOBS);
    let context = ExecutionContext::new(workers);
    let expected = spawn_per_call();
    assert_eq!(expected, persistent_pool(&context));

    let mut group = c.benchmark_group("pool_reuse");
    group.bench_function(format!("spawn_per_call/{JOBS}_jobs"), |b| {
        b.iter(|| black_box(spawn_per_call()))
    });
    group.bench_function(format!("persistent_pool/{JOBS}_jobs"), |b| {
        b.iter(|| black_box(persistent_pool(&context)))
    });
    group.finish();
}

criterion_group!(benches, bench_pool_reuse);
criterion_main!(benches);
