//! MISR signature-compaction benchmarks.
//!
//! Three costs matter to the BIST workload: folding good responses into
//! session signatures (pure MISR throughput), building a whole per-fault
//! [`SignatureDictionary`] (one fault-simulation pass plus error-stream
//! folding), and the serial-versus-pooled ratio of that build.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsiq_bist::misr::Misr;
use lsiq_bist::signature::{BistPlan, SignatureDictionary};
use lsiq_bist::stumps::{StumpsConfig, StumpsGenerator};
use lsiq_exec::ExecutionContext;
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::library;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::pattern::PatternSet;

fn bench_misr_compaction(c: &mut Criterion) {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns: PatternSet = StumpsGenerator::new(&StumpsConfig::with_width(
        circuit.primary_inputs().len(),
        1981,
    ))
    .generate(256);
    let plan = BistPlan {
        session_len: 64,
        signature_width: 16,
    };

    // Pre-pack the good responses once: the fold benchmark measures MISR
    // throughput, not simulation.
    let compiled = CompiledCircuit::new(&circuit);
    let input_count = circuit.primary_inputs().len();
    let blocks: Vec<(Vec<u64>, usize)> = (0..patterns.block_count())
        .map(|block| {
            let (words, count) = patterns.pack_block(input_count, block);
            (compiled.output_words(&words), count)
        })
        .collect();

    let mut group = c.benchmark_group("misr_compaction");
    group.bench_function("fold_256_patterns/k16", |b| {
        b.iter(|| {
            let mut misr = Misr::new(16);
            for (words, count) in &blocks {
                misr.fold_block(black_box(words), *count);
            }
            black_box(misr.signature())
        })
    });

    group.bench_function("signature_dictionary/alu4/1_worker", |b| {
        let context = ExecutionContext::new(1);
        b.iter(|| {
            black_box(SignatureDictionary::build_in(
                &context, &circuit, &universe, &patterns, &plan,
            ))
        })
    });

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pooled = ExecutionContext::new(workers);
    group.bench_function(
        format!("signature_dictionary/alu4/{workers}_workers"),
        |b| {
            b.iter(|| {
                black_box(SignatureDictionary::build_in(
                    &pooled, &circuit, &universe, &patterns, &plan,
                ))
            })
        },
    );

    // The single-pass multi-width build versus three independent builds.
    group.bench_function("build_many/k4_8_16_one_pass", |b| {
        b.iter(|| {
            black_box(SignatureDictionary::build_many_in(
                &pooled,
                &circuit,
                &universe,
                &patterns,
                plan.session_len,
                &[4, 8, 16],
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_misr_compaction);
criterion_main!(benches);
