//! MISR signature-compaction benchmarks.
//!
//! Three costs matter to the BIST workload: folding good responses into
//! session signatures (pure MISR throughput), building a whole per-fault
//! [`SignatureDictionary`] (one fault-simulation pass plus error-stream
//! folding), and the serial-versus-pooled ratio of that build.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lsiq_bist::misr::Misr;
use lsiq_bist::signature::{BistPlan, SignatureDictionary};
use lsiq_bist::stumps::{StumpsConfig, StumpsGenerator};
use lsiq_exec::{ExecutionContext, LaneWidth};
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::circuit::Circuit;
use lsiq_netlist::generator::{random_circuit, RandomCircuitConfig};
use lsiq_netlist::library;
use lsiq_sim::cache::GoodMachineCache;
use lsiq_sim::levelized::CompiledCircuit;
use lsiq_sim::packed::PackedBlock;
use lsiq_sim::pattern::PatternSet;

/// Fault-free output chunks of every chunk of `patterns`, pre-packed so the
/// fold benchmarks measure MISR throughput, not simulation.
fn packed_chunks<const L: usize>(
    circuit: &Circuit,
    patterns: &PatternSet,
) -> Vec<(Vec<PackedBlock<L>>, usize)> {
    let compiled = CompiledCircuit::new(circuit);
    let input_count = circuit.primary_inputs().len();
    (0..patterns.chunk_count(L))
        .map(|chunk| {
            let (words, count) = patterns.pack_chunk::<L>(input_count, chunk);
            (compiled.output_chunks(&words), count)
        })
        .collect()
}

fn bench_misr_compaction(c: &mut Criterion) {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns: PatternSet = StumpsGenerator::new(&StumpsConfig::with_width(
        circuit.primary_inputs().len(),
        1981,
    ))
    .generate(256);
    let plan = BistPlan {
        session_len: 64,
        signature_width: 16,
    };

    // Pre-pack the good responses once: the fold benchmark measures MISR
    // throughput, not simulation.
    let compiled = CompiledCircuit::new(&circuit);
    let input_count = circuit.primary_inputs().len();
    let blocks: Vec<(Vec<u64>, usize)> = (0..patterns.block_count())
        .map(|block| {
            let (words, count) = patterns.pack_block(input_count, block);
            (compiled.output_words(&words), count)
        })
        .collect();

    let mut group = c.benchmark_group("misr_compaction");
    group.bench_function("fold_256_patterns/k16", |b| {
        b.iter(|| {
            let mut misr = Misr::new(16);
            for (words, count) in &blocks {
                misr.fold_block(black_box(words), *count);
            }
            black_box(misr.signature())
        })
    });

    group.bench_function("signature_dictionary/alu4/1_worker", |b| {
        let context = ExecutionContext::new(1);
        b.iter(|| {
            black_box(SignatureDictionary::build_in(
                &context, &circuit, &universe, &patterns, &plan,
            ))
        })
    });

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pooled = ExecutionContext::new(workers);
    group.bench_function(
        format!("signature_dictionary/alu4/{workers}_workers"),
        |b| {
            b.iter(|| {
                black_box(SignatureDictionary::build_in(
                    &pooled, &circuit, &universe, &patterns, &plan,
                ))
            })
        },
    );

    // The single-pass multi-width build versus three independent builds.
    group.bench_function("build_many/k4_8_16_one_pass", |b| {
        b.iter(|| {
            black_box(SignatureDictionary::build_many_in(
                &pooled,
                &circuit,
                &universe,
                &patterns,
                plan.session_len,
                &[4, 8, 16],
            ))
        })
    });

    // Lane-width scaling: a 1024-pattern fold and dictionary build at 1, 4
    // and 8 lanes (byte-identical signatures — pure throughput), and the
    // widest lane replaying the good machine from a warm cache.  The sweep
    // runs on a 600-gate device: signature building is one fault-simulation
    // pass plus error-stream folding, and the simulation share — where wide
    // chunks autovectorize — needs a real circuit to dominate the per-slot
    // register stepping (which is inherently pattern-serial).
    let wide_circuit = random_circuit(&RandomCircuitConfig {
        inputs: 24,
        gates: 600,
        seed: 8,
        ..RandomCircuitConfig::default()
    });
    let wide_universe = FaultUniverse::full(&wide_circuit);
    let long: PatternSet = StumpsGenerator::new(&StumpsConfig::with_width(
        wide_circuit.primary_inputs().len(),
        1981,
    ))
    .generate(1024);
    let chunks_x1 = packed_chunks::<1>(&wide_circuit, &long);
    let chunks_x4 = packed_chunks::<4>(&wide_circuit, &long);
    let chunks_x8 = packed_chunks::<8>(&wide_circuit, &long);
    group.bench_function("fold_1024_patterns/k16/lanes_1", |b| {
        b.iter(|| {
            let mut misr = Misr::new(16);
            for (chunks, count) in &chunks_x1 {
                misr.fold_chunk(black_box(chunks), *count);
            }
            black_box(misr.signature())
        })
    });
    group.bench_function("fold_1024_patterns/k16/lanes_4", |b| {
        b.iter(|| {
            let mut misr = Misr::new(16);
            for (chunks, count) in &chunks_x4 {
                misr.fold_chunk(black_box(chunks), *count);
            }
            black_box(misr.signature())
        })
    });
    group.bench_function("fold_1024_patterns/k16/lanes_8", |b| {
        b.iter(|| {
            let mut misr = Misr::new(16);
            for (chunks, count) in &chunks_x8 {
                misr.fold_chunk(black_box(chunks), *count);
            }
            black_box(misr.signature())
        })
    });
    for lanes in LaneWidth::EXPLICIT {
        group.bench_function(format!("sweep_1024_patterns/k16/lanes_{lanes}"), |b| {
            b.iter(|| {
                black_box(SignatureDictionary::build_sweep_cached(
                    &pooled,
                    &wide_circuit,
                    &wide_universe,
                    &long,
                    plan.session_len,
                    &[plan.signature_width],
                    &[long.len()],
                    lanes,
                    None,
                ))
            })
        });
    }
    let cache = GoodMachineCache::new();
    group.bench_function("sweep_1024_patterns/k16/lanes_8_cached", |b| {
        b.iter(|| {
            black_box(SignatureDictionary::build_sweep_cached(
                &pooled,
                &wide_circuit,
                &wide_universe,
                &long,
                plan.session_len,
                &[plan.signature_width],
                &[long.len()],
                LaneWidth::X8,
                Some(&cache),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_misr_compaction);
criterion_main!(benches);
