//! Telemetry overhead: the same `fault_sim` alu4 workload with metrics
//! recording off (the default — every `Counter::add` / `Span::start` is
//! one relaxed atomic load) and on (`json`).  The `off` entries pin the
//! disabled-mode cost against the uninstrumented baseline history: the
//! acceptance bar is <1% regression on `fault_sim` alu4, i.e. `off` must
//! be indistinguishable from the pre-instrumentation numbers for this
//! group's workloads.  The `json` entries document the price of recording
//! (registry shard writes plus one `Instant` pair per span).
//!
//! The mode is process-global, so this group sets it explicitly around
//! each measurement instead of relying on `LSIQ_METRICS`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsiq_fault::ppsfp::PpsfpSimulator;
use lsiq_fault::serial::SerialSimulator;
use lsiq_fault::simulator::FaultSimulator;
use lsiq_fault::universe::FaultUniverse;
use lsiq_netlist::library;
use lsiq_obs::MetricsMode;
use lsiq_sim::pattern::{Pattern, PatternSet};
use lsiq_stats::rng::{Rng, Xoshiro256StarStar};
use std::hint::black_box;

fn random_patterns(width: usize, count: usize, seed: u64) -> PatternSet {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..count)
        .map(|_| Pattern::from_bits((0..width).map(|_| rng.next_bool(0.5))))
        .collect()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let circuit = library::alu4();
    let universe = FaultUniverse::full(&circuit);
    let patterns = random_patterns(circuit.primary_inputs().len(), 64, 7);
    let mut group = c.benchmark_group("obs_overhead_alu4_64_patterns");
    for (mode, label) in [(MetricsMode::Off, "off"), (MetricsMode::Json, "json")] {
        // Explicitly pin the process-global mode for this measurement; the
        // registry contents are irrelevant here, only the recording cost.
        lsiq_obs::set_mode(mode);
        group.bench_with_input(BenchmarkId::new("ppsfp", label), &(), |b, _| {
            b.iter(|| PpsfpSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns)))
        });
        // The serial engine takes a span per pattern and counts every drop,
        // so it is the worst case for per-call gating cost.
        group.bench_with_input(BenchmarkId::new("serial", label), &(), |b, _| {
            b.iter(|| {
                SerialSimulator::new(&circuit).run(black_box(&universe), black_box(&patterns))
            })
        });
    }
    lsiq_obs::set_mode(MetricsMode::Off);
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
